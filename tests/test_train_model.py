"""Training substrate: forward equivalence, optimizer, tasks, learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.corpus import SyntheticCorpus
from repro.llm import build_model, tiny_config
from repro.llm.weights import init_params
from repro.train import (
    Adam,
    TrainConfig,
    TrainableModel,
    cosine_schedule,
    cross_entropy_logits,
    make_batch,
    train_model,
)
from repro.train.tasks import copy_example, qa_example, summarization_example
from tests.conftest import ARCHITECTURES


class TestForwardEquivalence:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_matches_inference_engine(self, arch):
        """Trained weights must drop into the engine unchanged: the two
        forwards agree to float tolerance on every architecture."""
        cfg = tiny_config(arch, vocab_size=300)
        params = init_params(cfg, seed=5)
        inference = build_model(cfg, seed=5)
        trainable = TrainableModel(cfg, params)
        ids = np.array([7, 40, 3, 250, 11])
        expected = inference.forward(ids, np.arange(5), inference.new_cache())
        actual = trainable.forward(ids[None, :]).data[0]
        np.testing.assert_allclose(actual, expected, atol=5e-4)

    def test_batched_rows_independent(self):
        cfg = tiny_config("llama", vocab_size=300)
        trainable = TrainableModel(cfg, init_params(cfg, seed=0))
        a = np.array([5, 6, 7, 8])
        b = np.array([9, 10, 11, 12])
        batched = trainable.forward(np.stack([a, b])).data
        solo = trainable.forward(a[None, :]).data[0]
        np.testing.assert_allclose(batched[0], solo, atol=1e-5)

    def test_export_params_copies(self):
        cfg = tiny_config("llama", vocab_size=300)
        trainable = TrainableModel(cfg, init_params(cfg, seed=0))
        exported = trainable.export_params()
        exported["embed.weight"][:] = 0
        assert trainable.params["embed.weight"].data.any()


class TestOptimizer:
    def quad_setup(self):
        x = TrainableModel.__new__(TrainableModel)  # not needed; use raw tensors
        from repro.train.autograd import Tensor

        param = Tensor(np.array([5.0, -3.0], dtype=np.float32), requires_grad=True)
        return param

    def test_adam_minimizes_quadratic(self):
        from repro.train.autograd import Tensor

        param = Tensor(np.array([5.0, -3.0], dtype=np.float32), requires_grad=True)
        opt = Adam({"p": param}, lr=0.2, clip_norm=None)
        for _ in range(150):
            loss = (param * param).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert np.abs(param.data).max() < 0.05

    def test_gradient_clipping_bounds_update(self):
        from repro.train.autograd import Tensor

        param = Tensor(np.array([1000.0], dtype=np.float32), requires_grad=True)
        opt = Adam({"p": param}, lr=0.1, clip_norm=1.0)
        loss = (param * param).sum()
        opt.zero_grad()
        loss.backward()
        assert opt.global_grad_norm() > 1.0
        opt.step()  # must not explode

    def test_cosine_schedule_shape(self):
        base = 1e-3
        warm = cosine_schedule(0, 100, base, warmup=10)
        peak = cosine_schedule(10, 100, base, warmup=10)
        end = cosine_schedule(99, 100, base, warmup=10)
        assert warm < peak
        assert peak == pytest.approx(base, rel=0.01)
        assert end < 0.2 * base


class TestTasks:
    def setup_method(self):
        from repro.tokenizer.bpe import train_bpe
        from repro.datasets.corpus import training_corpus

        self.tok = train_bpe(training_corpus(), vocab_size=900)
        self.corpus = SyntheticCorpus(seed=3)
        self.rng = np.random.default_rng(0)

    def test_qa_example_spans_cover_answers(self):
        ids, spans = qa_example(self.corpus, self.rng, self.tok, 40)
        assert 3 <= len(spans) <= 5  # one per fact (3-5 facts per doc)
        for start, stop in spans:
            decoded = self.tok.decode(ids[start:stop])
            assert decoded.strip().rstrip(".").strip()  # a value word

    def test_qa_answer_matches_completion(self):
        ids, spans = qa_example(self.corpus, self.rng, self.tok, 40)
        text = self.tok.decode(ids)
        # Every "answer by completing : X has Y" is followed by the value
        # that "X has Y" carries in the document.
        assert "answer by completing :" in text

    def test_summarization_single_span(self):
        ids, spans = summarization_example(self.corpus, self.rng, self.tok, 40)
        assert len(spans) == 1
        start, stop = spans[0]
        assert stop == len(ids)

    def test_copy_example_repeats(self):
        ids, spans = copy_example(self.rng, self.tok, length=12)
        assert ids[:12] == ids[12:]
        assert spans == [(12, 24)]

    def test_batch_shapes_and_padding(self):
        batch = make_batch(self.corpus, self.rng, self.tok, batch_size=4)
        assert batch.tokens.shape == batch.targets.shape == batch.weights.shape
        assert batch.tokens.shape[0] == 4
        # Padded tail positions carry zero weight.
        row_lengths = (batch.tokens != self.tok.pad_id).sum(axis=1)
        for row, length in enumerate(row_lengths):
            assert np.all(batch.weights[row, length:] == 0)

    def test_supervised_targets_are_answers(self):
        batch = make_batch(
            self.corpus, self.rng, self.tok, batch_size=2,
            copy_fraction=0.0, summarization_fraction=0.0,
        )
        hot = batch.weights == 1.0
        assert hot.any()
        # Supervised targets never include the pad token.
        assert not np.any(batch.targets[hot] == self.tok.pad_id)


class TestLearning:
    def test_short_training_reduces_loss(self):
        """30 steps of the real trainer must cut the loss materially (the
        full 1000-step run is exercised by the Table 1 benchmark)."""
        from repro.tokenizer.bpe import train_bpe
        from repro.datasets.corpus import training_corpus

        tok = train_bpe(training_corpus(), vocab_size=900)
        cfg = tiny_config("llama", vocab_size=tok.vocab_size)
        _, report = train_model(
            cfg, tok,
            TrainConfig(steps=60, batch_size=8, doc_words=20, log_every=1000),
            verbose=False,
        )
        assert report.losses[-1] < 0.9 * report.losses[0]
        assert report.seconds > 0
