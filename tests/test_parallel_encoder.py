"""Parallel encode plane: pool fan-out is bit-identical to sequential.

The paper's modules are encoded independently (§3.3), so schema warm-up
parallelizes — but only usefully if the pooled path produces *exactly*
the states the sequential path would have. Every test here compares
byte-for-byte, across all four positional-encoding families.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.cache.layout import layout_schema
from repro.cache.parallel import ParallelEncoder, fork_available
from repro.cache.storage import CacheKey
from repro.pml import PLAIN_TEMPLATE
from repro.pml.schema import Schema
from repro.server.metrics import MetricsRegistry

SCHEMA = (
    '<schema name="par"><scaffold modules="a,b"/>'
    '<module name="a">the quick brown fox</module>'
    '<module name="b">jumps over the lazy dog</module>'
    '<module name="c">paris museums cafes architecture</module></schema>'
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _store_of(model, tok, workers: int):
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE, encode_workers=workers)
    pc.register_schema(SCHEMA)
    return pc.store


def _assert_stores_identical(got, want) -> None:
    keys = sorted(want.cpu.keys() + want.gpu.keys(), key=lambda k: k.tag())
    assert sorted(got.cpu.keys() + got.gpu.keys(), key=lambda k: k.tag()) == keys
    for key in keys:
        kv_got = got.peek(key).kv
        kv_want = want.peek(key).kv
        assert kv_got.is_arena and kv_want.is_arena
        np.testing.assert_array_equal(kv_got.key_arena, kv_want.key_arena)
        np.testing.assert_array_equal(kv_got.value_arena, kv_want.value_arena)
        np.testing.assert_array_equal(kv_got.positions, kv_want.positions)


class TestBitEquality:
    @needs_fork
    def test_modules_and_scaffolds_match_sequential(self, any_model, tok):
        """All four positional families: solo + scaffold variants are
        byte-identical between the pooled and sequential paths."""
        sequential = _store_of(any_model, tok, workers=0)
        parallel = _store_of(any_model, tok, workers=2)
        variants = {key.variant for key in parallel.gpu.keys()}
        assert variants == {"solo", "scaffold0"}
        _assert_stores_identical(parallel, sequential)

    @needs_fork
    def test_register_schema_workers_override(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(SCHEMA, workers=2)
        _assert_stores_identical(pc.store, _store_of(llama, tok, workers=0))


class TestEncoderUnit:
    def _layout(self, tok):
        schema = Schema.parse(SCHEMA)
        return schema, layout_schema(schema, tok)

    def test_workers_one_is_sequential_inprocess(self, llama, tok):
        schema, layout = self._layout(tok)
        with ParallelEncoder(llama, workers=1) as encoder:
            assert not encoder.parallel
            out = encoder.encode_schema(layout, [("a", "b")])
        assert list(out) == [
            ("a", "solo"), ("b", "solo"), ("c", "solo"),
            ("a", "scaffold0"), ("b", "scaffold0"),
        ]
        assert encoder.last_report is not None
        assert not encoder.last_report.parallel

    @needs_fork
    def test_parallel_output_order_matches_sequential(self, llama, tok):
        schema, layout = self._layout(tok)
        with ParallelEncoder(llama, workers=1) as seq, ParallelEncoder(
            llama, workers=2
        ) as par:
            out_seq = seq.encode_schema(layout, [("a", "b")])
            out_par = par.encode_schema(layout, [("a", "b")])
        assert list(out_par) == list(out_seq)
        for key in out_seq:
            np.testing.assert_array_equal(
                out_par[key].key_arena, out_seq[key].key_arena
            )
            np.testing.assert_array_equal(
                out_par[key].value_arena, out_seq[key].value_arena
            )

    @needs_fork
    def test_skip_solo_skips_but_scaffolds_refresh(self, llama, tok):
        schema, layout = self._layout(tok)
        with ParallelEncoder(llama, workers=2) as encoder:
            out = encoder.encode_schema(layout, [("a", "b")], skip_solo={"a", "c"})
        assert list(out) == [
            ("b", "solo"), ("a", "scaffold0"), ("b", "scaffold0")
        ]

    @needs_fork
    def test_segments_released_after_encode(self, llama, tok):
        schema, layout = self._layout(tok)
        with ParallelEncoder(llama, workers=2) as encoder:
            encoder.encode_schema(layout)
            assert encoder._segments == {}

    def test_results_are_arena_backed_private_memory(self, llama, tok):
        """Adopted results must be private arenas (splice fast path), not
        views into the (released) shared segments."""
        schema, layout = self._layout(tok)
        with ParallelEncoder(llama, workers=2) as encoder:
            out = encoder.encode_schema(layout)
        for kv in out.values():
            assert kv.is_arena
            assert not kv.is_mapped
            kv.key_arena[0, 0, 0, 0] = 0.0  # noqa: no-write-to-mapped -- proves writable private memory


class TestObservability:
    def test_metrics_series_emitted(self, llama, tok):
        metrics = MetricsRegistry()
        pc = PromptCache(
            llama, tok, template=PLAIN_TEMPLATE,
            encode_workers=1, encode_metrics=metrics,
        )
        pc.register_schema(SCHEMA)
        snap = metrics.snapshot()
        assert 'schema_warmup_seconds{schema="par"}' in snap["histograms"]
        assert snap["counters"]['encode_jobs_total{mode="sequential"}'] >= 4
        assert any(
            name.startswith("encode_duration_seconds") for name in snap["histograms"]
        )

    @needs_fork
    def test_pool_worker_gauge_tracks_lifecycle(self, llama, tok):
        metrics = MetricsRegistry()
        schema = Schema.parse(SCHEMA)
        layout = layout_schema(schema, tok)
        encoder = ParallelEncoder(llama, workers=2, metrics=metrics)
        encoder.encode_schema(layout)
        assert metrics.snapshot()["gauges"]["encode_pool_workers"] == 2
        assert metrics.snapshot()["counters"]['encode_jobs_total{mode="parallel"}'] >= 3
        encoder.close()
        assert metrics.snapshot()["gauges"]["encode_pool_workers"] == 0


class TestSharedEncoder:
    @needs_fork
    def test_one_pool_serves_many_registrations(self, llama, tok):
        metrics = MetricsRegistry()
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        other = SCHEMA.replace('name="par"', 'name="par2"')
        with ParallelEncoder(llama, workers=2, metrics=metrics) as encoder:
            pc.set_parallel_encoder(encoder)
            pc.register_schema(SCHEMA)
            pc.register_schema(other)
            assert encoder._executor is not None  # pool survived both
        assert CacheKey("par", "a") in pc.store
        assert CacheKey("par2", "a") in pc.store
        _assert_stores_identical(pc.store, _both_schemas_sequential(llama, tok, other))


def _both_schemas_sequential(model, tok, other):
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(SCHEMA)
    pc.register_schema(other)
    return pc.store
