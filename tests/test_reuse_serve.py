"""End-to-end reuse discovery through the real engine.

The load-bearing guarantee (ISSUE 6 acceptance): with discovery ON, raw
serving output is **byte-identical** to discovery OFF — and to the plain
KV-cache ``generate`` baseline — while the second pass over repeated
traffic serves a growing token prefix from spliced discovered modules.

Also pinned here: the plan-cache staleness fix (a module evicted from
*every* tier invalidates compiled plans that reference it) and the
self-healing path when a discovered module's KV is dropped from the
store while the trie keeps its boundary.
"""

from __future__ import annotations

import pytest

from repro.cache.engine import DISCOVERED_SCHEMA, PromptCache
from repro.cache.storage import ModuleCacheStore
from repro.llm.generation import generate
from repro.pml.chat import PLAIN_TEMPLATE
from repro.reuse import DiscoveryConfig

SHARED = "the quick brown fox jumps over the lazy dog " * 3
SUFFIXES = [
    "plan a trip lasting three days focus on food",
    "miami beaches nightlife surf spots",
    "paris museums cafes architecture",
    "answer the question using the documents above",
]
PROMPTS = [SHARED + s for s in SUFFIXES]


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def discovery_config(**overrides) -> DiscoveryConfig:
    return DiscoveryConfig(**{"min_hits": 2, "min_tokens": 8, **overrides})


@pytest.fixture()
def pc_on(llama, tok):
    pc = PromptCache(llama, tok)
    pc.attach_discovery(discovery_config())
    return pc


class TestByteIdentity:
    def test_on_off_and_generate_all_agree(self, llama, tok, pc_on):
        pc_off = PromptCache(llama, tok)
        # Two passes: pass 1 mines, pass 2 serves from discovered modules.
        for _ in range(2):
            for text in PROMPTS:
                on = pc_on.serve_text(text, max_new_tokens=8)
                off = pc_off.serve_text(text, max_new_tokens=8)
                base = generate(llama, tok.encode(text), max_new_tokens=8)
                assert on.output_ids == off.output_ids == base.output_ids
                assert on.text == off.text
        # Discovery must actually have engaged, or the test proves nothing.
        assert pc_on.discovery.stats.promotions >= 1
        assert pc_on.discovered_modules()

    def test_second_pass_serves_shared_prefix_from_cache(self, pc_on, tok):
        results = [pc_on.serve_text(t, max_new_tokens=4) for t in PROMPTS]
        # Observation precedes serving, so the min_hits-th request both
        # promotes the shared prefix and is the first to splice it; only
        # the initial request is guaranteed fully uncached.
        assert results[0].cached_tokens == 0
        assert results[1].cached_tokens > 0
        shared_len = len(tok.encode(SHARED))
        for text in PROMPTS:
            again = pc_on.serve_text(text, max_new_tokens=4)
            assert again.cached_tokens > 0
            assert again.cached_tokens <= len(tok.encode(text))
        # The promoted segment covers (at least most of) the shared run.
        assert pc_on.discovered_modules()[-1].end >= min(
            shared_len, pc_on.discovery.config.min_tokens
        )

    def test_fully_covered_prompt_stays_identical(self, llama, tok, pc_on):
        text = SHARED.strip()
        base = generate(llama, tok.encode(text), max_new_tokens=6)
        for _ in range(3):
            result = pc_on.serve_text(text, max_new_tokens=6)
            assert result.output_ids == base.output_ids
        # Third serve hits the promoted module covering the whole prompt.
        assert pc_on.serve_text(text, max_new_tokens=6).cached_tokens > 0

    def test_batch_matches_solo_and_shares_memory(self, llama, tok):
        pc = PromptCache(llama, tok)
        # min_tokens above the per-prompt suffix length: the shared run
        # promotes, the unique tails never do, so every prompt matches
        # the same one-module chain and the batch shares a single base.
        pc.attach_discovery(discovery_config(min_tokens=20))
        solo = [pc.serve_text(t, max_new_tokens=4) for t in PROMPTS]
        batch = pc.serve_text_batch(PROMPTS, max_new_tokens=4)
        for one, many in zip(solo, batch.results):
            assert one.output_ids == many.output_ids
        assert batch.shared_groups == 1
        assert 0.0 < batch.memory_savings < 1.0

    def test_observe_false_never_promotes(self, llama, tok):
        pc = PromptCache(llama, tok)
        pc.attach_discovery(discovery_config())
        for _ in range(3):
            for text in PROMPTS:
                pc.serve_text(text, max_new_tokens=2, observe=False)
        assert pc.discovery.stats.promotions == 0
        assert pc.discovery.stats.observed_sequences == 0


class TestRegistryLifecycle:
    def test_register_validates_span(self, pc_on, tok):
        ids = tok.encode(SHARED)
        with pytest.raises(ValueError):
            pc_on.register_discovered_module("bad", ids, len(ids))
        with pytest.raises(ValueError):
            pc_on.register_discovered_module("bad", ids, -1)

    def test_unregister_removes_module_and_kv(self, pc_on, tok):
        for _ in range(2):
            for text in PROMPTS:
                pc_on.serve_text(text, max_new_tokens=2)
        (module, *_) = pc_on.discovered_modules()
        pc_on.unregister_discovered_module(module.name)
        assert module.name not in {m.name for m in pc_on.discovered_modules()}
        matching = [
            key for key in list(pc_on.store.gpu.keys()) + list(pc_on.store.cpu.keys())
            if key.schema == DISCOVERED_SCHEMA and key.module == module.name
        ]
        assert not matching

    def test_dropped_kv_self_heals_byte_identically(self, llama, tok, pc_on):
        for _ in range(2):
            for text in PROMPTS:
                pc_on.serve_text(text, max_new_tokens=4)
        baseline = [
            generate(llama, tok.encode(t), max_new_tokens=4).output_ids
            for t in PROMPTS
        ]
        # Drop every discovered KV behind the registry's back (capacity
        # pressure in real life); the trie still matches, so the engine
        # must re-encode on the next hit — not crash, not drift.
        pc_on.store.remove_matching(DISCOVERED_SCHEMA)
        for text, expected in zip(PROMPTS, baseline):
            result = pc_on.serve_text(text, max_new_tokens=4)
            assert result.output_ids == expected


class TestPlanCacheStaleness:
    def test_ttl_eviction_invalidates_compiled_plans(self, llama, tok):
        clock = FakeClock()
        store = ModuleCacheStore(gpu_ttl_s=10.0, clock=clock)
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(
            '<schema name="city"><module name="doc">'
            "the capital of atlantis is coral city"
            "</module></schema>"
        )
        prompt = '<prompt schema="city"><doc/> the capital of atlantis is</prompt>'
        first = pc.serve(prompt, max_new_tokens=4)
        before = pc.plan_cache_stats().invalidations
        # Idle past the TTL: the module leaves the GPU tier and is *not*
        # demoted — resident in no tier, so the compiled plan is stale.
        clock.now = 100.0
        assert store.sweep_expired() >= 1
        assert pc.plan_cache_stats().invalidations > before
        again = pc.serve(prompt, max_new_tokens=4)
        assert again.output_ids == first.output_ids

    def test_demotion_does_not_invalidate(self, llama, tok):
        store = ModuleCacheStore(gpu_capacity_bytes=1)  # everything demotes
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(
            '<schema name="city"><module name="doc">'
            "the capital of atlantis is coral city"
            "</module></schema>"
        )
        prompt = '<prompt schema="city"><doc/> the capital of atlantis is</prompt>'
        pc.serve(prompt, max_new_tokens=2)
        invalidations = pc.plan_cache_stats().invalidations
        # Modules were pushed GPU→CPU on insert, yet stayed servable:
        # demotion must not have torn down compiled plans.
        assert store.cpu.entries and not store.gpu.entries
        assert invalidations == 0
        pc.serve(prompt, max_new_tokens=2)
        assert pc.plan_cache_stats().hits >= 1
