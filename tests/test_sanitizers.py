"""REPRO_SANITIZE runtime sanitizers: the auditor catches deliberate
refcount/lease abuse, the plan/layout validators accept every real plan
and reject tampered ones, and shape contracts flag mis-ranked tensors."""

from __future__ import annotations

import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.contracts import (
    ContractViolation,
    contracts_enforced,
    enforce_contracts,
    shape_contract,
)
from repro.analysis.sanitize import (
    SanitizerError,
    assert_quiescent,
    install_sanitizers,
    sanitizers_enabled,
    uninstall_sanitizers,
    validate_layout,
    validate_plan,
)
from repro.cache.engine import PromptCache
from repro.cache.layout import layout_schema
from repro.llm.paged import PagePool, PagedLayerKV
from repro.pml import PLAIN_TEMPLATE
from repro.pml.schema import Schema

RNG = np.random.default_rng(17)


def block(tokens, heads=2, head_dim=4):
    return RNG.normal(size=(heads, tokens, head_dim)).astype(np.float32)


@pytest.fixture
def auditor():
    """Install sanitizers for one test; restore the prior state after.

    Under ``REPRO_SANITIZE=1`` the conftest session fixture already
    installed them — then this is a no-op passthrough."""
    already = sanitize.active_auditor()
    installed = install_sanitizers()
    installed.errors_raised = 0  # per-test delta, even on a session auditor
    yield installed
    if already is None:
        uninstall_sanitizers()


class TestEnvFlag:
    @pytest.mark.parametrize("value,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("off", False), ("maybe", False),
    ])
    def test_parsing(self, monkeypatch, value, expected):
        monkeypatch.setitem(os.environ, "REPRO_SANITIZE", value)
        assert sanitizers_enabled() is expected

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitizers_enabled() is False

    def test_install_is_idempotent(self, auditor):
        assert install_sanitizers() is auditor
        assert sanitize.active_auditor() is auditor


class TestPageAuditor:
    def test_double_release_raises(self, auditor):
        pool = PagePool(2, 4)
        page = pool.allocate()
        pool.release(page)
        with pytest.raises(SanitizerError, match="double release"):
            pool.release(page)
        assert auditor.errors_raised == 1

    def test_retain_after_free_raises(self, auditor):
        pool = PagePool(2, 4)
        page = pool.allocate()
        pool.release(page)
        with pytest.raises(SanitizerError, match="retain of freed page"):
            pool.retain(page)

    def test_balanced_fork_free_passes(self, auditor):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        with auditor.expect_balanced(pool):
            layer.append(block(5), block(5), np.arange(5))
            sibling = layer.fork()
            sibling.append(block(3), block(3), np.arange(5, 8))
            sibling.free()
            layer.free()
        assert_quiescent(pool)

    def test_leaked_fork_raises(self, auditor):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        with pytest.raises(SanitizerError, match="page leak"):
            with auditor.expect_balanced(pool):
                layer.append(block(5), block(5), np.arange(5))
                layer.fork()  # dropped without free()
                layer.free()
        # The fork's pages are still live — quiescence also fails.
        with pytest.raises(SanitizerError, match="not quiescent"):
            assert_quiescent(pool)

    def test_normal_lifecycle_is_silent(self, auditor):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        layer.append(block(9), block(9), np.arange(9))
        sibling = layer.fork()
        sibling.append(block(2), block(2), np.arange(9, 11))
        layer.free()
        sibling.free()
        assert_quiescent(pool)
        assert auditor.errors_raised == 0


class TestMirrorLease:
    def test_extend_without_lease_raises(self, auditor):
        holder = object()
        mirror = SimpleNamespace(lease=holder, length=4, fork_high_water=0)
        with pytest.raises(SanitizerError, match="without holding the lease"):
            auditor.on_inplace_extend(object(), mirror)

    def test_extend_below_high_water_raises_via_real_append(self, auditor):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        layer.append(block(5), block(5), np.arange(5))
        _ = layer.keys  # materialize the mirror
        layer.append(block(2), block(2), np.arange(5, 7))  # takes the lease
        mirror = layer._mirror
        assert mirror.lease is layer
        # Simulate a fork bookkeeping bug: the high-water mark claims a
        # sharer's prefix extends past the image length.
        mirror.fork_high_water = mirror.length + 3
        with pytest.raises(SanitizerError, match="fork high-water"):
            layer.append(block(1), block(1), np.arange(7, 8))
        layer.free()

    def test_leased_decode_extension_is_clean(self, auditor):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        layer.append(block(5), block(5), np.arange(5))
        _ = layer.keys
        for step in range(5, 9):  # in-place decode appends
            layer.append(block(1), block(1), np.arange(step, step + 1))
        assert layer._mirror.lease is layer
        layer.free()
        assert auditor.errors_raised == 0


def stub_module(positions, params=None, slots=None):
    module = SimpleNamespace(
        positions=np.asarray(positions),
        params=params or {},
    )
    module.param_positions = lambda name: np.asarray((slots or {})[name])
    return module


def stub_plan(modules, uncached=(), recompute_tail=None):
    return SimpleNamespace(
        modules=modules, uncached=list(uncached), recompute_tail=recompute_tail
    )


class TestPlanValidator:
    def test_disjoint_monotonic_plan_passes(self):
        plan = stub_plan(
            [(stub_module([0, 1, 2]), "a"), (stub_module([5, 6]), "b")],
            uncached=[(np.array([9]), np.array([7]))],
        )
        validate_plan(plan, layout=None)

    def test_non_monotonic_positions_raise(self):
        plan = stub_plan([(stub_module([0, 2, 1]), "a")])
        with pytest.raises(SanitizerError, match="non-monotonic"):
            validate_plan(plan, layout=None)

    def test_overlapping_modules_raise(self):
        plan = stub_plan(
            [(stub_module([0, 1, 2]), "a"), (stub_module([2, 3]), "b")]
        )
        with pytest.raises(SanitizerError, match="overlaps"):
            validate_plan(plan, layout=None)

    def test_uncached_collision_with_cached_raises(self):
        plan = stub_plan(
            [(stub_module([0, 1, 2]), "a")],
            uncached=[(np.array([9]), np.array([1]))],
        )
        with pytest.raises(SanitizerError, match="collide"):
            validate_plan(plan, layout=None)

    def test_uncached_on_param_slot_is_allowed(self):
        slot = SimpleNamespace(name="p")
        module = stub_module(
            [0, 1, 2], params={"p": slot}, slots={"p": [1]}
        )
        plan = stub_plan(
            [(module, "a")], uncached=[(np.array([9]), np.array([1]))]
        )
        validate_plan(plan, layout=None)


UNION_SCHEMA = (
    '<schema name="cities"><union>'
    '<module name="miami">miami beaches nightlife surf</module>'
    '<module name="paris">paris museums cafes architecture louvre</module>'
    '</union></schema>'
)


class TestLayoutValidator:
    def test_real_union_layout_passes(self, tok):
        schema = Schema.parse(UNION_SCHEMA)
        layout = layout_schema(schema, tok)
        validate_layout(schema, layout)

    def test_tampered_union_start_raises(self, tok):
        schema = Schema.parse(UNION_SCHEMA)
        layout = layout_schema(schema, tok)
        layout.module("paris").span_start += 7
        with pytest.raises(SanitizerError, match="disagree on"):
            validate_layout(schema, layout)

    def test_slot_positions_outside_span_raise(self, tok):
        schema = Schema.parse(
            '<schema name="p"><module name="m">greet '
            '<param name="who" len="2" default="you"/> warmly</module></schema>'
        )
        layout = layout_schema(schema, tok)
        validate_layout(schema, layout)  # sane as laid out
        layout.module("m").span_end = 1
        with pytest.raises(SanitizerError, match="outside the module span"):
            validate_layout(schema, layout)


class TestShapeContracts:
    def test_not_enforced_no_check(self):
        @shape_contract(keys="(h, T, d)", values="(h, T, d)")
        def f(keys, values):
            return keys.shape

        was_on = contracts_enforced()
        enforce_contracts(False)
        try:
            assert f(np.zeros((2, 3)), np.zeros(4)) == (2, 3)  # wrong ranks pass
        finally:
            enforce_contracts(was_on)

    def test_enforced_wrong_rank_raises(self, auditor):
        @shape_contract(keys="(h, T, d)", values="(h, T, d)")
        def f(keys, values):
            return True

        assert contracts_enforced()
        assert f(np.zeros((2, 3, 4)), np.zeros((2, 3, 4)))
        with pytest.raises(ContractViolation, match="'values'"):
            f(np.zeros((2, 3, 4)), np.zeros((3, 4)))

    def test_none_and_scalars_skipped(self, auditor):
        @shape_contract(keys="(h, T, d)")
        def f(keys=None):
            return keys

        assert f() is None
        assert f(keys=None) is None

    def test_unknown_parameter_rejected_at_decoration(self):
        with pytest.raises(TypeError, match="not in its signature"):
            @shape_contract(nope="(a, b)")
            def f(keys):
                return keys

    def test_real_append_under_contracts(self, auditor):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        with pytest.raises(ContractViolation):
            layer.append(block(5)[0], block(5)[0], np.arange(5))  # rank 2
        layer.append(block(5), block(5), np.arange(5))
        layer.free()


DOC = (
    '<schema name="doc"><module name="d">the quick brown fox jumps over the '
    'lazy dog again and again</module></schema>'
)
PROMPT = '<prompt schema="doc"><d/> plan a trip</prompt>'


class TestEndToEnd:
    def test_sanitized_serve_matches_unsanitized(self, llama, tok, auditor):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(DOC)
        sanitized = pc.serve(PROMPT, max_new_tokens=4)

        uninstall_sanitizers()
        try:
            pc_plain = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
            pc_plain.register_schema(DOC)
            plain = pc_plain.serve(PROMPT, max_new_tokens=4)
        finally:
            install_sanitizers()

        assert sanitized.output_ids == plain.output_ids
        assert auditor.errors_raised == 0

    def test_union_registration_validated_live(self, llama, tok, auditor):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(UNION_SCHEMA)  # layout validator runs clean
        out = pc.serve(
            '<prompt schema="cities"><miami/> plan a trip</prompt>',
            max_new_tokens=2,
        )
        assert len(out.output_ids) >= 1
        assert auditor.errors_raised == 0
