"""Paged KV storage: page accounting, copy-on-write, engine equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.encoder import encode_module
from repro.cache.layout import layout_schema
from repro.llm.generation import decode_loop
from repro.llm.kv import KVCache
from repro.llm.paged import (
    PAGE_TOKENS,
    PagePool,
    PagedKVCache,
    PagedLayerKV,
    shared_batch_caches,
)
from repro.pml import Schema

RNG = np.random.default_rng(41)


def block(tokens, heads=2, head_dim=4):
    return RNG.normal(size=(heads, tokens, head_dim)).astype(np.float32)


def make_layer(pool=None):
    pool = pool or PagePool(2, 4)
    return PagedLayerKV(pool)


class TestPagePool:
    def test_allocate_and_reuse(self):
        pool = PagePool(2, 4)
        a = pool.allocate()
        pool.release(a)
        b = pool.allocate()
        assert b == a  # freed page recycled
        assert pool.stats.pages_allocated == 1

    def test_refcounting(self):
        pool = PagePool(2, 4)
        page = pool.allocate()
        pool.retain(page)
        pool.release(page)
        assert pool.live_pages == 1
        pool.release(page)
        assert pool.live_pages == 0

    def test_physical_bytes(self):
        pool = PagePool(2, 4)
        pool.allocate()
        per_page = 2 * (2 * PAGE_TOKENS * 4 * 4) + PAGE_TOKENS * 8
        assert pool.physical_bytes() == per_page


class TestPagedLayerKV:
    def test_matches_flat_layerkv_views(self):
        layer = make_layer()
        k, v = block(37), block(37)
        positions = np.arange(100, 137)
        layer.append(k, v, positions)
        assert len(layer) == 37
        np.testing.assert_array_equal(layer.keys, k)
        np.testing.assert_array_equal(layer.values, v)
        np.testing.assert_array_equal(layer.positions, positions)

    def test_incremental_appends(self):
        layer = make_layer()
        chunks = [block(5), block(PAGE_TOKENS), block(3)]
        offset = 0
        for c in chunks:
            layer.append(c, c, np.arange(offset, offset + c.shape[1]))
            offset += c.shape[1]
        np.testing.assert_array_equal(
            layer.keys, np.concatenate(chunks, axis=1)
        )

    def test_page_count(self):
        layer = make_layer()
        layer.append(block(PAGE_TOKENS * 2 + 1), block(PAGE_TOKENS * 2 + 1),
                     np.arange(PAGE_TOKENS * 2 + 1))
        assert len(layer.page_table) == 3

    def test_fork_shares_pages(self):
        layer = make_layer()
        layer.append(block(20), block(20), np.arange(20))
        sibling = layer.fork()
        assert sibling.page_table == layer.page_table
        assert layer.pool.live_pages == 2  # no duplication

    def test_cow_on_shared_partial_page(self):
        layer = make_layer()
        layer.append(block(20), block(20), np.arange(20))  # page1 partial (4 used)
        sibling = layer.fork()
        before = np.array(layer.keys)
        sibling.append(block(2), block(2), np.arange(20, 22))
        # The original's data is untouched; the sibling diverged privately.
        np.testing.assert_array_equal(layer.keys, before)
        assert sibling.page_table[-1] != layer.page_table[-1]
        assert layer.pool.stats.cow_copies == 1

    def test_full_tail_page_not_copied(self):
        layer = make_layer()
        layer.append(block(PAGE_TOKENS), block(PAGE_TOKENS), np.arange(PAGE_TOKENS))
        sibling = layer.fork()
        sibling.append(block(1), block(1), np.array([PAGE_TOKENS]))
        # Appends after a full page need a fresh page, never a copy.
        assert layer.pool.stats.cow_copies == 0

    def test_free_releases_everything(self):
        pool = PagePool(2, 4)
        layer = PagedLayerKV(pool)
        layer.append(block(40), block(40), np.arange(40))
        layer.free()
        assert pool.live_pages == 0
        assert len(layer) == 0

    def test_mismatched_append_rejected(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            layer.append(block(3), block(2), np.arange(3))


class TestEngineOnPagedCache:
    def test_forward_bit_exact_vs_flat_cache(self, llama):
        ids = np.array([5, 9, 12, 300, 41, 17, 23])
        flat = llama.forward(ids, np.arange(7), KVCache.empty(llama.config))
        paged_cache = PagedKVCache.empty(llama.config)
        paged = llama.forward(ids, np.arange(7), paged_cache)
        np.testing.assert_array_equal(flat, paged)
        assert len(paged_cache) == 7

    def test_decode_loop_on_paged_cache(self, llama):
        ids = np.array([5, 9, 12, 300, 41])
        cache = PagedKVCache.empty(llama.config)
        logits = llama.forward(ids, np.arange(5), cache)[-1]
        tokens, _ = decode_loop(
            llama, cache, logits, max_new_tokens=4, next_position=5
        )
        flat = KVCache.empty(llama.config)
        flat_logits = llama.forward(ids, np.arange(5), flat)[-1]
        flat_tokens, _ = decode_loop(
            llama, flat, flat_logits, max_new_tokens=4, next_position=5
        )
        assert tokens == flat_tokens


class TestSharedBatch:
    def make_module(self, llama, tok):
        layout = layout_schema(
            Schema.parse(
                '<schema name="p"><module name="doc">the quick brown fox jumps '
                "over the lazy dog again and again and again</module></schema>"
            ),
            tok,
        )
        return encode_module(llama, layout.module("doc")), layout

    def test_physical_memory_shared(self, llama, tok):
        kv, _ = self.make_module(llama, tok)
        caches, base = shared_batch_caches(llama.config, [kv], batch_size=8)
        # Eight requests, one physical copy: bytes ~= one module, not eight.
        physical = base.physical_bytes()
        logical = sum(c.logical_bytes() for c in caches)
        assert physical < logical / 4

    def test_outputs_match_unshared_serving(self, llama, tok):
        kv, layout = self.make_module(llama, tok)
        suffix = np.array(tok.encode(" what happened ?"))
        start = layout.total_length
        outputs = []
        caches, _ = shared_batch_caches(llama.config, [kv], batch_size=3)
        for cache in caches:
            logits = llama.forward(
                suffix, np.arange(start, start + len(suffix)), cache
            )[-1]
            tokens, _ = decode_loop(
                llama, cache, logits, max_new_tokens=4,
                next_position=start + len(suffix),
            )
            outputs.append(tokens)

        # Reference: private flat cache per request.
        from repro.llm.kv import LayerKV

        flat = KVCache(
            [
                LayerKV.from_arrays(kv.keys[i], kv.values[i], kv.positions)
                for i in range(llama.config.n_layers)
            ]
        )
        logits = llama.forward(suffix, np.arange(start, start + len(suffix)), flat)[-1]
        reference, _ = decode_loop(
            llama, flat, logits, max_new_tokens=4, next_position=start + len(suffix)
        )
        assert all(out == reference for out in outputs)

    def test_divergent_suffixes_stay_isolated(self, llama, tok):
        kv, layout = self.make_module(llama, tok)
        caches, _ = shared_batch_caches(llama.config, [kv], batch_size=2)
        start = layout.total_length
        s1 = np.array(tok.encode(" what happened ?"))
        s2 = np.array(tok.encode(" plan a trip now"))
        l1 = llama.forward(s1, np.arange(start, start + len(s1)), caches[0])[-1]
        l2 = llama.forward(s2, np.arange(start, start + len(s2)), caches[1])[-1]
        # Different suffixes over the same shared module: different logits,
        # and neither corrupted the other's view of the module pages.
        assert not np.allclose(l1, l2)
        np.testing.assert_array_equal(
            caches[0].layers[0].positions[: len(kv)], kv.positions
        )
        np.testing.assert_array_equal(
            caches[1].layers[0].keys[:, : len(kv)], kv.keys[0]
        )


class TestPageSizeParameter:
    def test_custom_page_size_round_trip(self):
        pool = PagePool(2, 4, page_tokens=5)
        layer = PagedLayerKV(pool)
        k, v = block(12), block(12)
        layer.append(k, v, np.arange(12))
        assert len(layer.page_table) == 3  # ceil(12/5)
        np.testing.assert_array_equal(layer.keys, k)

    def test_page_size_one(self):
        pool = PagePool(2, 4, page_tokens=1)
        layer = PagedLayerKV(pool)
        layer.append(block(3), block(3), np.arange(3))
        assert len(layer.page_table) == 3

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            PagePool(2, 4, page_tokens=0)

    def test_shared_batch_respects_page_size(self, llama, tok):
        from repro.cache.encoder import encode_module
        from repro.cache.layout import layout_schema
        from repro.pml import Schema

        layout = layout_schema(
            Schema.parse('<schema name="z"><module name="m">the quick brown fox jumps over</module></schema>'),
            tok,
        )
        kv = encode_module(llama, layout.module("m"))
        _, base = shared_batch_caches(llama.config, [kv], 2, page_tokens=4)
        assert base.pools[0].page_tokens == 4
