"""The AST lint engine: suppressions, baseline, CLI, repo self-check."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analyze_main
from repro.analysis.engine import (
    SourceModule,
    analyze_paths,
    fingerprints,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.analysis.rules import BroadExceptRule, default_rules

REPO_ROOT = Path(__file__).resolve().parents[1]

SWALLOW = """\
def f():
    try:
        pass
    except Exception:
        pass
"""


def module_of(text: str, name: str = "mod.py") -> SourceModule:
    return SourceModule(Path(name), name, text)


class TestSuppressions:
    def test_bare_noqa_suppresses_every_rule(self):
        src = SWALLOW.replace("except Exception:", "except Exception:  # noqa")
        module = module_of(src)
        assert module.suppressed(4, "no-bare-broad-except")
        assert module.suppressed(4, "anything-else")

    def test_named_noqa_suppresses_only_named_rules(self):
        src = SWALLOW.replace(
            "except Exception:", "except Exception:  # noqa: no-bare-broad-except"
        )
        module = module_of(src)
        assert module.suppressed(4, "no-bare-broad-except")
        assert not module.suppressed(4, "guarded-by")

    def test_justification_after_rule_name_still_matches(self):
        src = SWALLOW.replace(
            "except Exception:",
            "except Exception:  # noqa: no-bare-broad-except - best effort probe",
        )
        module = module_of(src)
        assert module.suppressed(4, "no-bare-broad-except")

    def test_engine_drops_suppressed_findings(self, tmp_path):
        clean = SWALLOW.replace("except Exception:", "except Exception:  # noqa")
        (tmp_path / "a.py").write_text(SWALLOW)
        (tmp_path / "b.py").write_text(clean)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert [finding.path for finding in report.findings] == ["a.py"]


class TestBaseline:
    def test_roundtrip_covers_findings(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert len(report.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        baseline = load_baseline(baseline_path)
        assert new_findings(report.findings, baseline) == []

    def test_new_finding_not_covered(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        # A second, distinct violation appears.
        (tmp_path / "b.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        fresh = new_findings(report.findings, load_baseline(baseline_path))
        assert [finding.path for finding in fresh] == ["b.py"]

    def test_fingerprint_survives_line_drift(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW)
        before = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        (tmp_path / "a.py").write_text("import os\n\n\n" + SWALLOW)
        after = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert fingerprints(before.findings) == fingerprints(after.findings)
        assert before.findings[0].line != after.findings[0].line

    def test_identical_lines_fingerprint_per_occurrence(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW + "\n\n" + SWALLOW.replace("def f", "def g"))
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert len(report.findings) == 2
        prints = fingerprints(report.findings)
        assert len(set(prints)) == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out

    def test_new_finding_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                           "--error-on-new"])
        assert rc == 1
        assert "no-bare-broad-except" in capsys.readouterr().out

    def test_write_baseline_then_pass_then_strict_fails(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        baseline = str(tmp_path / "b.json")
        assert analyze_main([str(tmp_path), "--baseline", baseline,
                             "--write-baseline"]) == 0
        assert analyze_main([str(tmp_path), "--baseline", baseline]) == 0
        assert analyze_main([str(tmp_path), "--baseline", baseline, "--strict"]) == 1
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                           "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "no-bare-broad-except"
        assert payload["findings"][0]["baselined"] is False

    def test_rules_filter_and_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                           "--rules", "guarded-by"])
        assert rc == 0  # broad-except rule not selected
        assert analyze_main(["--rules", "nope"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("guarded-by", "async-hygiene", "no-bare-broad-except",
                     "kv-contract"):
            assert name in out

    def test_parse_error_reported_and_fails(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert rc == 1
        assert "parse error" in capsys.readouterr().err


class TestRepoSelfCheck:
    """Acceptance: the analyzer is clean on the repo's own source."""

    def test_src_passes_against_committed_baseline(self, capsys):
        assert analyze_main([]) == 0
        capsys.readouterr()

    def test_committed_baseline_exists_and_is_minimal(self):
        baseline = REPO_ROOT / "analysis-baseline.json"
        assert baseline.exists(), "commit analysis-baseline.json at the repo root"
        entries = json.loads(baseline.read_text())["findings"]
        # The baseline is a debt ledger, not a dumping ground.
        assert len(entries) <= 8
