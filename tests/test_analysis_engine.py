"""The AST lint engine: suppressions, baseline, CLI, repo self-check."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main as analyze_main
from repro.analysis.engine import (
    SourceModule,
    analyze_paths,
    fingerprints,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.analysis.rules import BroadExceptRule, default_rules

REPO_ROOT = Path(__file__).resolve().parents[1]

SWALLOW = """\
def f():
    try:
        pass
    except Exception:
        pass
"""


def module_of(text: str, name: str = "mod.py") -> SourceModule:
    return SourceModule(Path(name), name, text)


class TestSuppressions:
    def test_bare_noqa_suppresses_every_rule(self):
        src = SWALLOW.replace("except Exception:", "except Exception:  # noqa")
        module = module_of(src)
        assert module.suppressed(4, "no-bare-broad-except")
        assert module.suppressed(4, "anything-else")

    def test_named_noqa_suppresses_only_named_rules(self):
        src = SWALLOW.replace(
            "except Exception:", "except Exception:  # noqa: no-bare-broad-except"
        )
        module = module_of(src)
        assert module.suppressed(4, "no-bare-broad-except")
        assert not module.suppressed(4, "guarded-by")

    def test_justification_after_rule_name_still_matches(self):
        src = SWALLOW.replace(
            "except Exception:",
            "except Exception:  # noqa: no-bare-broad-except - best effort probe",
        )
        module = module_of(src)
        assert module.suppressed(4, "no-bare-broad-except")

    def test_engine_drops_suppressed_findings(self, tmp_path):
        clean = SWALLOW.replace("except Exception:", "except Exception:  # noqa")
        (tmp_path / "a.py").write_text(SWALLOW)
        (tmp_path / "b.py").write_text(clean)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert [finding.path for finding in report.findings] == ["a.py"]


class TestBaseline:
    def test_roundtrip_covers_findings(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert len(report.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        baseline = load_baseline(baseline_path)
        assert new_findings(report.findings, baseline) == []

    def test_new_finding_not_covered(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        # A second, distinct violation appears.
        (tmp_path / "b.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        fresh = new_findings(report.findings, load_baseline(baseline_path))
        assert [finding.path for finding in fresh] == ["b.py"]

    def test_fingerprint_survives_line_drift(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW)
        before = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        (tmp_path / "a.py").write_text("import os\n\n\n" + SWALLOW)
        after = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert fingerprints(before.findings) == fingerprints(after.findings)
        assert before.findings[0].line != after.findings[0].line

    def test_identical_lines_fingerprint_per_occurrence(self, tmp_path):
        (tmp_path / "a.py").write_text(SWALLOW + "\n\n" + SWALLOW.replace("def f", "def g"))
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert len(report.findings) == 2
        prints = fingerprints(report.findings)
        assert len(set(prints)) == 2

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out

    def test_new_finding_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                           "--error-on-new"])
        assert rc == 1
        assert "no-bare-broad-except" in capsys.readouterr().out

    def test_write_baseline_then_pass_then_strict_fails(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        baseline = str(tmp_path / "b.json")
        assert analyze_main([str(tmp_path), "--baseline", baseline,
                             "--write-baseline"]) == 0
        assert analyze_main([str(tmp_path), "--baseline", baseline]) == 0
        assert analyze_main([str(tmp_path), "--baseline", baseline, "--strict"]) == 1
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                           "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "no-bare-broad-except"
        assert payload["findings"][0]["baselined"] is False

    def test_rules_filter_and_unknown_rule(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                           "--rules", "guarded-by"])
        assert rc == 0  # broad-except rule not selected
        assert analyze_main(["--rules", "nope"]) == 2
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert analyze_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for name in ("guarded-by", "async-hygiene", "no-bare-broad-except",
                     "kv-contract"):
            assert name in out

    def test_parse_error_reported_and_fails(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def f(:\n")
        rc = analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json")])
        assert rc == 1
        assert "parse error" in capsys.readouterr().err


class TestRepoSelfCheck:
    """Acceptance: the analyzer is clean on the repo's own source."""

    def test_src_passes_against_committed_baseline(self, capsys):
        assert analyze_main([]) == 0
        capsys.readouterr()

    def test_committed_baseline_exists_and_is_minimal(self):
        baseline = REPO_ROOT / "analysis-baseline.json"
        assert baseline.exists(), "commit analysis-baseline.json at the repo root"
        entries = json.loads(baseline.read_text())["findings"]
        # The baseline is a debt ledger, not a dumping ground.
        assert len(entries) <= 8


class TestNoqaJustification:
    def run(self, src):
        from repro.analysis.rules import NoqaJustificationRule

        return NoqaJustificationRule().check(module_of(src))

    def test_bare_noqa_without_reason_is_flagged(self):
        findings = self.run("x = 1  # noqa\n")
        assert len(findings) == 1
        assert "blanket" in findings[0].message
        assert findings[0].severity == "warning"

    def test_named_noqa_without_reason_is_flagged(self):
        findings = self.run("x = 1  # noqa: guarded-by\n")
        assert len(findings) == 1
        assert "justification" in findings[0].message

    def test_justified_noqa_is_clean(self):
        assert self.run("x = 1  # noqa: guarded-by - snapshot is immutable\n") == []


class TestBaselineRemap:
    def test_rename_alone_yields_zero_new_findings(self, tmp_path, capsys):
        (tmp_path / "old.py").write_text(SWALLOW)
        baseline = str(tmp_path / "b.json")
        assert analyze_main([str(tmp_path), "--baseline", baseline,
                             "--write-baseline"]) == 0
        # Pure rename: same content, new path. Paths outside the repo
        # root are baselined by their full path, so remap those.
        (tmp_path / "old.py").rename(tmp_path / "new.py")
        spec = f"{(tmp_path / 'old.py').as_posix()}:{(tmp_path / 'new.py').as_posix()}"
        assert analyze_main([str(tmp_path), "--baseline", baseline,
                             "--baseline-remap", spec]) == 0
        rc = analyze_main([str(tmp_path), "--baseline", baseline,
                           "--error-on-new"])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out

    def test_malformed_spec_is_usage_error(self, tmp_path):
        assert analyze_main([str(tmp_path), "--baseline",
                             str(tmp_path / "b.json"),
                             "--baseline-remap", "no-colon"]) == 2

    def test_remap_api_rewrites_fingerprints(self, tmp_path):
        from repro.analysis.engine import remap_baseline

        (tmp_path / "old.py").write_text(SWALLOW)
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        baseline_path = tmp_path / "b.json"
        write_baseline(baseline_path, report.findings)
        (tmp_path / "old.py").rename(tmp_path / "new.py")
        changed = remap_baseline(baseline_path, {"old.py": "new.py"})
        assert changed == 1
        report = analyze_paths([tmp_path], [BroadExceptRule()], root=tmp_path)
        assert new_findings(report.findings, load_baseline(baseline_path)) == []


class TestSarif:
    def test_sarif_document_shape(self, tmp_path):
        from repro.analysis.rules import default_rules
        from repro.analysis.sarif import to_sarif

        (tmp_path / "bad.py").write_text(SWALLOW)
        rules = [BroadExceptRule()]
        report = analyze_paths([tmp_path], rules, root=tmp_path)
        doc = to_sarif(report.findings, default_rules())
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        rule_ids = [r["id"] for r in driver["rules"]]
        assert "no-bare-broad-except" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "no-bare-broad-except"
        assert result["level"] == "error"
        assert result["ruleIndex"] == rule_ids.index("no-bare-broad-except")
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "bad.py"
        assert location["region"]["startLine"] == 4
        assert "reproAnalysis/v1" in result["partialFingerprints"]

    def test_cli_writes_sarif_file(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(SWALLOW)
        out = tmp_path / "out.sarif"
        analyze_main([str(tmp_path), "--baseline", str(tmp_path / "b.json"),
                      "--sarif-out", str(out)])
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["runs"][0]["results"], "findings must be exported"


class TestParallelScan:
    def test_jobs_parity_with_serial(self, tmp_path):
        from repro.analysis.rules import default_rules

        for i in range(6):
            (tmp_path / f"mod{i}.py").write_text(SWALLOW.replace("def f", f"def f{i}"))
        serial = analyze_paths([tmp_path], default_rules(), root=tmp_path)
        parallel = analyze_paths([tmp_path], default_rules(), root=tmp_path, jobs=4)
        assert fingerprints(serial.findings) == fingerprints(parallel.findings)
        assert serial.files_scanned == parallel.files_scanned
