"""Module encoding: the masking-equivalence theorems behind Prompt Cache.

Two exact claims from §3.1/§3.3, verified numerically:

1. Encoding a module **alone** (empty cache, schema positions) produces the
   same KV states as a full prefill under a block-diagonal attention mask.
2. **Scaffold** (joint) encoding produces exactly the full-prefill states —
   no approximation at all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.encoder import drop_param_slots, encode_module, encode_scaffold
from repro.cache.layout import layout_schema
from repro.pml import Schema

SRC = (
    '<schema name="s"><module name="a">the quick brown fox</module>'
    '<module name="b">jumps over the lazy dog</module></schema>'
)


@pytest.fixture(scope="module")
def layouts(tok):
    lo = layout_schema(Schema.parse(SRC), tok)
    return lo


class TestIndependentEncoding:
    def test_positions_preserved(self, any_model, layouts, tok):
        kv = encode_module(any_model, layouts.module("b"))
        np.testing.assert_array_equal(kv.positions, layouts.module("b").positions)

    def test_matches_block_diagonal_full_pass(self, any_model, layouts):
        """Claim 1: independent encoding == masked joint computation.

        Encoding module b alone must equal what a joint forward over a+b
        would give b *if* b were masked from seeing a. We verify by
        checking that b-alone differs from b-in-joint exactly when b can
        see a, and equals it for the first token of b... stronger: we run
        the joint pass and confirm a's states are identical to a-alone
        (a never sees b either way — causality)."""
        a, b = layouts.module("a"), layouts.module("b")
        joint = encode_scaffold(any_model, [a, b])
        alone_a = encode_module(any_model, a)
        for layer in range(any_model.config.n_layers):
            np.testing.assert_allclose(
                alone_a.keys[layer], joint["a"].keys[layer], atol=1e-5
            )
            np.testing.assert_allclose(
                alone_a.values[layer], joint["a"].values[layer], atol=1e-5
            )

    def test_kv_projections_identical_joint_vs_alone_first_layer(self, llama, layouts):
        """At layer 0, K/V are pure projections of embeddings + RoPE — they
        cannot depend on other tokens, so alone == joint exactly."""
        b = layouts.module("b")
        alone = encode_module(llama, b)
        joint = encode_scaffold(llama, [layouts.module("a"), b])
        np.testing.assert_allclose(alone.keys[0], joint["b"].keys[0], atol=1e-6)
        np.testing.assert_allclose(alone.values[0], joint["b"].values[0], atol=1e-6)

    def test_deeper_layers_reflect_masking(self, llama, layouts):
        """Beyond layer 0, b-alone differs from b-joint: the joint pass let
        b attend to a. This difference IS the paper's approximation."""
        b = layouts.module("b")
        alone = encode_module(llama, b)
        joint = encode_scaffold(llama, [layouts.module("a"), b])
        assert not np.allclose(alone.keys[1], joint["b"].keys[1], atol=1e-6)

    def test_empty_module(self, llama, tok):
        lo = layout_schema(
            Schema.parse('<schema name="s"><module name="e"></module></schema>'), tok
        )
        kv = encode_module(llama, lo.module("e"))
        assert len(kv) == 0

    def test_encoding_deterministic(self, any_model, layouts):
        a1 = encode_module(any_model, layouts.module("a"))
        a2 = encode_module(any_model, layouts.module("a"))
        for l in range(any_model.config.n_layers):
            np.testing.assert_array_equal(a1.keys[l], a2.keys[l])


class TestScaffoldEncoding:
    def test_equals_full_prefill(self, any_model, layouts, tok):
        """Claim 2: scaffold == the states of one contiguous prefill."""
        a, b = layouts.module("a"), layouts.module("b")
        scaffold = encode_scaffold(any_model, [a, b])
        ids = np.concatenate([a.token_ids, b.token_ids])
        positions = np.concatenate([a.positions, b.positions])
        cache = any_model.new_cache(capacity=len(ids))
        any_model.forward(ids, positions, cache)
        joint_keys = cache.layers[1].keys
        recombined = np.concatenate(
            [scaffold["a"].keys[1], scaffold["b"].keys[1]], axis=1
        )
        np.testing.assert_allclose(recombined, joint_keys, atol=1e-6)

    def test_order_normalized_by_span(self, llama, layouts):
        """Passing modules out of document order must not change states."""
        a, b = layouts.module("a"), layouts.module("b")
        fwd = encode_scaffold(llama, [a, b])
        rev = encode_scaffold(llama, [b, a])
        np.testing.assert_array_equal(fwd["b"].keys[1], rev["b"].keys[1])

    def test_empty_scaffold_rejected(self, llama):
        with pytest.raises(ValueError):
            encode_scaffold(llama, [])


class TestParamSlotDropping:
    SRC = (
        '<schema name="p"><module name="m">plan '
        '<param name="d" len="3"/> days ahead</module></schema>'
    )

    def test_drops_exactly_slot_entries(self, llama, tok):
        lo = layout_schema(Schema.parse(self.SRC), tok)
        m = lo.module("m")
        kv = encode_module(llama, m)
        dropped = drop_param_slots(kv, m, list(m.params.values()))
        assert len(dropped) == len(kv) - 3
        slot_positions = set(map(int, m.param_positions("d")))
        assert not (set(map(int, dropped.positions)) & slot_positions)

    def test_no_slots_is_identity(self, llama, layouts):
        a = layouts.module("a")
        kv = encode_module(llama, a)
        assert drop_param_slots(kv, a, []) is kv

    def test_surviving_states_unchanged(self, llama, tok):
        lo = layout_schema(Schema.parse(self.SRC), tok)
        m = lo.module("m")
        kv = encode_module(llama, m)
        dropped = drop_param_slots(kv, m, list(m.params.values()))
        keep = np.ones(len(kv), dtype=bool)
        slot = m.params["d"]
        keep[slot.offset : slot.offset + slot.length] = False
        np.testing.assert_array_equal(dropped.keys[0], kv.keys[0][:, keep, :])
