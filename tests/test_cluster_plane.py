"""Distribution plane: exporter + fetcher over real loopback sockets."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.cluster import wire
from repro.cluster.exporter import CacheExporter
from repro.cluster.fetcher import FetchFailed, PeerFetcher
from repro.server.metrics import MetricsRegistry

from tests.test_cluster_wire import make_module_kv


def run(coro):
    return asyncio.run(coro)


KEY = CacheKey("plane", "ctx")


def make_exporter(**kwargs):
    store = ModuleCacheStore()
    store.put(KEY, make_module_kv(tokens=9, seed=7))
    return store, CacheExporter(store, metrics=MetricsRegistry(), **kwargs)


class TestExporterFetcher:
    def test_fetch_hit_round_trips(self):
        async def scenario():
            store, exporter = make_exporter(chunk_size=128)
            address = await exporter.start()
            fetcher = PeerFetcher(metrics=MetricsRegistry())
            try:
                kv = await fetcher.fetch(address, KEY)
            finally:
                await exporter.stop()
            return store, fetcher, kv

        store, fetcher, kv = run(scenario())
        original = store.peek(KEY).kv
        np.testing.assert_array_equal(kv.positions, original.positions)
        np.testing.assert_array_equal(kv.keys[0], original.keys[0])
        snap = fetcher.metrics.snapshot()["counters"]
        assert snap['cluster_peer_fetch_total{outcome="hit"}'] == 1

    def test_fetch_miss_returns_none(self):
        async def scenario():
            _, exporter = make_exporter()
            address = await exporter.start()
            fetcher = PeerFetcher(metrics=MetricsRegistry())
            try:
                kv = await fetcher.fetch(address, CacheKey("plane", "absent"))
            finally:
                await exporter.stop()
            return fetcher, kv

        fetcher, kv = run(scenario())
        assert kv is None
        snap = fetcher.metrics.snapshot()["counters"]
        assert snap['cluster_peer_fetch_total{outcome="miss"}'] == 1
        assert "cluster_fetch_bytes_total" not in snap

    def test_singleflight_dedups_concurrent_fetches(self):
        async def scenario():
            _, exporter = make_exporter()
            address = await exporter.start()
            fetcher = PeerFetcher(metrics=MetricsRegistry())
            try:
                results = await asyncio.gather(
                    *(fetcher.fetch(address, KEY) for _ in range(8))
                )
            finally:
                await exporter.stop()
            return exporter, fetcher, results

        exporter, fetcher, results = run(scenario())
        assert all(kv is not None for kv in results)
        served = exporter.metrics.snapshot()["counters"][
            'cluster_export_requests_total{outcome="served"}'
        ]
        # One wire transfer; everyone else waited on the shared flight.
        assert served == 1
        snap = fetcher.metrics.snapshot()["counters"]
        assert snap['cluster_peer_fetch_total{outcome="hit"}'] == 1
        assert snap['cluster_peer_fetch_total{outcome="deduped"}'] == 7

    def test_unreachable_peer_retries_then_fails(self):
        async def scenario():
            fetcher = PeerFetcher(
                metrics=MetricsRegistry(), timeout_s=0.2, retries=2,
                backoff_s=0.01,
            )
            with pytest.raises(FetchFailed) as info:
                # A port nothing listens on: connection refused each try.
                await fetcher.fetch(("127.0.0.1", 1), KEY)
            return fetcher, info.value

        fetcher, error = run(scenario())
        assert error.attempts == 3
        snap = fetcher.metrics.snapshot()["counters"]
        assert snap['cluster_peer_fetch_total{outcome="retry"}'] == 2
        assert snap['cluster_peer_fetch_total{outcome="error"}'] == 1

    def test_retry_recovers_after_peer_comes_back(self):
        async def scenario():
            store, exporter = make_exporter()
            fetcher = PeerFetcher(
                metrics=MetricsRegistry(), timeout_s=0.5, retries=3,
                backoff_s=0.05,
            )

            async def start_late():
                await asyncio.sleep(0.08)
                await exporter.start()

            # Reserve a fixed port first so the fetcher knows the target.
            await exporter.start()
            address = exporter.address
            await exporter.stop()
            exporter.port = address[1]
            late = asyncio.create_task(start_late())
            try:
                kv = await fetcher.fetch(address, KEY)
            finally:
                await late
                await exporter.stop()
            return kv

        assert run(scenario()) is not None

    def test_ping_and_stats(self):
        async def scenario():
            _, exporter = make_exporter(
                health_snapshot=lambda: {"state": "up", "queue_depth": 3},
                stats_snapshot=lambda: {"counters": {"x": 1}},
            )
            address = await exporter.start()
            reader, writer = await asyncio.open_connection(*address)
            try:
                writer.write(wire.pack_frame(wire.MSG_PING))
                await writer.drain()
                msg_type, payload = await wire.read_frame(reader)
                pong = (msg_type, wire.decode_json(payload))
                writer.write(wire.pack_frame(wire.MSG_STATS))
                await writer.drain()
                msg_type, payload = await wire.read_frame(reader)
                stats = (msg_type, wire.decode_json(payload))
            finally:
                writer.close()
                await writer.wait_closed()
                await exporter.stop()
            return pong, stats

        pong, stats = run(scenario())
        assert pong == (wire.MSG_PONG, {"state": "up", "queue_depth": 3})
        assert stats == (wire.MSG_STATS_REPLY, {"counters": {"x": 1}})

    def test_unexpected_message_type_errors(self):
        async def scenario():
            _, exporter = make_exporter()
            address = await exporter.start()
            reader, writer = await asyncio.open_connection(*address)
            try:
                writer.write(wire.pack_frame(wire.MSG_END))
                await writer.drain()
                msg_type, payload = await wire.read_frame(reader)
            finally:
                writer.close()
                await writer.wait_closed()
                await exporter.stop()
            return msg_type, wire.decode_json(payload)

        msg_type, payload = run(scenario())
        assert msg_type == wire.MSG_ERROR
        assert "unexpected" in payload["error"]

    def test_export_counters(self):
        async def scenario():
            _, exporter = make_exporter()
            address = await exporter.start()
            fetcher = PeerFetcher(metrics=MetricsRegistry())
            try:
                await fetcher.fetch(address, KEY)
                await fetcher.fetch(address, CacheKey("plane", "absent"))
            finally:
                await exporter.stop()
            return exporter

        exporter = run(scenario())
        counters = exporter.metrics.snapshot()["counters"]
        assert counters['cluster_export_requests_total{outcome="served"}'] == 1
        assert counters['cluster_export_requests_total{outcome="not_found"}'] == 1
        assert counters["cluster_export_bytes_total"] > 0
