"""Schema object: validation, lookup, chat templates, serialization."""

from __future__ import annotations

import pytest

from repro.pml import (
    LLAMA2_TEMPLATE,
    MPT_TEMPLATE,
    PLAIN_TEMPLATE,
    Schema,
    ValidationError,
    resolve_roles,
    template_for_architecture,
)
from repro.pml.ast import TextNode
from repro.pml.parser import parse_schema

TRAVEL = '''
<schema name="travel">
  You are a travel planner.
  <module name="trip-plan">Plan <param name="duration" len="4"/> days.</module>
  <union>
    <module name="miami">Miami facts.</module>
    <module name="paris">Paris facts.<module name="louvre">Louvre facts.</module></module>
  </union>
  <scaffold modules="trip-plan,miami"/>
</schema>
'''


class TestSchemaValidation:
    def test_indexes_all_modules(self):
        schema = Schema.parse(TRAVEL)
        assert set(schema.modules) == {"trip-plan", "miami", "paris", "louvre"}

    def test_parent_links(self):
        schema = Schema.parse(TRAVEL)
        assert schema.parents["louvre"] == "paris"
        assert schema.parents["miami"] is None
        assert schema.ancestors("louvre") == ["paris"]

    def test_union_membership(self):
        schema = Schema.parse(TRAVEL)
        assert schema.in_same_union("miami", "paris")
        assert not schema.in_same_union("miami", "trip-plan")

    def test_duplicate_module_rejected(self):
        with pytest.raises(ValidationError):
            Schema.parse('<schema name="s"><module name="m">a</module><module name="m">b</module></schema>')

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValidationError):
            Schema.parse(
                '<schema name="s"><module name="m"><param name="p" len="1"/>'
                '<param name="p" len="2"/></module></schema>'
            )

    def test_scaffold_unknown_module_rejected(self):
        with pytest.raises(ValidationError):
            Schema.parse('<schema name="s"><scaffold modules="a,b"/><module name="a">1</module></schema>')

    def test_params_of(self):
        schema = Schema.parse(TRAVEL)
        params = schema.params_of("trip-plan")
        assert list(params) == ["duration"]
        assert params["duration"].length == 4

    def test_module_lookup_error_lists_known(self):
        schema = Schema.parse(TRAVEL)
        with pytest.raises(KeyError, match="miami"):
            schema.module("atlantis")


class TestSerialization:
    def test_round_trip(self):
        schema = Schema.parse(TRAVEL)
        again = Schema.parse(schema.to_pml())
        assert set(again.modules) == set(schema.modules)
        assert again.scaffolds == schema.scaffolds
        assert again.parents == schema.parents

    def test_escapes_special_chars(self):
        schema = Schema.parse('<schema name="s"><module name="m">a &lt; b &amp; c</module></schema>')
        again = Schema.parse(schema.to_pml())
        text = again.module("m").children[0]
        assert text.text == "a < b & c"


class TestChatTemplates:
    def test_llama2_framing(self):
        root = parse_schema('<schema name="s"><system>be kind</system></schema>')
        resolved = resolve_roles(root, LLAMA2_TEMPLATE)
        texts = [c.text for c in resolved.children if isinstance(c, TextNode)]
        assert texts[0].startswith("<s>[INST] <<SYS>>")
        assert any("be kind" in t for t in texts)

    def test_mpt_chatml_framing(self):
        root = parse_schema('<schema name="s"><user>hello</user></schema>')
        resolved = resolve_roles(root, MPT_TEMPLATE)
        texts = [c.text for c in resolved.children if isinstance(c, TextNode)]
        assert texts[0] == "<|im_start|>user\n"

    def test_modules_survive_role_resolution(self):
        root = parse_schema('<schema name="s"><user><module name="doc">d</module></user></schema>')
        resolved = resolve_roles(root, LLAMA2_TEMPLATE)
        schema = Schema.from_node(resolved)
        assert "doc" in schema.modules

    def test_roles_inside_modules_resolved(self):
        root = parse_schema('<schema name="s"><module name="m"><system>sys</system></module></schema>')
        schema = Schema.from_node(resolve_roles(root, PLAIN_TEMPLATE))
        texts = [c for c in schema.module("m").children if isinstance(c, TextNode)]
        assert any("sys" in t.text for t in texts)

    def test_template_per_architecture(self):
        assert template_for_architecture("llama").name == "llama2"
        assert template_for_architecture("mpt").name == "mpt"
        assert template_for_architecture("falcon").name == "falcon"
        assert template_for_architecture("gpt2").name == "plain"
        assert template_for_architecture("anything-else").name == "plain"

    def test_layout_rejects_unresolved_roles(self, tok):
        from repro.cache.layout import layout_schema

        schema = Schema.parse('<schema name="s"><system>sys</system></schema>', template=None)
        with pytest.raises(ValidationError):
            layout_schema(schema, tok)
