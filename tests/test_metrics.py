"""Scoring metrics: normalization, F1, Rouge-L, accuracy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.metrics import (
    accuracy,
    exact_match,
    normalize_answer,
    rouge_l,
    score,
    token_f1,
)


class TestNormalization:
    def test_lowercase_and_punctuation(self):
        assert normalize_answer("The Answer, is: CORAL!") == "answer is coral"

    def test_articles_removed(self):
        assert normalize_answer("a cat and the dog") == "cat and dog"

    def test_whitespace_squeezed(self):
        assert normalize_answer("  a   b  ") == "b"  # 'a' is an article


class TestTokenF1:
    def test_perfect_match(self):
        assert token_f1("coral", "coral") == 100.0

    def test_no_overlap(self):
        assert token_f1("basalt", "coral") == 0.0

    def test_partial_overlap(self):
        # prediction has 2 tokens, 1 overlaps; reference has 1 token.
        f1 = token_f1("coral reef", "coral")
        assert f1 == pytest.approx(100 * 2 * 0.5 * 1.0 / 1.5)

    def test_case_and_punct_insensitive(self):
        assert token_f1("Coral!", "coral") == 100.0

    def test_empty_prediction(self):
        assert token_f1("", "coral") == 0.0
        assert token_f1("", "") == 100.0

    def test_symmetry_of_sets(self):
        assert token_f1("x y", "y x") == 100.0


class TestRougeL:
    def test_identical(self):
        assert rouge_l("the capital is coral", "the capital is coral") == 100.0

    def test_subsequence_order_matters(self):
        in_order = rouge_l("capital coral harbor", "capital coral harbor basalt")
        shuffled = rouge_l("harbor capital coral", "capital coral harbor basalt")
        assert in_order > shuffled > 0

    def test_disjoint(self):
        assert rouge_l("alpha beta", "gamma delta") == 0.0

    def test_empty(self):
        assert rouge_l("", "reference") == 0.0


class TestAccuracy:
    def test_substring_containment(self):
        assert accuracy("i think the answer is passage 3 indeed", "passage 3") == 100.0

    def test_miss(self):
        assert accuracy("passage 4", "passage 3") == 0.0

    def test_exact_match_stricter(self):
        assert exact_match("the passage 3", "passage 3") == 100.0  # article dropped
        assert exact_match("surely passage 3", "passage 3") == 0.0


class TestDispatch:
    def test_known_metrics(self):
        assert score("f1", "coral", "coral") == 100.0
        assert score("rougeL", "a b", "a b") == 100.0
        assert score("acc", "xyz coral", "coral") == 100.0
        assert score("em", "coral", "coral") == 100.0

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            score("bleu", "a", "b")


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="abcdef ", max_size=40), st.text(alphabet="abcdef ", max_size=40))
def test_metric_ranges_property(pred, ref):
    for name in ("f1", "rougeL", "acc", "em"):
        value = score(name, pred, ref)
        assert 0.0 <= value <= 100.0


@settings(max_examples=40, deadline=None)
@given(st.text(alphabet="ghijk ", min_size=1, max_size=40))
def test_self_score_is_perfect_property(text):
    if normalize_answer(text):
        assert token_f1(text, text) == 100.0
        assert rouge_l(text, text) == 100.0
        assert exact_match(text, text) == 100.0
