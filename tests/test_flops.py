"""FLOP/byte counting: internal consistency and the paper's formulas."""

from __future__ import annotations

import pytest

from repro.llm import flops as F
from repro.llm.config import paper_config, tiny_config

LLAMA7B = paper_config("llama2-7b")


class TestAttentionFlops:
    def test_paper_formula_values(self):
        # 6nd^2 + 4n^2d exactly as §2.2 states.
        assert F.paper_attention_flops(10, 100) == 6 * 10 * 100**2 + 4 * 100 * 100

    def test_full_prefill_reduces_to_quadratic_plus_linear(self):
        cfg = LLAMA7B
        n = 1000
        total = F.attention_flops(cfg, n, n)
        # projections + output grow linearly, score/context quadratically.
        linear_part = 2 * n * cfg.d_model * (cfg.d_model + 2 * cfg.kv_dim) + 2 * n * cfg.d_model**2
        quadratic_part = 4 * n * n * cfg.d_model
        assert total == linear_part + quadratic_part

    def test_mha_matches_paper_order(self):
        """For MHA the detailed count differs from the paper's 6nd^2+4n^2d
        only by the output projection (2nd^2)."""
        cfg = LLAMA7B
        n = 512
        assert F.attention_flops(cfg, n, n) == F.paper_attention_flops(
            n, cfg.d_model
        ) + 2 * n * cfg.d_model**2

    def test_suffix_prefill_scales_with_new_tokens(self):
        cfg = LLAMA7B
        full = F.attention_flops(cfg, 1000, 1000)
        suffix = F.attention_flops(cfg, 10, 1000)
        assert suffix < full / 50

    def test_gqa_shrinks_kv_projections(self):
        mha = tiny_config("llama")
        import dataclasses

        gqa = dataclasses.replace(mha, n_kv_heads=2)
        assert F.attention_flops(gqa, 64, 64) < F.attention_flops(mha, 64, 64)

    def test_gqa_pinned_counts(self):
        """Regression pins for the explicit head-grouped accounting:
        tiny-llama (d=64, 4 heads of dim 16) with 2 KV heads. GQA halves
        the K/V projection term; the quadratic score/context terms run
        per *query* head and must not shrink."""
        import dataclasses

        mha = tiny_config("llama")
        gqa = dataclasses.replace(mha, n_kv_heads=2)
        assert F.attention_flops(mha, 64, 64) == 3_145_728
        assert F.attention_flops(gqa, 64, 64) == 2_621_440
        assert F.attention_flops(gqa, 1, 100) == 50_176
        # The whole MHA-GQA gap is the K/V projection delta.
        assert F.attention_flops(mha, 64, 64) - F.attention_flops(
            gqa, 64, 64
        ) == 2 * 2 * 64 * mha.d_model * (2 * mha.head_dim)


class TestModelFlops:
    def test_prefill_quadratic_growth(self):
        """Doubling sequence length must more than double prefill FLOPs
        (the quadratic term the paper's Fig 5 hinges on)."""
        a = F.prefill_flops(LLAMA7B, 2000)
        b = F.prefill_flops(LLAMA7B, 4000)
        assert b > 2 * a

    def test_cached_prefill_near_linear_in_uncached(self):
        a = F.cached_prefill_flops(LLAMA7B, 10, 5000)
        b = F.cached_prefill_flops(LLAMA7B, 20, 5000)
        assert b < 2.2 * a

    def test_cached_prefill_below_full(self):
        assert F.cached_prefill_flops(LLAMA7B, 100, 5000) < F.prefill_flops(LLAMA7B, 5000)

    def test_decode_step_linear_in_context(self):
        a = F.decode_step_flops(LLAMA7B, 1000)
        b = F.decode_step_flops(LLAMA7B, 2000)
        assert a < b < 2 * a  # linear attention term + constant projections

    def test_swiglu_mlp_has_three_matrices(self):
        llama = tiny_config("llama")
        import dataclasses

        gelu = dataclasses.replace(llama, mlp="gelu")
        assert F.mlp_flops(llama, 10) == 3 * 2 * 10 * llama.d_model * llama.d_ff
        assert F.mlp_flops(gelu, 10) == 2 * 2 * 10 * llama.d_model * llama.d_ff


class TestTwoPhaseFlops:
    """Pins for the ChunkAttention effective-FLOP accounting that feeds
    the decode_flops_saved_total gauge and the ablation benchmark."""

    TINY = tiny_config("llama")  # 4 heads of dim 16

    def test_stream_and_merge_pinned(self):
        assert F.decode_attention_stream_flops(self.TINY, 100) == 25_600
        assert F.decode_attention_stream_flops(self.TINY, 100, queries=3) == 76_800
        assert F.two_phase_merge_flops(self.TINY) == 512

    def test_shared_step_cheaper_and_consistent(self):
        shared = F.shared_decode_attention_flops(self.TINY, 40, [2, 3, 4])
        single = F.single_pass_decode_attention_flops(self.TINY, 40, [2, 3, 4])
        assert shared == 14_080
        assert single == 33_024
        # The gauge's increment is exactly the two paths' difference
        # (private streams cancel; only chunk duplication and the merge
        # overhead remain).
        assert single - shared == F.shared_decode_flops_saved(self.TINY, 40, 3)

    def test_saved_pinned_and_floored_at_zero(self):
        assert F.shared_decode_flops_saved(self.TINY, 40, 16) == 145_408
        # A trivial share can cost more in merges than it saves in
        # streaming; the policy metric never goes negative.
        assert F.shared_decode_flops_saved(self.TINY, 1, 2) == 0
        assert F.shared_decode_flops_saved(self.TINY, 40, 1) == 0


class TestBytes:
    def test_kv_bytes_matches_table2_accounting(self):
        assert F.kv_bytes(LLAMA7B, 1000) == 1000 * LLAMA7B.kv_bytes_per_token()

    def test_weight_bytes_roughly_param_count(self):
        # Llama2-7B has ~6.7B parameters; fp16 weights ~13.5 GB.
        gb = F.weight_bytes(LLAMA7B, 2) / 1e9
        assert 12 < gb < 15

    def test_activation_bytes_grow_quadratically(self):
        a = F.prefill_activation_bytes(LLAMA7B, 1000)
        b = F.prefill_activation_bytes(LLAMA7B, 4000)
        assert b > 4 * a
