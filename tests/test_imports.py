"""Every module in the package imports cleanly and exports what it says."""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("name", MODULES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize(
    "name",
    ["repro", "repro.llm", "repro.pml", "repro.cache", "repro.hw",
     "repro.datasets", "repro.serving", "repro.train", "repro.tokenizer",
     "repro.bench"],
)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol) or symbol == "PromptCache", (name, symbol)
    # Lazy attributes must also resolve.
    if name == "repro":
        assert repro.PromptCache is not None


def test_package_count_sanity():
    # The repo-scale guarantee: the package keeps its subsystem breadth.
    assert len(MODULES) >= 45
