"""Consistent-hash ring: stability, balance, and failover order."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing

NODES = ["w0", "w1", "w2", "w3"]
KEYS = [f"schema{i}|context" for i in range(200)]


class TestPlacement:
    def test_deterministic(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))  # insertion order is irrelevant
        for key in KEYS:
            assert a.node_for(key) == b.node_for(key)

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().node_for("k")
        assert HashRing().preference_list("k") == []

    def test_every_node_gets_keys(self):
        ring = HashRing(NODES)
        owners = {ring.node_for(key) for key in KEYS}
        assert owners == set(NODES)

    def test_balance_within_reason(self):
        ring = HashRing(NODES, vnodes=128)
        counts = {n: 0 for n in NODES}
        for i in range(4000):
            counts[ring.node_for(f"key-{i}")] += 1
        for n, count in counts.items():
            # 4 nodes → expectation 1000; vnodes keep skew modest.
            assert 500 < count < 1800, (n, counts)

    def test_ownership_share_sums_to_one(self):
        ring = HashRing(NODES)
        shares = ring.ownership_share()
        assert set(shares) == set(NODES)
        assert sum(shares.values()) == pytest.approx(1.0)
        ring = HashRing(["solo"], vnodes=1)
        assert ring.ownership_share() == {"solo": 1.0}


class TestMembershipChanges:
    def test_remove_moves_only_dead_nodes_keys(self):
        ring = HashRing(NODES)
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("w2")
        for key, owner in before.items():
            if owner == "w2":
                assert ring.node_for(key) != "w2"
            else:
                # The defining consistent-hashing property: survivors'
                # keys (and their warm caches) stay put.
                assert ring.node_for(key) == owner

    def test_add_is_idempotent_remove_unknown_is_noop(self):
        ring = HashRing(NODES)
        ring.add("w0")
        assert len(ring) == 4
        ring.remove("nope")
        assert len(ring) == 4

    def test_readd_restores_placement(self):
        ring = HashRing(NODES)
        before = {key: ring.node_for(key) for key in KEYS}
        ring.remove("w1")
        ring.add("w1")
        assert {key: ring.node_for(key) for key in KEYS} == before


class TestPreferenceList:
    def test_distinct_home_first(self):
        ring = HashRing(NODES)
        for key in KEYS[:50]:
            prefs = ring.preference_list(key)
            assert prefs[0] == ring.node_for(key)
            assert len(prefs) == len(set(prefs)) == len(NODES)

    def test_n_limits_length(self):
        ring = HashRing(NODES)
        assert len(ring.preference_list("k", n=2)) == 2
        assert len(ring.preference_list("k", n=99)) == len(NODES)

    def test_failover_order_survives_death(self):
        ring = HashRing(NODES)
        prefs = ring.preference_list(KEYS[0])
        ring.remove(prefs[0])
        assert ring.node_for(KEYS[0]) == prefs[1]
