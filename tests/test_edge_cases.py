"""Edge-case battery across subsystems: paths the focused suites skip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.llm import generate, generate_no_cache
from repro.llm.sampling import TemperatureSampler
from repro.pml import (
    FALCON_TEMPLATE,
    PLAIN_TEMPLATE,
    Schema,
    TEMPLATES,
    prompt_function,
)
from repro.pml.compiler import emit


class TestParamDefaults:
    SCHEMA = (
        '<schema name="dflt"><module name="m">the plan lasts '
        '<param name="dur" len="10" default="two days"/> total</module></schema>'
    )

    def test_default_used_when_arg_missing(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(self.SCHEMA)
        with_default = pc.serve('<prompt schema="dflt"><m/> go</prompt>', max_new_tokens=3)
        explicit = pc.serve(
            '<prompt schema="dflt"><m dur="two days"/> go</prompt>', max_new_tokens=3
        )
        # Default text behaves exactly like supplying it as the argument.
        assert with_default.output_ids == explicit.output_ids
        assert with_default.uncached_tokens == explicit.uncached_tokens

    def test_argument_overrides_default(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(self.SCHEMA)
        default = pc.serve('<prompt schema="dflt"><m/> go</prompt>', max_new_tokens=3)
        overridden = pc.serve(
            '<prompt schema="dflt"><m dur="one week"/> go</prompt>', max_new_tokens=3
        )
        assert (
            default.output_ids != overridden.output_ids
            or default.uncached_tokens != overridden.uncached_tokens
        )

    def test_multiple_params_in_one_module(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(
            '<schema name="mp"><module name="m">from '
            '<param name="src" len="4"/> to <param name="dst" len="4"/> now'
            "</module></schema>"
        )
        result = pc.serve(
            '<prompt schema="mp"><m src="paris" dst="miami"/> go</prompt>',
            max_new_tokens=3,
        )
        assert result.uncached_tokens >= 2  # both arguments computed

    def test_param_inside_nested_module(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(
            '<schema name="nest"><module name="outer">intro '
            '<module name="inner">span <param name="p" len="3"/> end</module>'
            " outro</module></schema>"
        )
        result = pc.serve(
            '<prompt schema="nest"><outer><inner p="x"/></outer> q</prompt>',
            max_new_tokens=2,
        )
        assert result.cached_tokens > 0


class TestCodecScaffoldInteraction:
    SCHEMA = (
        '<schema name="cs"><scaffold modules="a,b"/>'
        '<module name="a">the quick brown fox</module>'
        '<module name="b">jumps over the lazy dog</module></schema>'
    )

    @pytest.mark.parametrize("codec", ["fp16", "int8"])
    def test_scaffold_serving_under_codec(self, llama, tok, codec):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec=codec)
        pc.register_schema(self.SCHEMA)
        result = pc.serve(
            '<prompt schema="cs"><a/><b/> what ?</prompt>', max_new_tokens=4
        )
        assert len(result.output_ids) == 4

    def test_fp16_scaffold_still_matches_baseline(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec="fp16")
        pc.register_schema(self.SCHEMA)
        prompt = '<prompt schema="cs"><a/><b/> what ?</prompt>'
        cached = pc.serve(prompt, max_new_tokens=4)
        baseline = pc.baseline(prompt, max_new_tokens=4)
        assert cached.output_ids == baseline.output_ids


class TestSamplers:
    def test_temperature_sampling_distribution(self):
        sampler = TemperatureSampler(temperature=1.0, seed=0)
        logits = np.log(np.array([0.7, 0.2, 0.1], dtype=np.float32))
        draws = [sampler(logits) for _ in range(600)]
        freq0 = draws.count(0) / len(draws)
        assert 0.6 < freq0 < 0.8  # tracks the softmax probabilities

    def test_high_temperature_flattens(self):
        sharp = TemperatureSampler(temperature=0.1, seed=1)
        flat = TemperatureSampler(temperature=10.0, seed=1)
        logits = np.array([2.0, 0.0, 0.0], dtype=np.float32)
        sharp_draws = [sharp(logits) for _ in range(200)]
        flat_draws = [flat(logits) for _ in range(200)]
        assert sharp_draws.count(0) > flat_draws.count(0)

    def test_no_cache_generation_records_ttst(self, llama):
        result = generate_no_cache(llama, [5, 6, 7], max_new_tokens=3)
        assert len(result.step_times_s) == 2
        assert result.ttst_s > 0

    def test_stop_ids_in_no_cache_path(self, llama):
        probe = generate(llama, [5, 6, 7], max_new_tokens=5)
        stop = probe.output_ids[0]
        result = generate_no_cache(llama, [5, 6, 7], max_new_tokens=5, stop_ids={stop})
        assert result.output_ids == [stop]


class TestTemplatesRegistry:
    def test_four_templates_registered(self):
        assert set(TEMPLATES) == {"llama2", "mpt", "falcon", "plain"}

    def test_falcon_framing(self):
        prefix, suffix = FALCON_TEMPLATE.framing("user")
        assert prefix == "User: " and suffix == "\n"

    def test_unknown_role_rejected(self):
        with pytest.raises(KeyError):
            PLAIN_TEMPLATE.framing("narrator")


class TestCompilerNaming:
    def test_custom_name_override(self):
        @prompt_function(name="custom-name")
        def whatever():
            """Some text."""
            emit("body text here ")

        assert whatever.name == "custom-name"
        assert 'schema name="custom-name"' in whatever.to_pml()

    def test_compiled_schema_serves(self, llama, tok):
        @prompt_function(name="served")
        def fn():
            """Intro words here."""
            emit("the quick brown fox jumps ")

        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(fn.to_pml())
        result = pc.serve(fn.build_prompt(extra_text=" and then ?"), max_new_tokens=3)
        assert result.cached_tokens > 0
