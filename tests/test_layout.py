"""Position-ID layout (paper §3.3): absolute assignment, unions, params."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.layout import ANONYMOUS_PREFIX, layout_schema
from repro.pml import Schema


def layout(tok, source):
    return layout_schema(Schema.parse(source), tok)


class TestBasicAssignment:
    def test_sequential_modules_adjacent(self, tok):
        lo = layout(tok, '<schema name="s"><module name="a">the quick</module><module name="b">brown fox</module></schema>')
        a, b = lo.module("a"), lo.module("b")
        assert a.span_start == 0
        assert b.span_start == a.span_end
        assert lo.total_length == b.span_end

    def test_starting_position_is_absolute_location(self, tok):
        """Paper's example: modules of sizes s1, s2 put the third at s1+s2."""
        lo = layout(tok, '<schema name="s"><module name="a">the quick</module><module name="b">brown</module><module name="c">fox</module></schema>')
        a, b, c = (lo.module(n) for n in "abc")
        assert c.span_start == a.span_length + b.span_length

    def test_positions_match_span(self, tok):
        lo = layout(tok, '<schema name="s"><module name="a">the quick brown fox</module></schema>')
        a = lo.module("a")
        np.testing.assert_array_equal(a.positions, np.arange(a.span_start, a.span_end))

    def test_anonymous_text_becomes_module(self, tok):
        lo = layout(tok, '<schema name="s">intro text<module name="m">body</module></schema>')
        anon = lo.always_included()
        assert len(anon) == 1
        assert anon[0].startswith(ANONYMOUS_PREFIX)
        assert lo.module(anon[0]).anonymous
        assert lo.module(anon[0]).span_start == 0
        assert lo.module("m").span_start == lo.module(anon[0]).span_end

    def test_layout_is_deterministic(self, tok):
        src = '<schema name="s"><module name="a">the quick</module><module name="b">brown</module></schema>'
        lo1, lo2 = layout(tok, src), layout(tok, src)
        for name in lo1.modules:
            np.testing.assert_array_equal(
                lo1.module(name).positions, lo2.module(name).positions
            )
            np.testing.assert_array_equal(
                lo1.module(name).token_ids, lo2.module(name).token_ids
            )


class TestUnions:
    SRC = (
        '<schema name="s"><union>'
        '<module name="short">fox</module>'
        '<module name="long">the quick brown fox jumps over</module>'
        '</union><module name="after">dog</module></schema>'
    )

    def test_members_share_start(self, tok):
        lo = layout(tok, self.SRC)
        assert lo.module("short").span_start == lo.module("long").span_start == 0

    def test_union_extent_is_largest_member(self, tok):
        """Paper: "their token sequence size is considered with the size of
        the largest child"."""
        lo = layout(tok, self.SRC)
        assert lo.module("after").span_start == lo.module("long").span_end
        assert lo.module("long").span_end > lo.module("short").span_end

    def test_union_conserves_positions_vs_flat(self, tok):
        """A union occupies max(sizes), a flat layout sum(sizes)."""
        flat = layout(
            tok,
            '<schema name="s"><module name="short">fox</module>'
            '<module name="long">the quick brown fox jumps over</module>'
            '<module name="after">dog</module></schema>',
        )
        union = layout(tok, self.SRC)
        assert union.total_length < flat.total_length


class TestParams:
    SRC = (
        '<schema name="s"><module name="m">plan '
        '<param name="duration" len="5" default="two"/> days</module></schema>'
    )

    def test_param_reserves_len_unk_tokens(self, tok):
        lo = layout(tok, self.SRC)
        m = lo.module("m")
        slot = m.params["duration"]
        assert slot.length == 5
        run = m.token_ids[slot.offset : slot.offset + slot.length]
        assert (run == tok.unk_id).all()

    def test_param_positions_recorded(self, tok):
        lo = layout(tok, self.SRC)
        m = lo.module("m")
        positions = m.param_positions("duration")
        assert len(positions) == 5
        np.testing.assert_array_equal(positions, np.arange(positions[0], positions[0] + 5))

    def test_default_carried(self, tok):
        lo = layout(tok, self.SRC)
        assert lo.module("m").params["duration"].default == "two"

    def test_text_after_param_continues(self, tok):
        lo = layout(tok, self.SRC)
        m = lo.module("m")
        # direct positions are contiguous: text, slot, text
        np.testing.assert_array_equal(m.positions, np.arange(m.span_start, m.span_end))


class TestNesting:
    SRC = (
        '<schema name="s"><module name="outer">intro '
        '<module name="inner">nested body</module> outro</module></schema>'
    )

    def test_nested_module_inside_parent_span(self, tok):
        lo = layout(tok, self.SRC)
        outer, inner = lo.module("outer"), lo.module("inner")
        assert outer.span_start <= inner.span_start
        assert inner.span_end <= outer.span_end

    def test_parent_direct_positions_skip_nested_range(self, tok):
        lo = layout(tok, self.SRC)
        outer, inner = lo.module("outer"), lo.module("inner")
        overlap = set(map(int, outer.positions)) & set(map(int, inner.positions))
        assert not overlap

    def test_no_overlaps_except_unions(self, tok):
        src = (
            '<schema name="s">sys<module name="a">aa bb</module>'
            '<union><module name="u1">cc</module><module name="u2">dd ee ff</module></union>'
            '<module name="b">gg <module name="c">hh</module></module></schema>'
        )
        lo = layout(tok, src)
        schema = Schema.parse(src)
        names = list(lo.modules)
        for i, x in enumerate(names):
            for y in names[i + 1 :]:
                if schema.in_same_union(x, y):
                    continue
                shared = set(map(int, lo.module(x).positions)) & set(
                    map(int, lo.module(y).positions)
                )
                assert not shared, (x, y)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.sampled_from(["the quick", "brown fox jumps", "over", "the lazy dog"]),
        min_size=1,
        max_size=5,
    )
)
def test_total_length_is_sum_of_spans_property(texts):
    """With no unions, the schema extent equals the sum of module extents."""
    from tests.conftest import TRAIN_TEXTS
    from repro.tokenizer.bpe import train_bpe

    tok = _PROPERTY_TOK
    body = "".join(
        f'<module name="m{i}">{t}</module>' for i, t in enumerate(texts)
    )
    lo = layout_schema(Schema.parse(f'<schema name="s">{body}</schema>'), tok)
    assert lo.total_length == sum(m.span_length for m in lo.modules.values())


from repro.tokenizer.bpe import train_bpe as _tb
from tests.conftest import TRAIN_TEXTS as _TT

_PROPERTY_TOK = _tb(_TT, vocab_size=320)
