"""Synthetic corpus and LongBench-like suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    CATEGORIES,
    DATASETS,
    HEADLINE_DATASETS,
    SyntheticCorpus,
    build_dataset,
    completion_sample,
    game_codebase,
    module_name_for,
    training_corpus,
)
from repro.pml import Schema, resolve


class TestCorpus:
    def test_documents_deterministic(self):
        a = SyntheticCorpus(seed=1).document("d0")
        b = SyntheticCorpus(seed=1).document("d0")
        assert a.text == b.text and a.facts == b.facts

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(seed=1).document("d0")
        b = SyntheticCorpus(seed=2).document("d0")
        assert a.text != b.text

    def test_word_count_close_to_target(self):
        doc = SyntheticCorpus(seed=0).document("d1", n_words=400)
        assert 300 <= doc.word_count <= 520

    def test_facts_embedded_in_text(self):
        doc = SyntheticCorpus(seed=0).document("d2", n_facts=3)
        assert len(doc.facts) == 3
        for fact in doc.facts:
            assert fact.statement() in doc.text

    def test_fact_question_answerable(self):
        doc = SyntheticCorpus(seed=0).document("d3")
        fact = doc.facts[0]
        assert fact.value in fact.statement()
        assert fact.entity in fact.question()

    def test_multi_hop_chain_links(self):
        rng = np.random.default_rng(0)
        chain = SyntheticCorpus(seed=0).multi_hop_chain(rng, hops=3)
        assert chain[0].value == chain[1].entity
        assert chain[1].value == chain[2].entity

    def test_zh_flavor_uses_different_bank(self):
        corpus = SyntheticCorpus(seed=0)
        zh = corpus.document("z", flavor="zh", n_facts=0)
        assert "the" not in zh.sentences[0]

    def test_training_corpus_nonempty(self):
        texts = training_corpus()
        assert len(texts) > 10
        assert all(isinstance(t, str) and t for t in texts)


class TestSuiteStructure:
    def test_at_least_21_datasets(self):
        assert len(DATASETS) >= 21  # LongBench has 21

    def test_six_categories(self):
        assert len(CATEGORIES) == 6

    def test_headline_eight(self):
        assert len(HEADLINE_DATASETS) == 8
        for name in HEADLINE_DATASETS:
            assert DATASETS[name].headline

    def test_metrics_match_table1(self):
        # Table 1's metric column.
        assert DATASETS["narrativeqa"].metric == "f1"
        assert DATASETS["2wikimqa"].metric == "f1"
        assert DATASETS["musique"].metric == "f1"
        assert DATASETS["gov_report"].metric == "rougeL"
        assert DATASETS["qmsum"].metric == "rougeL"
        assert DATASETS["multi_news"].metric == "rougeL"
        assert DATASETS["triviaqa"].metric == "f1"
        assert DATASETS["passage_retrieval_en"].metric == "acc"

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            build_dataset("imaginary")


@pytest.mark.parametrize("name", sorted(DATASETS))
class TestEveryDataset:
    def test_samples_well_formed(self, name):
        samples = build_dataset(name, n_samples=2, context_words=120)
        assert len(samples) == 2
        for s in samples:
            assert s.dataset == name
            assert s.documents and all(t for _, t in s.documents)
            assert s.question and s.answer
            assert s.metric == DATASETS[name].metric

    def test_pml_round_trip(self, name):
        """Every sample's schema must parse and its prompt must resolve."""
        sample = build_dataset(name, n_samples=1, context_words=100)[0]
        schema = Schema.parse(sample.schema_pml())
        resolved = resolve(sample.prompt_pml(), schema)
        assert len(resolved.selections) == len(sample.documents)

    def test_deterministic(self, name):
        a = build_dataset(name, n_samples=1, context_words=100)[0]
        b = build_dataset(name, n_samples=1, context_words=100)[0]
        assert a.question == b.question and a.answer == b.answer
        assert a.documents == b.documents


class TestAnswerability:
    """The reference answer must be derivable from the documents — the
    property that makes baseline-vs-cached score comparisons meaningful."""

    @pytest.mark.parametrize("name", ["narrativeqa", "triviaqa", "qasper"])
    def test_single_hop_answer_in_context(self, name):
        for s in build_dataset(name, n_samples=3, context_words=150):
            context = " ".join(t for _, t in s.documents)
            assert s.answer in context

    def test_multi_hop_chain_recoverable(self):
        for s in build_dataset("2wikimqa", n_samples=3, context_words=200):
            context = " ".join(t for _, t in s.documents)
            assert s.answer in context

    def test_retrieval_target_is_a_real_passage(self):
        for s in build_dataset("passage_retrieval_en", n_samples=3, context_words=200):
            index = int(s.answer.split()[-1])
            assert 0 <= index < len(s.documents)

    def test_summary_facts_all_in_context(self):
        s = build_dataset("gov_report", n_samples=1, context_words=200)[0]
        context = " ".join(t for _, t in s.documents)
        for statement in s.answer.split(" . "):
            assert statement.strip(" .") in context


class TestCodegen:
    def test_codebase_has_four_files(self):
        files = game_codebase()
        assert set(files) == {"unit.py", "map.py", "game.py", "player.py"}

    def test_sources_are_valid_python(self):
        import ast

        for source in game_codebase().values():
            ast.parse(source)

    def test_deterministic(self):
        assert game_codebase(seed=3) == game_codebase(seed=3)

    def test_module_name_mapping(self):
        assert module_name_for("unit.py") == "file-unit"

    def test_completion_sample_next_line_follows_context(self):
        context, visible, nxt = completion_sample(seed=1, index=5)
        assert context.endswith(visible)
        assert nxt not in ("", None)


class TestBM25:
    def setup_method(self):
        from repro.datasets.retrieval import BM25Index

        self.index = BM25Index()
        self.index.add("fox", "the quick brown fox jumps over the lazy dog")
        self.index.add("paris", "paris has museum basalt and cafes by the seine")
        self.index.add("ferry", "the harbor ferry crosses the bay every forty minutes")

    def test_exact_topic_ranks_first(self):
        hits = self.index.search("ferry bay crossing", k=3)
        assert hits[0].doc_id == "ferry"

    def test_rare_terms_outweigh_common(self):
        # "the" appears everywhere; "basalt" only in paris.
        hits = self.index.search("the basalt", k=1)
        assert hits[0].doc_id == "paris"

    def test_no_match_returns_empty(self):
        assert self.index.search("zeppelin quantum", k=3) == []

    def test_k_limits_results(self):
        assert len(self.index.search("the", k=2)) <= 2

    def test_duplicate_doc_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            self.index.add("fox", "again")

    def test_scores_deterministic(self):
        a = self.index.search("quick fox", k=3)
        b = self.index.search("quick fox", k=3)
        assert [(h.doc_id, h.score) for h in a] == [(h.doc_id, h.score) for h in b]

    def test_retrieval_over_synthetic_pool(self):
        from repro.datasets.corpus import SyntheticCorpus
        from repro.datasets.retrieval import BM25Index

        corpus = SyntheticCorpus(seed=3)
        index = BM25Index()
        docs = [corpus.document(f"p{i}", n_words=60, n_facts=2) for i in range(6)]
        for i, doc in enumerate(docs):
            index.add(f"p{i}", doc.text)
        # Querying with a document's own fact retrieves that document.
        target = docs[4].facts[0]
        hits = index.search(target.completion(), k=1)
        assert hits and hits[0].doc_id == "p4"
