"""Prompt resolution against a schema (the §3.4 alignment check)."""

from __future__ import annotations

import pytest

from repro.pml import Schema, SchemaMismatchError, resolve

SCHEMA = Schema.parse('''
<schema name="travel">
  Intro text.
  <module name="trip-plan">Plan <param name="duration" len="4"/> days.</module>
  <union>
    <module name="miami">Miami.</module>
    <module name="paris">Paris.<module name="louvre">Louvre.</module></module>
  </union>
</schema>
''')


class TestResolve:
    def test_selections_in_document_order(self):
        resolved = resolve('<prompt schema="travel"><trip-plan/><miami/></prompt>', SCHEMA)
        assert resolved.selected_names() == ["trip-plan", "miami"]

    def test_arguments_captured(self):
        resolved = resolve(
            '<prompt schema="travel"><trip-plan duration="3 days"/></prompt>', SCHEMA
        )
        assert resolved.selections[0].args == {"duration": "3 days"}

    def test_new_text_anchoring(self):
        resolved = resolve(
            '<prompt schema="travel">lead <miami/> tail</prompt>', SCHEMA
        )
        lead, tail = resolved.texts
        assert lead.anchor is None
        assert tail.anchor == "miami"

    def test_nested_import(self):
        resolved = resolve('<prompt schema="travel"><paris><louvre/></paris></prompt>', SCHEMA)
        assert resolved.selected_names() == ["paris", "louvre"]

    def test_text_inside_import_anchors_to_module(self):
        resolved = resolve('<prompt schema="travel"><paris>note</paris></prompt>', SCHEMA)
        assert resolved.texts[0].anchor == "paris"


class TestMismatches:
    def test_wrong_schema_name(self):
        with pytest.raises(SchemaMismatchError):
            resolve('<prompt schema="other"><miami/></prompt>', SCHEMA)

    def test_unknown_module(self):
        with pytest.raises(SchemaMismatchError, match="atlantis"):
            resolve('<prompt schema="travel"><atlantis/></prompt>', SCHEMA)

    def test_double_import(self):
        with pytest.raises(SchemaMismatchError, match="twice"):
            resolve('<prompt schema="travel"><miami/><miami/></prompt>', SCHEMA)

    def test_union_conflict(self):
        with pytest.raises(SchemaMismatchError, match="union"):
            resolve('<prompt schema="travel"><miami/><paris/></prompt>', SCHEMA)

    def test_nested_module_at_top_level(self):
        with pytest.raises(SchemaMismatchError, match="louvre"):
            resolve('<prompt schema="travel"><louvre/></prompt>', SCHEMA)

    def test_parent_module_inside_wrong_parent(self):
        with pytest.raises(SchemaMismatchError):
            resolve('<prompt schema="travel"><trip-plan><miami/></trip-plan></prompt>', SCHEMA)

    def test_undeclared_argument(self):
        with pytest.raises(SchemaMismatchError, match="no parameter"):
            resolve('<prompt schema="travel"><miami style="fancy"/></prompt>', SCHEMA)
