"""Serving simulator: queueing behaviour, cache dynamics, trace synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.device import RTX_4090
from repro.llm.config import paper_config
from repro.serving import (
    SchemaProfile,
    SimConfig,
    TraceRequest,
    longbench_profiles,
    poisson_arrivals,
    simulate,
    sustainable_rate,
    synthesize_trace,
)

LLAMA7B = paper_config("llama2-7b")


def request(i, arrival, schema="s0", cached=2000, uncached=100, decode=8):
    return TraceRequest(
        request_id=i, arrival_s=arrival, schema=schema,
        cached_tokens=cached, uncached_tokens=uncached, decode_tokens=decode,
    )


def config(mode, capacity=None):
    return SimConfig(
        model=LLAMA7B, device=RTX_4090, mode=mode, gpu_capacity_bytes=capacity
    )


class TestTraces:
    def test_poisson_rate_roughly_matches(self):
        rng = np.random.default_rng(0)
        times = poisson_arrivals(5.0, 200.0, rng)
        assert 800 < len(times) < 1200
        assert all(t < 200.0 for t in times)
        assert times == sorted(times)

    def test_trace_deterministic(self):
        profiles = longbench_profiles()
        a = synthesize_trace(profiles, 1.0, 60, seed=3)
        b = synthesize_trace(profiles, 1.0, 60, seed=3)
        assert a == b

    def test_popularity_skew(self):
        profiles = longbench_profiles(n_schemas=4)
        trace = synthesize_trace(profiles, 20.0, 100, seed=0)
        counts = {p.name: 0 for p in profiles}
        for r in trace:
            counts[r.schema] += 1
        assert counts["schema0"] > counts["schema3"]

    def test_profiles_shape(self):
        profiles = longbench_profiles(n_schemas=8, context_tokens=4000)
        assert len(profiles) == 8
        assert all(p.module_tokens == 4000 for p in profiles)


class TestSimulator:
    def test_fcfs_no_overlap(self):
        trace = [request(i, 0.1 * i) for i in range(5)]
        report = simulate(trace, config("baseline"))
        outcomes = sorted(report.outcomes, key=lambda o: o.start_s)
        for a, b in zip(outcomes, outcomes[1:]):
            assert b.start_s >= a.finish_s - 1e-9

    def test_idle_server_starts_immediately(self):
        trace = [request(0, 5.0)]
        report = simulate(trace, config("baseline"))
        assert report.outcomes[0].start_s == pytest.approx(5.0)
        assert report.outcomes[0].queue_wait_s == pytest.approx(0.0)

    def test_prompt_cache_faster_after_warmup(self):
        # Same schema hit repeatedly: first request encodes, rest splice.
        trace = [request(i, float(i) * 100) for i in range(4)]  # no queueing
        base = simulate(trace, config("baseline"))
        cached = simulate(trace, config("prompt-cache"))
        assert cached.encode_events == 1
        # Warm requests beat the baseline by a wide margin.
        warm_cached = cached.outcomes[-1].ttft_s
        warm_base = base.outcomes[-1].ttft_s
        assert warm_base > 4 * warm_cached

    def test_cold_start_pays_encode(self):
        trace = [request(0, 0.0)]
        report = simulate(trace, config("prompt-cache"))
        assert report.encode_events == 1
        # encode (full module prefill) + suffix: at least the baseline cost.
        base = simulate(trace, config("baseline"))
        assert report.outcomes[0].ttft_s >= base.outcomes[0].ttft_s

    def test_eviction_causes_h2d_fetches(self):
        # Two schemas, capacity for one module: they keep evicting each
        # other into host memory; re-fetches pay the h2d path.
        kv_bytes_one = LLAMA7B.kv_bytes_per_token() * 2100
        trace = []
        for i in range(6):
            trace.append(request(i, float(i) * 50, schema=f"s{i % 2}"))
        report = simulate(trace, config("prompt-cache", capacity=int(1.5 * kv_bytes_one)))
        assert report.encode_events == 2  # each schema encoded once
        assert report.h2d_fetches >= 3  # later hits come from host memory

    def test_unlimited_capacity_no_h2d(self):
        trace = [request(i, float(i) * 50, schema=f"s{i % 2}") for i in range(6)]
        report = simulate(trace, config("prompt-cache"))
        assert report.h2d_fetches == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(model=LLAMA7B, device=RTX_4090, mode="magic")

    def test_report_metrics(self):
        trace = [request(i, 0.5 * i) for i in range(10)]
        report = simulate(trace, config("prompt-cache"))
        assert 0 < report.throughput_rps
        assert 0 < report.utilization <= 1.0
        assert report.ttft_percentile(50) <= report.ttft_percentile(95)


class TestSustainableRate:
    def test_prompt_cache_sustains_higher_load(self):
        profiles = [
            SchemaProfile("hot", module_tokens=3000, uncached_mean=80,
                          decode_mean=8, weight=1.0)
        ]
        rates = [0.2, 0.4, 0.8, 1.6]
        base = sustainable_rate(
            profiles, config("baseline"), rates=rates, duration_s=60, ttft_slo_s=3.0
        )
        cached = sustainable_rate(
            profiles, config("prompt-cache"), rates=rates, duration_s=60, ttft_slo_s=3.0
        )
        assert cached > base
