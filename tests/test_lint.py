"""Schema linter diagnostics."""

from __future__ import annotations

import pytest

from repro.llm.config import paper_config, tiny_config
from repro.pml import Schema
from repro.pml.lint import Diagnostic, lint_schema

LLAMA7B = paper_config("llama2-7b")


def lint(tok, source, config=None, budget=None):
    return lint_schema(Schema.parse(source), tok, config, budget)


class TestDiagnostics:
    def test_clean_schema(self, tok):
        diags = lint(
            tok,
            '<schema name="ok"><module name="doc">a perfectly reasonable '
            "module with enough text to be worth caching here</module></schema>",
            LLAMA7B,
        )
        assert diags == []

    def test_position_overflow_error(self, tok):
        text = "word " * 600
        diags = lint(
            tok,
            f'<schema name="big"><module name="m">{text}</module></schema>',
            tiny_config("llama", max_position=512),
        )
        assert any(d.code == "position-overflow" and d.severity == "error" for d in diags)

    def test_position_pressure_warning(self, tok):
        text = "word " * 460  # ~2300 tokens of 2500: over the 90% threshold
        diags = lint(
            tok,
            f'<schema name="tight"><module name="m">{text}</module></schema>',
            tiny_config("llama", max_position=2500),
        )
        assert any(d.code == "position-pressure" for d in diags)

    def test_memory_overflow(self, tok):
        text = "word " * 200
        diags = lint(
            tok,
            f'<schema name="mem"><module name="m">{text}</module></schema>',
            LLAMA7B,
            budget=1000,  # absurdly small on purpose
        )
        assert any(d.code == "memory-overflow" and d.severity == "error" for d in diags)

    def test_empty_module(self, tok):
        diags = lint(tok, '<schema name="e"><module name="void"></module></schema>')
        assert any(d.code == "empty-module" and d.module == "void" for d in diags)

    def test_single_member_union(self, tok):
        diags = lint(
            tok,
            '<schema name="u"><union><module name="solo">alone here now</module></union></schema>',
        )
        assert any(d.code == "single-member-union" for d in diags)

    def test_large_param(self, tok):
        diags = lint(
            tok,
            '<schema name="p"><module name="m">text '
            '<param name="huge" len="100"/></module></schema>',
        )
        assert any(d.code == "large-param" for d in diags)

    def test_tiny_module(self, tok):
        diags = lint(tok, '<schema name="t"><module name="wee">hi</module></schema>')
        assert any(d.code == "tiny-module" and d.module == "wee" for d in diags)

    def test_severity_ordering(self, tok):
        text = "word " * 600
        diags = lint(
            tok,
            f'<schema name="mixed"><module name="m">{text}</module>'
            '<module name="wee">hi</module></schema>',
            tiny_config("llama", max_position=512),
        )
        severities = [d.severity for d in diags]
        assert severities == sorted(
            severities, key=lambda s: ("error", "warning", "info").index(s)
        )

    def test_str_rendering(self):
        diag = Diagnostic("warning", "demo-code", "something", module="m")
        assert str(diag) == "warning:demo-code [m]: something"
