"""Module persistence to disk + runtime module updates + invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.compress import Int8Codec
from repro.cache.engine import PromptCache
from repro.cache.persist import load_store, save_store
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.pml import PLAIN_TEMPLATE

SCHEMA = (
    '<schema name="lib"><module name="a">the quick brown fox</module>'
    '<module name="b">jumps over the lazy dog</module></schema>'
)


@pytest.fixture()
def pc(llama, tok):
    cache = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
    cache.register_schema(SCHEMA)
    return cache


class TestPersistence:
    def test_round_trip_raw_entries(self, pc, tmp_path):
        report = save_store(pc.store, tmp_path)
        assert report.saved >= 2
        assert not report.partial
        restored = load_store(tmp_path)
        for name in ("a", "b"):
            key = CacheKey("lib", name)
            original = pc.store.fetch(key).entry.kv
            loaded = restored.fetch(key).entry.kv
            np.testing.assert_array_equal(loaded.positions, original.positions)
            np.testing.assert_array_equal(loaded.keys[0], original.keys[0])

    @pytest.mark.parametrize("format", ["v1", "v2"])
    def test_round_trip_restores_arena_backing(self, pc, tmp_path, format):
        """Restored raw modules must stay on the one-memcpy splice fast
        path: the loader rebuilds them via ``ModuleKV.from_arenas``, not
        as loose per-layer lists (the pre-v2 loader silently dropped the
        arena on restart)."""
        save_store(pc.store, tmp_path, format=format)
        restored = load_store(tmp_path)
        for name in ("a", "b"):
            key = CacheKey("lib", name)
            loaded = restored.fetch(key).entry.kv
            assert loaded.is_arena, f"{format} restore dropped arena backing"
            np.testing.assert_array_equal(
                loaded.key_arena, pc.store.fetch(key).entry.kv.key_arena
            )
            np.testing.assert_array_equal(
                loaded.value_arena, pc.store.fetch(key).entry.kv.value_arena
            )

    def test_round_trip_preserves_tier(self, llama, tok, tmp_path):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, default_tier="cpu")
        pc.register_schema(SCHEMA)
        save_store(pc.store, tmp_path)
        restored = load_store(tmp_path)
        assert restored.fetch(CacheKey("lib", "a")).tier == "cpu"

    def test_round_trip_compressed_entries(self, llama, tok, tmp_path):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec="int8")
        pc.register_schema(SCHEMA)
        save_store(pc.store, tmp_path)
        restored = load_store(tmp_path)
        stored = restored.fetch(CacheKey("lib", "a")).entry.kv
        assert stored.codec == "int8"
        decoded = Int8Codec().decode(stored)
        reference = Int8Codec().decode(pc.store.fetch(CacheKey("lib", "a")).entry.kv)
        np.testing.assert_array_equal(decoded.keys[0], reference.keys[0])

    def test_restored_store_serves(self, pc, llama, tok, tmp_path):
        expected = pc.serve('<prompt schema="lib"><a/><b/> go</prompt>', max_new_tokens=4)
        save_store(pc.store, tmp_path)
        fresh = PromptCache(llama, tok, store=load_store(tmp_path), template=PLAIN_TEMPLATE)
        fresh.register_schema(SCHEMA, eager=False)
        # No re-encoding happens: the store already holds every module.
        insertions_before = fresh.store.gpu.stats.insertions
        result = fresh.serve('<prompt schema="lib"><a/><b/> go</prompt>', max_new_tokens=4)
        assert fresh.store.gpu.stats.insertions == insertions_before
        assert result.output_ids == expected.output_ids


class TestInvalidation:
    def test_invalidate_single_module(self, pc):
        assert pc.invalidate("lib", "a") == 1
        assert pc.store.fetch(CacheKey("lib", "a")) is None
        assert pc.store.fetch(CacheKey("lib", "b")) is not None

    def test_invalidate_whole_schema(self, pc):
        dropped = pc.invalidate("lib")
        assert dropped >= 2
        assert pc.store.fetch(CacheKey("lib", "b")) is None

    def test_serving_after_invalidation_re_encodes(self, pc):
        pc.invalidate("lib", "a")
        result = pc.serve('<prompt schema="lib"><a/> go</prompt>', max_new_tokens=2)
        assert result.cached_tokens > 0
        assert pc.store.fetch(CacheKey("lib", "a")) is not None


class TestRuntimeUpdate:
    def test_update_changes_output(self, pc):
        before = pc.serve('<prompt schema="lib"><a/> go</prompt>', max_new_tokens=5)
        pc.update_module_text("lib", "a", "paris museums cafes louvre seine")
        after = pc.serve('<prompt schema="lib"><a/> go</prompt>', max_new_tokens=5)
        assert before.output_ids != after.output_ids or (
            before.cached_tokens != after.cached_tokens
        )

    def test_update_matches_fresh_registration(self, pc, llama, tok):
        """Updating in place must equal registering the new text from
        scratch — greedy outputs agree."""
        pc.update_module_text("lib", "a", "paris museums cafes louvre seine")
        updated = pc.serve('<prompt schema="lib"><a/><b/> go</prompt>', max_new_tokens=5)

        fresh = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        fresh.register_schema(
            '<schema name="lib"><module name="a">paris museums cafes louvre seine</module>'
            '<module name="b">jumps over the lazy dog</module></schema>'
        )
        reference = fresh.serve('<prompt schema="lib"><a/><b/> go</prompt>', max_new_tokens=5)
        assert updated.output_ids == reference.output_ids

    def test_unaffected_modules_keep_states_when_layout_stable(self, pc, tok):
        """Same token count -> b's span is unchanged -> no re-encode of b."""
        old_text = "the quick brown fox"
        same_length_text = "the quick brown dog"
        assert len(tok.encode(old_text)) == len(tok.encode(same_length_text))
        insertions = pc.store.gpu.stats.insertions
        pc.update_module_text("lib", "a", same_length_text)
        pc.serve('<prompt schema="lib"><a/><b/> go</prompt>', max_new_tokens=2)
        # Exactly one new insertion: the re-encoded module a.
        assert pc.store.gpu.stats.insertions == insertions + 1


class _StandIn:
    """Simulator-style payload with sizes but no tensors to persist."""

    def nbytes(self) -> int:
        return 256

    def __len__(self) -> int:
        return 4


class TestSnapshotIntegrity:
    def test_v1_index_records_sha256(self, pc, tmp_path):
        save_store(pc.store, tmp_path, format="v1")
        import json

        index = json.loads((tmp_path / "index.json").read_text())
        assert index
        for record in index:
            assert len(record["sha256"]) == 64

    def test_corrupt_file_is_skipped_with_warning(self, pc, tmp_path):
        save_store(pc.store, tmp_path, format="v1")
        victim = _flip_byte(tmp_path, "lib", "a")
        with pytest.warns(UserWarning, match="checksum mismatch"):
            restored = load_store(tmp_path)
        assert restored.fetch(CacheKey("lib", "a")) is None  # skipped
        assert restored.fetch(CacheKey("lib", "b")) is not None  # survived
        assert victim.exists()  # we only skip, never delete

    def test_missing_file_is_skipped_with_warning(self, pc, tmp_path):
        save_store(pc.store, tmp_path, format="v1")
        _payload_path(tmp_path, "lib", "a").unlink()
        with pytest.warns(UserWarning, match="missing"):
            restored = load_store(tmp_path)
        assert restored.fetch(CacheKey("lib", "a")) is None
        assert restored.fetch(CacheKey("lib", "b")) is not None

    def test_truncated_legacy_file_is_skipped(self, pc, tmp_path):
        """Pre-checksum snapshots (no sha256 in the index) still degrade
        to a skip when the archive itself is truncated."""
        import json

        save_store(pc.store, tmp_path, format="v1")
        index_path = tmp_path / "index.json"
        index = json.loads(index_path.read_text())
        for record in index:
            record.pop("sha256")
        index_path.write_text(json.dumps(index))
        path = _payload_path(tmp_path, "lib", "a")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.warns(UserWarning, match="unreadable payload"):
            restored = load_store(tmp_path)
        assert restored.fetch(CacheKey("lib", "a")) is None
        assert restored.fetch(CacheKey("lib", "b")) is not None

    def test_save_reports_skipped_stand_ins(self, pc, tmp_path):
        pc.store.put(CacheKey("lib", "ghost"), _StandIn())
        with pytest.warns(UserWarning, match="partial snapshot"):
            report = save_store(pc.store, tmp_path)
        assert report.saved >= 2
        assert report.skipped == 1
        assert report.partial
        assert "lib/ghost/solo" in report.skipped_keys
        assert "skipped 1" in report.summary()
        # The stand-in never lands in the index; a restore is clean.
        restored = load_store(tmp_path)
        assert restored.fetch(CacheKey("lib", "ghost")) is None


def _payload_path(directory, schema, module, variant="solo"):
    from repro.cache.persist import _entry_path

    return _entry_path(directory, CacheKey(schema, module, variant))


def _flip_byte(directory, schema, module):
    path = _payload_path(directory, schema, module)
    blob = bytearray(path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    path.write_bytes(bytes(blob))
    return path
