"""The three-level splice fast path: compiled plans, spliced bases, mirrors.

Correctness contracts:

- The ``"paged"``/``"arena"`` splice modes produce output token IDs
  byte-identical to the ``"legacy"`` per-layer buffered-concat path.
- Compiled plans are memoized but never served stale: ``register_schema``,
  ``invalidate`` and ``update_module_text`` evict affected entries.
- A spliced-base hit records the same store statistics, tier occupancy
  and CPU-hit promotion as the slow path, and skips the splice memcpy.
- The paged mirror is extended in place during decode; freeing a request
  hands the lease back so the next fork also skips the gather.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.llm.kv import allocation_count, reset_allocation_count
from repro.pml import PLAIN_TEMPLATE

DOC = (
    '<schema name="doc"><module name="d">the quick brown fox jumps over the '
    'lazy dog again and again</module></schema>'
)

TWO_MODULES = (
    '<schema name="duo2">'
    '<module name="a">the quick brown fox jumps over the lazy dog</module>'
    '<module name="b">plan a trip lasting three days focus on food</module>'
    '</schema>'
)

PROMPT = '<prompt schema="doc"><d/> plan a trip</prompt>'


def make_pc(model, tok, **kwargs):
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE, **kwargs)
    pc.register_schema(DOC)
    return pc


class TestPlanCache:
    def test_repeat_serves_hit(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=2)
        assert pc.plan_stats.misses == 1
        pc.serve(PROMPT, max_new_tokens=2)
        assert pc.plan_stats.hits == 1
        assert pc.plan_stats.misses == 1

    def test_whitespace_canonicalization(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=1)
        pc.serve(f"  {PROMPT}\n", max_new_tokens=1)
        assert pc.plan_stats.hits == 1

    def test_baseline_and_token_count_share_plans(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.prompt_token_count(PROMPT)
        assert pc.plan_stats.misses == 1
        pc.baseline(PROMPT, max_new_tokens=1)
        pc.serve(PROMPT, max_new_tokens=1)
        assert pc.plan_stats.misses == 1
        assert pc.plan_stats.hits == 2

    def test_lru_bound(self, llama, tok):
        pc = make_pc(llama, tok, plan_cache_size=2)
        for text in ("one", "two", "three"):
            pc.prompt_token_count(f'<prompt schema="doc"><d/> {text}</prompt>')
        assert len(pc._plan_cache) == 2

    def test_update_module_text_evicts_plans(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=4)
        pc.update_module_text("doc", "d", "the capital of atlantis is coral city")
        assert pc.plan_stats.invalidations >= 1
        updated = pc.serve(PROMPT, max_new_tokens=4)
        assert pc.plan_stats.misses >= 2  # re-planned, not served stale
        # The updated module genuinely flows through: same content as a
        # freshly built engine over the new text.
        fresh = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        fresh.register_schema(
            '<schema name="doc"><module name="d">the capital of atlantis is '
            "coral city</module></schema>"
        )
        assert updated.output_ids == fresh.serve(PROMPT, max_new_tokens=4).output_ids

    def test_invalidate_evicts_plans(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=1)
        assert pc.invalidate("doc", "d") >= 0
        assert pc.plan_stats.invalidations == 1
        pc.serve(PROMPT, max_new_tokens=1)
        assert pc.plan_stats.misses == 2

    def test_invalidate_other_module_keeps_plans(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(TWO_MODULES)
        pc.prompt_token_count('<prompt schema="duo2"><a/> q</prompt>')
        pc.invalidate("duo2", "b")  # plan does not reference module b
        assert pc.plan_stats.invalidations == 0
        pc.prompt_token_count('<prompt schema="duo2"><a/> q</prompt>')
        assert pc.plan_stats.hits == 1

    def test_reregister_evicts_plans(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=1)
        pc.register_schema(DOC)
        assert pc.plan_stats.invalidations == 1

    def test_listener_sees_events(self, llama, tok):
        pc = make_pc(llama, tok)
        events: list[str] = []
        pc.add_plan_cache_listener(events.append)
        pc.serve(PROMPT, max_new_tokens=1)
        pc.serve(PROMPT, max_new_tokens=1)
        pc.invalidate("doc")
        assert events == ["miss", "hit", "invalidation"]


class TestSpliceModeEquivalence:
    @pytest.mark.parametrize("mode", ["paged", "arena"])
    def test_outputs_byte_identical_to_legacy(self, any_model, tok, mode):
        legacy = make_pc(any_model, tok, splice_mode="legacy")
        fast = make_pc(any_model, tok, splice_mode=mode)
        for prompt in (PROMPT, '<prompt schema="doc"><d/> what happened ?</prompt>'):
            want = legacy.serve(prompt, max_new_tokens=8)
            got = fast.serve(prompt, max_new_tokens=8)
            assert got.output_ids == want.output_ids
            # Repeat: the base-hit path must also be identical.
            again = fast.serve(prompt, max_new_tokens=8)
            assert again.output_ids == want.output_ids

    def test_invalid_mode_rejected(self, llama, tok):
        with pytest.raises(ValueError):
            PromptCache(llama, tok, template=PLAIN_TEMPLATE, splice_mode="warp")

    def test_multi_module_equivalence(self, llama, tok):
        legacy = PromptCache(llama, tok, template=PLAIN_TEMPLATE, splice_mode="legacy")
        fast = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        for pc in (legacy, fast):
            pc.register_schema(TWO_MODULES)
        prompt = '<prompt schema="duo2"><a/><b/> what now ?</prompt>'
        assert (
            fast.serve(prompt, max_new_tokens=6).output_ids
            == legacy.serve(prompt, max_new_tokens=6).output_ids
        )


class TestSplicedBase:
    def test_base_hit_skips_splice_allocations(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=2)  # builds + mirrors the base
        assert pc.plan_stats.base_misses == 1
        reset_allocation_count()
        pc.serve(PROMPT, max_new_tokens=2)
        assert pc.plan_stats.base_hits == 1
        # The fork shares pages and mirrors; decode extends in place. No
        # per-module, per-layer splice copies remain on the hot path.
        n_layers = llama.config.n_layers
        assert allocation_count() <= n_layers

    def test_base_hit_still_counts_store_hits(self, llama, tok):
        pc = make_pc(llama, tok)
        hits_before = pc.store.gpu.stats.hits
        pc.serve(PROMPT, max_new_tokens=1)
        pc.serve(PROMPT, max_new_tokens=1)
        # Each serve re-validates the module against the store: two lookups.
        assert pc.store.gpu.stats.hits == hits_before + 2

    def test_base_rebuilt_after_store_eviction(self, llama, tok):
        store = ModuleCacheStore(demote_on_evict=False)
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(DOC)
        first = pc.serve(PROMPT, max_new_tokens=3)
        # Simulate capacity eviction behind the engine's back.
        store.gpu.remove(CacheKey("doc", "d", "solo"))
        second = pc.serve(PROMPT, max_new_tokens=3)
        assert pc.plan_stats.base_misses == 2  # stale base was rebuilt
        assert second.output_ids == first.output_ids

    def test_cpu_tier_tokens_and_promotion(self, llama, tok):
        pc = PromptCache(
            llama, tok, template=PLAIN_TEMPLATE, promote_on_cpu_hit=True
        )
        pc.register_schema(DOC, tier="cpu")
        first = pc.serve(PROMPT, max_new_tokens=1)
        assert first.tier_tokens["cpu"] > 0
        # The CPU hit promoted the module; the next serve is a GPU hit.
        second = pc.serve(PROMPT, max_new_tokens=1)
        assert second.tier_tokens["gpu"] > 0
        assert second.tier_tokens["cpu"] == 0

    def test_base_lru_bound_frees_pages(self, llama, tok):
        pc = PromptCache(
            llama, tok, template=PLAIN_TEMPLATE, base_cache_size=1
        )
        pc.register_schema(TWO_MODULES)
        pc.serve('<prompt schema="duo2"><a/> q</prompt>', max_new_tokens=1)
        base_a = next(iter(pc._bases.values()))
        pc.serve('<prompt schema="duo2"><b/> q</prompt>', max_new_tokens=1)
        assert len(pc._bases) == 1
        # The evicted base released every page it held.
        assert all(len(layer) == 0 for layer in base_a.cache.layers)


class TestServeBatchTierTokens:
    def test_batch_results_fill_tier_tokens(self, llama, tok):
        pc = make_pc(llama, tok)
        batch = pc.serve_batch(
            [PROMPT, '<prompt schema="doc"><d/> another ?</prompt>'],
            max_new_tokens=2,
        )
        for result in batch:
            assert result.tier_tokens["gpu"] > 0
            assert result.tier_tokens["gpu"] == result.cached_tokens


class TestMirrorLease:
    def test_decode_extends_in_place(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=4)
        base = next(iter(pc._bases.values()))
        gathers = base.cache.pools[0].stats.mirror_gathers
        pc.serve(PROMPT, max_new_tokens=4)
        # The second request reused the base's mirrors: no new gathers.
        assert base.cache.pools[0].stats.mirror_gathers == gathers

    def test_lease_returns_after_free(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=3)
        base = next(iter(pc._bases.values()))
        for layer in base.cache.layers:
            mirror = layer._mirror
            assert mirror is not None
            assert mirror.lease is None  # request freed -> lease returned
            assert mirror.length == layer._mirror_len  # truncated to base

    def test_concurrent_forks_stay_isolated(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPT, max_new_tokens=1)
        with pc._fastpath_lock:
            base = next(iter(pc._bases.values()))
            fork_a = base.cache.fork()
            fork_b = base.cache.fork()
        start = base.cached_tokens
        ids = np.array(tok.encode(" what happened ?"))
        pos_a = np.arange(start, start + len(ids))
        la = pc.model.forward(ids, pos_a, fork_a)
        before = np.array(fork_a.layers[0].keys)
        other = np.array(tok.encode(" plan a trip now"))
        lb = pc.model.forward(other, np.arange(start, start + len(other)), fork_b)
        # fork_b's appends (private mirror fallback) left fork_a intact.
        np.testing.assert_array_equal(fork_a.layers[0].keys, before)
        assert not np.allclose(la[-1], lb[-1])
        fork_a.free()
        fork_b.free()


class TestSessionStillWorks:
    def test_session_on_arena_cache(self, llama, tok):
        pc = make_pc(llama, tok)
        session = pc.start_session(PROMPT)
        first = session.send("tell me more", max_new_tokens=3)
        second = session.send("and then ?", max_new_tokens=3)
        assert first.output_ids and second.output_ids
