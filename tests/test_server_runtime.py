"""Live serving runtime: admission, deadlines, batching, metrics.

Policy tests run against a stub engine with controllable service time so
they are deterministic; one integration class drives the real
:class:`PromptCache` to check outputs match the direct path.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.cache.engine import BatchServeResult, PromptCache, ServeResult
from repro.cache.storage import ModuleCacheStore
from repro.pml.chat import PLAIN_TEMPLATE
from repro.pml.errors import UnknownSchemaError
from repro.server import (
    DeadlineExceeded,
    LiveServer,
    Overloaded,
    ServeOptions,
    ServerClosed,
)
from repro.server.request import DONE, EXPIRED, REJECTED


def run(coro):
    return asyncio.run(coro)


class StubEngine:
    """PromptCache-shaped double with a dialable service time."""

    def __init__(self, service_s: float = 0.0, schemas=("a", "b")) -> None:
        self.schemas = {name: object() for name in schemas}
        self.store = ModuleCacheStore()
        self.batches: list[list[str]] = []
        self.service_s = service_s

    def serve_batch(self, prompts, max_new_tokens=16, **kwargs):
        self.batches.append(list(prompts))
        if self.service_s:
            time.sleep(self.service_s)
        results = [
            ServeResult(
                output_ids=[1, 2],
                text="ok",
                prompt_tokens=5,
                cached_tokens=4,
                uncached_tokens=1,
                ttft_s=0.001,
                splice_s=0.0005,
                suffix_s=0.0005,
                step_times_s=[0.001],
            )
            for _ in prompts
        ]
        return BatchServeResult(
            results=results, physical_bytes=0, duplicated_bytes=0, shared_groups=1
        )


def prompt(schema="a", i=0):
    return f'<prompt schema="{schema}"><context/> q{i}</prompt>'


class TestAdmission:
    def test_shed_on_queue_depth(self):
        async def main():
            engine = StubEngine(service_s=0.05)
            server = LiveServer(
                engine,
                ServeOptions(max_queue_depth=2, max_batch=1,
                             queue_delay_budget_s=None),
            )
            await server.start()
            # No awaits between submits: the worker cannot drain, so the
            # third submission must hit the depth bound.
            r1 = await server.submit(prompt(i=1))
            r2 = await server.submit(prompt(i=2))
            with pytest.raises(Overloaded) as err:
                await server.submit(prompt(i=3))
            assert err.value.reason == "queue_depth"
            assert err.value.queue_depth == 2
            await server.stop(drain=True)
            assert r1.state == DONE and r2.state == DONE
            snap = server.snapshot()
            assert snap["counters"]['server_requests_total{outcome="rejected"}'] == 1
            assert snap["counters"]['server_rejections_total{reason="queue_depth"}'] == 1

        run(main())

    def test_shed_on_estimated_queue_delay(self):
        async def main():
            engine = StubEngine(service_s=0.05)
            server = LiveServer(
                engine,
                ServeOptions(max_queue_depth=100, max_batch=1,
                             queue_delay_budget_s=0.01, initial_service_s=0.05),
            )
            await server.start()
            await server.submit(prompt(i=1))  # estimate 0 → admitted
            with pytest.raises(Overloaded) as err:
                await server.submit(prompt(i=2))  # estimate 0.05 > 0.01
            assert err.value.reason == "queue_delay"
            assert err.value.estimated_delay_s > 0.01
            await server.stop()

        run(main())

    def test_unknown_schema_rejected_typed(self):
        async def main():
            server = LiveServer(StubEngine())
            await server.start()
            with pytest.raises(UnknownSchemaError):
                await server.submit(prompt(schema="ghost"))
            await server.stop()
            assert server.trace_log[-1].state == REJECTED
            snap = server.snapshot()
            assert (
                snap["counters"]['server_rejections_total{reason="unknown_schema"}']
                == 1
            )

        run(main())

    def test_closed_server_refuses(self):
        async def main():
            server = LiveServer(StubEngine())
            with pytest.raises(ServerClosed):
                await server.submit(prompt())

        run(main())


class TestDeadlines:
    def test_deadline_expires_mid_queue(self):
        async def main():
            engine = StubEngine(service_s=0.2)
            server = LiveServer(
                engine,
                ServeOptions(max_batch=1, queue_delay_budget_s=None,
                             batch_max_wait_s=0.0),
            )
            await server.start()
            r1 = await server.submit(prompt(i=1))
            r2 = await server.submit(prompt(i=2), deadline_s=0.01)
            with pytest.raises(DeadlineExceeded):
                await r2.wait()
            assert r2.state == EXPIRED
            assert r2.result is None  # no compute was spent on it
            await r1.wait()
            await server.stop()
            assert engine.batches == [[prompt(i=1)]]  # r2 never dispatched
            snap = server.snapshot()
            assert snap["counters"]['server_requests_total{outcome="expired"}'] == 1

        run(main())

    def test_no_deadline_waits_out_long_queues(self):
        async def main():
            engine = StubEngine(service_s=0.02)
            server = LiveServer(
                engine, ServeOptions(max_batch=1, queue_delay_budget_s=None)
            )
            await server.start()
            requests = [await server.submit(prompt(i=i)) for i in range(4)]
            for r in requests:
                await r.wait()
            await server.stop()
            assert all(r.state == DONE for r in requests)

        run(main())


class TestBatching:
    def test_same_schema_batches_together(self):
        async def main():
            engine = StubEngine(service_s=0.0)
            server = LiveServer(
                engine,
                ServeOptions(max_batch=8, batch_max_wait_s=0.03,
                             queue_delay_budget_s=None),
            )
            await server.start()
            requests = [await server.submit(prompt(i=i)) for i in range(3)]
            for r in requests:
                await r.wait()
            await server.stop()
            assert len(engine.batches) == 1  # one dispatch for all three
            assert all(r.batch_size == 3 for r in requests)

        run(main())

    def test_max_wait_bounds_latency(self):
        async def main():
            engine = StubEngine()
            server = LiveServer(
                engine,
                ServeOptions(max_batch=8, batch_max_wait_s=0.03,
                             queue_delay_budget_s=None),
            )
            await server.start()
            start = time.monotonic()
            request = await server.submit(prompt())
            await request.wait()
            waited = time.monotonic() - start
            await server.stop()
            # Dispatched by the max-wait timer, not stuck waiting for fill…
            assert waited < 1.0
            # …but did hold the batch open for roughly max_wait_s.
            assert request.queue_wait_s() >= 0.02

        run(main())

    def test_full_batch_skips_the_wait(self):
        async def main():
            engine = StubEngine()
            server = LiveServer(
                engine,
                ServeOptions(max_batch=2, batch_max_wait_s=10.0,
                             queue_delay_budget_s=None),
            )
            await server.start()
            r1 = await server.submit(prompt(i=1))
            r2 = await server.submit(prompt(i=2))
            await asyncio.wait_for(
                asyncio.gather(r1.wait(), r2.wait()), timeout=2.0
            )
            await server.stop()
            assert engine.batches == [[prompt(i=1), prompt(i=2)]]

        run(main())

    def test_different_schemas_split_batches(self):
        async def main():
            engine = StubEngine()
            server = LiveServer(
                engine,
                ServeOptions(max_batch=8, batch_max_wait_s=0.0,
                             queue_delay_budget_s=None),
            )
            await server.start()
            ra = await server.submit(prompt(schema="a"))
            rb = await server.submit(prompt(schema="b"))
            await ra.wait()
            await rb.wait()
            await server.stop()
            assert len(engine.batches) == 2

        run(main())


class TestLifecycle:
    def test_streaming_yields_output_ids(self):
        async def main():
            server = LiveServer(StubEngine(), ServeOptions(queue_delay_budget_s=None))
            await server.start()
            request = await server.submit(prompt())
            tokens = [t async for t in request.stream()]
            await server.stop()
            assert tokens == [1, 2]
            assert (await request.wait()).output_ids == [1, 2]

        run(main())

    def test_stop_without_drain_fails_queued(self):
        async def main():
            engine = StubEngine(service_s=0.1)
            server = LiveServer(
                engine, ServeOptions(max_batch=1, queue_delay_budget_s=None)
            )
            await server.start()
            # No await between submit and stop: the worker never gets the
            # loop, so both requests are still queued when we shut down.
            r1 = await server.submit(prompt(i=1))
            r2 = await server.submit(prompt(i=2))
            await server.stop(drain=False)
            for r in (r1, r2):
                with pytest.raises(ServerClosed):
                    await r.wait()
            assert engine.batches == []  # nothing was dispatched

        run(main())

    def test_context_manager_drains(self):
        async def main():
            engine = StubEngine()
            async with LiveServer(
                engine, ServeOptions(queue_delay_budget_s=None)
            ) as server:
                result = await server.serve(prompt())
            assert result.output_ids == [1, 2]

        run(main())

    def test_trace_records_cover_every_outcome(self):
        async def main():
            engine = StubEngine(service_s=0.05)
            server = LiveServer(
                engine,
                ServeOptions(max_batch=1, max_queue_depth=2,
                             queue_delay_budget_s=None, batch_max_wait_s=0.0),
            )
            await server.start()
            await server.submit(prompt(i=1))
            await server.submit(prompt(i=2), deadline_s=0.01)
            with pytest.raises(Overloaded):
                await server.submit(prompt(i=3))
            await server.stop(drain=True)
            states = {r.state for r in server.trace_log}
            assert states == {DONE, EXPIRED, REJECTED}
            done = next(r for r in server.trace_log if r.state == DONE)
            assert done.ttft_s is not None and done.ttft_s > 0
            assert done.output_tokens == 2

        run(main())


class TestMetricsCorrectness:
    def test_counters_add_up(self):
        async def main():
            engine = StubEngine()
            server = LiveServer(engine, ServeOptions(queue_delay_budget_s=None))
            await server.start()
            requests = [await server.submit(prompt(i=i)) for i in range(5)]
            for r in requests:
                await r.wait()
            await server.stop()
            snap = server.snapshot()
            c = snap["counters"]
            assert c['server_requests_total{outcome="submitted"}'] == 5
            assert c['server_requests_total{outcome="completed"}'] == 5
            assert c["server_tokens_generated_total"] == 10  # 2 per request
            assert c['server_prompt_tokens_total{status="cached"}'] == 20
            assert c['server_prompt_tokens_total{status="uncached"}'] == 5
            hist = snap["histograms"]["server_ttft_seconds"]
            assert hist["count"] == 5
            assert hist["p95"] > 0
            prom = server.prometheus()
            assert "server_ttft_seconds_quantile" in prom
            assert "cache_evictions_total" in prom

        run(main())


class TestIntegration:
    """The runtime over the real engine must match the direct path."""

    SCHEMA = (
        '<schema name="trip">'
        "<module name=\"plan\">plan a trip lasting three days focus on food "
        "the quick brown fox jumps over the lazy dog</module>"
        "</schema>"
    )
    PROMPT = '<prompt schema="trip"><plan/> answer the question</prompt>'

    def test_live_output_matches_direct_serve(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(self.SCHEMA)
        direct = pc.serve(self.PROMPT, max_new_tokens=4)

        async def main():
            async with LiveServer(
                pc, ServeOptions(queue_delay_budget_s=None)
            ) as server:
                return await server.serve(self.PROMPT, max_new_tokens=4)

        live = run(main())
        assert live.output_ids == direct.output_ids
        assert live.cached_tokens > 0

    def test_live_batch_hits_cache(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(self.SCHEMA)

        async def main():
            async with LiveServer(
                pc,
                ServeOptions(max_batch=4, batch_max_wait_s=0.02,
                             queue_delay_budget_s=None),
            ) as server:
                requests = [
                    await server.submit(self.PROMPT, max_new_tokens=2)
                    for _ in range(4)
                ]
                for r in requests:
                    await r.wait()
                return server

        server = run(main())
        assert pc.store.gpu.stats.hit_rate > 0
        snap = server.snapshot()
        assert snap["gauges"]['cache_tier_hits{tier="gpu"}'] > 0

    def test_plan_cache_counters_reach_metrics(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(self.SCHEMA)

        async def main():
            async with LiveServer(
                pc, ServeOptions(queue_delay_budget_s=None)
            ) as server:
                await server.serve(self.PROMPT, max_new_tokens=1)
                await server.serve(self.PROMPT, max_new_tokens=1)
                return server, server.prometheus()

        server, prom = run(main())
        snap = server.snapshot()
        c = snap["counters"]
        assert c['plan_cache_events_total{event="miss"}'] == 1
        assert c['plan_cache_events_total{event="hit"}'] == 1
        assert c['plan_cache_events_total{event="invalidation"}'] == 0
        assert snap["gauges"]["plan_cache_hit_rate"] == 0.5
        assert 'plan_cache_events_total{event="hit"} 1' in prom
