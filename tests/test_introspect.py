"""Attention introspection: trace shapes, masses, cache integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.introspect import AttentionTrace, attention_trace, induction_score

PROMPT = np.array([5, 9, 12, 300, 41])


class TestAttentionTrace:
    def test_shapes(self, any_model):
        logits, trace = attention_trace(any_model, PROMPT)
        assert logits.shape == (5, any_model.config.vocab_size)
        assert trace.n_layers == any_model.config.n_layers
        for weights, positions in zip(trace.weights, trace.key_positions):
            assert weights.shape == (any_model.config.n_heads, 5, 5)
            np.testing.assert_array_equal(positions, np.arange(5))

    def test_rows_sum_to_one(self, llama):
        _, trace = attention_trace(llama, PROMPT)
        for weights in trace.weights:
            np.testing.assert_allclose(weights.sum(axis=-1), 1.0, atol=1e-5)

    def test_causality_in_weights(self, llama):
        _, trace = attention_trace(llama, PROMPT)
        weights = trace.weights[0]
        # Query i puts (numerically) zero mass on keys after position i.
        for i in range(4):  # query 4 has no future keys to check
            assert weights[:, i, i + 1 :].max() < 1e-6

    def test_trace_does_not_change_logits(self, llama):
        plain = llama.forward(PROMPT, np.arange(5), llama.new_cache())
        traced, _ = attention_trace(llama, PROMPT)
        np.testing.assert_array_equal(plain, traced)

    def test_top_attended_ordering(self, llama):
        _, trace = attention_trace(llama, PROMPT)
        top = trace.top_attended(0, query_index=-1, k=3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_attention_mass_bounds(self, llama):
        _, trace = attention_trace(llama, PROMPT)
        everything = trace.attention_mass_on(0, set(range(5)))
        assert everything == pytest.approx(1.0, abs=1e-5)
        nothing = trace.attention_mass_on(0, {99})
        assert nothing == 0.0

    def test_trace_into_prepopulated_cache(self, llama, tok):
        """New tokens traced against spliced-in module states: key columns
        cover the cached positions too."""
        from repro.cache.encoder import encode_module
        from repro.cache.layout import layout_schema
        from repro.llm.kv import KVCache, LayerKV
        from repro.pml import Schema

        layout = layout_schema(
            Schema.parse('<schema name="s"><module name="m">the quick brown fox</module></schema>'),
            tok,
        )
        kv = encode_module(llama, layout.module("m"))
        cache = KVCache(
            [
                LayerKV.from_arrays(kv.keys[i], kv.values[i], kv.positions)
                for i in range(llama.config.n_layers)
            ]
        )
        n_cached = len(cache)
        suffix = np.array(tok.encode(" jumps over"))
        _, trace = attention_trace(llama, suffix, cache=cache)
        assert trace.weights[0].shape[-1] == n_cached + len(suffix)

    def test_induction_score_range(self, llama):
        _, trace = attention_trace(llama, PROMPT)
        score = induction_score(trace, {0, 1})
        assert 0.0 <= score <= 1.0
