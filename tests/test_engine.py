"""PromptCache end-to-end: the equivalence and correctness battery.

The heavyweight claims:

- **Prefix equivalence** — one module spanning the whole prefix makes
  cached inference *bit-exact* with the KV-cache baseline (this is vLLM-
  style prefix caching as a special case of Prompt Cache).
- **Scaffold equivalence** — importing a full scaffold set reproduces the
  baseline exactly, because joint encoding removes the masking
  approximation (§3.3).
- **Permutation invariance** — module import order does not change output
  (§3.4: "the order of concatenation does not matter").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.pml import PLAIN_TEMPLATE, SchemaMismatchError
from repro.pml.errors import PMLError, UnknownSchemaError

TRAVEL = '''
<schema name="travel">
You are a helpful travel planner.
<module name="trip-plan">Plan a trip lasting <param name="duration" len="12"/> in total.</module>
<union>
  <module name="miami">Miami: beaches, nightlife, art deco and surf spots.</module>
  <module name="paris">Paris: museums, cafes, architecture and the louvre.</module>
</union>
</schema>
'''

DOC = (
    '<schema name="doc"><module name="d">the quick brown fox jumps over the '
    'lazy dog again and again</module></schema>'
)

SCAFFOLDED = (
    '<schema name="duo"><scaffold modules="a,b"/>'
    '<module name="a">the quick brown fox</module>'
    '<module name="b">jumps over the lazy dog</module></schema>'
)


@pytest.fixture()
def pc(any_model, tok):
    cache = PromptCache(any_model, tok, template=PLAIN_TEMPLATE)
    cache.register_schema(TRAVEL)
    return cache


@pytest.fixture()
def pc_llama(llama, tok):
    cache = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
    cache.register_schema(TRAVEL)
    return cache


class TestPrefixEquivalence:
    def test_greedy_output_bit_exact(self, any_model, tok):
        """Single module prefix + suffix == baseline, for all architectures."""
        pc = PromptCache(any_model, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(DOC)
        prompt = '<prompt schema="doc"><d/> plan a trip</prompt>'
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        assert cached.output_ids == baseline.output_ids

    def test_kv_states_bit_exact(self, llama, tok):
        """Stronger: the assembled cache equals the baseline prefill cache."""
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(DOC)
        resolved = pc._resolve('<prompt schema="doc"><d/> more text</prompt>')
        registered = pc.schemas["doc"]
        plan = pc._plan(resolved, registered)
        cache, _, _ = pc._assemble(registered, plan, use_scaffolds=True)

        # Baseline: prefill the module tokens directly.
        mod = registered.layout.module("d")
        ref = llama.new_cache(capacity=len(mod.token_ids))
        llama.forward(mod.token_ids, mod.positions, ref)
        for layer_cached, layer_ref in zip(cache.layers, ref.layers):
            np.testing.assert_array_equal(layer_cached.keys, layer_ref.keys)
            np.testing.assert_array_equal(layer_cached.values, layer_ref.values)


class TestScaffoldEquivalence:
    def test_full_scaffold_matches_baseline_exactly(self, any_model, tok):
        pc = PromptCache(any_model, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(SCAFFOLDED)
        prompt = '<prompt schema="duo"><a/><b/> what happened?</prompt>'
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        assert cached.output_ids == baseline.output_ids

    def test_without_scaffold_states_differ(self, llama, tok):
        """Independent encoding is an approximation: module b's deep-layer
        states must differ between the solo and scaffold variants (b saw a
        during scaffold encoding). Greedy *outputs* may still coincide."""
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(SCAFFOLDED)
        prompt = '<prompt schema="duo"><a/><b/> what happened?</prompt>'
        scaffolded = pc.serve(prompt, max_new_tokens=4, use_scaffolds=True)
        baseline = pc.baseline(prompt, max_new_tokens=4)
        assert scaffolded.output_ids == baseline.output_ids

        solo = pc.store.fetch(CacheKey("duo", "b", "solo")).entry.kv
        scaff = pc.store.fetch(CacheKey("duo", "b", "scaffold0")).entry.kv
        assert not np.allclose(solo.keys[1], scaff.keys[1], atol=1e-6)

    def test_partial_scaffold_import_uses_solo_states(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(SCAFFOLDED)
        result = pc.serve('<prompt schema="duo"><a/> only a</prompt>', max_new_tokens=4)
        assert result.cached_tokens > 0


class TestPermutationInvariance:
    def test_import_order_irrelevant(self, pc_llama):
        a = pc_llama.serve(
            '<prompt schema="travel"><trip-plan/><miami/> go</prompt>', max_new_tokens=6
        )
        b = pc_llama.serve(
            '<prompt schema="travel"><miami/><trip-plan/> go</prompt>', max_new_tokens=6
        )
        assert a.output_ids == b.output_ids


class TestUnions:
    def test_union_members_selectable(self, pc):
        a = pc.serve('<prompt schema="travel"><miami/> go</prompt>', max_new_tokens=4)
        b = pc.serve('<prompt schema="travel"><paris/> go</prompt>', max_new_tokens=4)
        assert a.cached_tokens > 0 and b.cached_tokens > 0
        assert a.output_ids != b.output_ids or a.cached_tokens != b.cached_tokens

    def test_union_conflict_raises(self, pc):
        with pytest.raises(SchemaMismatchError):
            pc.serve('<prompt schema="travel"><miami/><paris/> x</prompt>')


class TestParameters:
    def test_argument_substitution_affects_output(self, pc_llama):
        a = pc_llama.serve(
            '<prompt schema="travel"><trip-plan duration="three days"/> go</prompt>',
            max_new_tokens=5,
        )
        b = pc_llama.serve(
            '<prompt schema="travel"><trip-plan duration="two weeks"/> go</prompt>',
            max_new_tokens=5,
        )
        assert a.uncached_tokens != b.uncached_tokens or a.output_ids != b.output_ids

    def test_too_long_argument_rejected(self, pc):
        with pytest.raises(SchemaMismatchError, match="tokens"):
            pc.serve(
                '<prompt schema="travel">'
                '<trip-plan duration="an exceedingly long duration argument that '
                'overflows the declared parameter slot by a wide margin"/> x</prompt>'
            )

    def test_shorter_argument_fits(self, pc):
        result = pc.serve(
            '<prompt schema="travel"><trip-plan duration="two"/> go</prompt>',
            max_new_tokens=3,
        )
        assert result.uncached_tokens > 0

    def test_unused_param_slots_excluded_from_cache(self, pc, tok):
        result = pc.serve('<prompt schema="travel"><trip-plan/> go</prompt>', max_new_tokens=3)
        layout = pc.schemas["travel"].layout
        mod = layout.module("trip-plan")
        # cached tokens = module direct tokens minus the 12 slot tokens,
        # plus the anonymous intro module.
        anon = layout.module(layout.always_included()[0])
        expected = (len(mod.token_ids) - 12) + len(anon.token_ids)
        assert result.cached_tokens == expected


class TestNewTextPlacement:
    def test_trailing_text_goes_to_tail(self, pc_llama):
        layout = pc_llama.schemas["travel"].layout
        resolved = pc_llama._resolve('<prompt schema="travel"><miami/> trailing words</prompt>')
        plan = pc_llama._plan(resolved, pc_llama.schemas["travel"])
        text_positions = plan.uncached[-1][1]
        assert text_positions[0] >= layout.module("miami").span_end

    def test_gap_reuse_when_module_excluded(self, pc_llama, tok):
        """Text after trip-plan fits into the union's hole when only one
        short member is selected... here: text after miami, with paris (same
        union) longer — the gap past miami's end is free."""
        resolved = pc_llama._resolve('<prompt schema="travel"><miami/>hi</prompt>')
        plan = pc_llama._plan(resolved, pc_llama.schemas["travel"])
        layout = pc_llama.schemas["travel"].layout
        text_positions = plan.uncached[-1][1]
        miami_end = layout.module("miami").span_end
        paris_end = layout.module("paris").span_end
        if miami_end < paris_end:  # a real gap exists
            assert text_positions[0] == miami_end

    def test_decode_positions_follow_all_content(self, pc):
        result = pc.serve(
            '<prompt schema="travel"><miami/> some extra questions here</prompt>',
            max_new_tokens=3,
        )
        assert result.output_ids  # generated without position collisions


class TestStorageIntegration:
    def test_eager_registration_precomputes(self, llama, tok):
        store = ModuleCacheStore()
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(TRAVEL, eager=True)
        assert len(store.gpu.keys()) >= 3  # anon + trip-plan + miami + paris

    def test_lazy_registration_encodes_on_demand(self, llama, tok):
        store = ModuleCacheStore()
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(TRAVEL, eager=False)
        assert len(store.gpu.keys()) == 0
        pc.serve('<prompt schema="travel"><miami/> x</prompt>', max_new_tokens=2)
        assert any(k.module == "miami" for k in store.gpu.keys())

    def test_cpu_tier_serving(self, llama, tok):
        store = ModuleCacheStore(gpu_capacity_bytes=0)
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE, default_tier="cpu")
        pc.register_schema(TRAVEL)
        result = pc.serve('<prompt schema="travel"><miami/> x</prompt>', max_new_tokens=2)
        assert result.tier_tokens["cpu"] > 0
        assert result.tier_tokens["gpu"] == 0

    def test_hits_accumulate_across_serves(self, llama, tok):
        store = ModuleCacheStore()
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(TRAVEL)
        before = store.gpu.stats.hits
        pc.serve('<prompt schema="travel"><miami/> x</prompt>', max_new_tokens=2)
        pc.serve('<prompt schema="travel"><miami/> y</prompt>', max_new_tokens=2)
        assert store.gpu.stats.hits > before

    def test_cpu_hit_promotes_when_enabled(self, llama, tok):
        store = ModuleCacheStore()
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE,
                         default_tier="cpu", promote_on_cpu_hit=True)
        pc.register_schema(TRAVEL)
        assert any(k.module == "miami" for k in store.cpu.keys())
        pc.serve('<prompt schema="travel"><miami/> x</prompt>', max_new_tokens=2)
        assert any(k.module == "miami" for k in store.gpu.keys())

    def test_cpu_hit_stays_put_by_default(self, llama, tok):
        store = ModuleCacheStore()
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE,
                         default_tier="cpu")
        pc.register_schema(TRAVEL)
        pc.serve('<prompt schema="travel"><miami/> x</prompt>', max_new_tokens=2)
        assert not any(k.module == "miami" for k in store.gpu.keys())


class TestServeResult:
    def test_latency_breakdown(self, pc):
        result = pc.serve('<prompt schema="travel"><miami/> go now</prompt>', max_new_tokens=4)
        assert result.ttft_s == pytest.approx(result.splice_s + result.suffix_s)
        assert result.prompt_tokens == result.cached_tokens + result.uncached_tokens
        assert len(result.step_times_s) == 3

    def test_text_decoded(self, pc):
        result = pc.serve('<prompt schema="travel"><miami/> go</prompt>', max_new_tokens=4)
        assert isinstance(result.text, str)

    def test_fully_cached_prompt(self, pc):
        result = pc.serve('<prompt schema="travel"><miami/></prompt>', max_new_tokens=3)
        # One token is recomputed to obtain first logits.
        assert result.uncached_tokens == 1
        assert result.output_ids

    def test_prompt_token_count(self, pc):
        cached, uncached = pc.prompt_token_count(
            '<prompt schema="travel"><miami/> question?</prompt>'
        )
        assert cached > 0 and uncached > 0


class TestErrors:
    def test_unregistered_schema(self, pc):
        with pytest.raises(SchemaMismatchError, match="not registered"):
            pc.serve('<prompt schema="ghost"><x/></prompt>')

    def test_unregistered_schema_is_typed(self, pc):
        with pytest.raises(UnknownSchemaError) as err:
            pc.serve('<prompt schema="ghost"><x/></prompt>')
        assert err.value.schema == "ghost"
        assert "travel" in err.value.known

    def test_unregistered_schema_everywhere(self, pc):
        ghost = '<prompt schema="ghost"><x/></prompt>'
        with pytest.raises(UnknownSchemaError):
            pc.serve_batch([ghost])
        with pytest.raises(UnknownSchemaError):
            pc.start_session(ghost)
        with pytest.raises(UnknownSchemaError):
            pc.update_module_text("ghost", "m", "text")
        with pytest.raises(UnknownSchemaError):
            pc.prompt_token_count(ghost)

    def test_schema_exceeding_max_position(self, llama, tok):
        huge_text = "word " * 6000  # tiny model allows 4096 positions
        with pytest.raises(PMLError, match="positions"):
            PromptCache(llama, tok, template=PLAIN_TEMPLATE).register_schema(
                f'<schema name="huge"><module name="m">{huge_text}</module></schema>'
            )


class TestServeBatch:
    SCHEMA = (
        '<schema name="batch"><module name="doc">the quick brown fox jumps '
        "over the lazy dog again and again</module>"
        '<module name="alt">paris museums cafes architecture seine</module></schema>'
    )

    def make_pc(self, llama, tok):
        from repro.pml import PLAIN_TEMPLATE

        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(self.SCHEMA)
        return pc

    def test_outputs_match_individual_serving(self, llama, tok):
        pc = self.make_pc(llama, tok)
        prompts = [
            '<prompt schema="batch"><doc/> question one ?</prompt>',
            '<prompt schema="batch"><doc/> another question entirely ?</prompt>',
            '<prompt schema="batch"><doc/> a third ask</prompt>',
        ]
        batch = pc.serve_batch(prompts, max_new_tokens=5)
        for prompt, result in zip(prompts, batch):
            solo = pc.serve(prompt, max_new_tokens=5)
            assert result.output_ids == solo.output_ids

    def test_memory_shared_within_group(self, llama, tok):
        # Sharing is page-granular: use a module spanning many pages.
        long_doc = "the quick brown fox jumps over the lazy dog . " * 12
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(
            f'<schema name="big"><module name="doc">{long_doc}</module></schema>'
        )
        prompts = [
            f'<prompt schema="big"><doc/> request number {i} ?</prompt>'
            for i in range(6)
        ]
        batch = pc.serve_batch(prompts, max_new_tokens=2)
        assert batch.shared_groups == 1
        assert batch.memory_savings > 0.4

    def test_tiny_modules_gain_nothing(self, llama, tok):
        """Page granularity: modules smaller than one page are COW-copied
        by every fork, so sharing cannot help (documented limitation)."""
        pc = self.make_pc(llama, tok)
        prompts = [
            f'<prompt schema="batch"><alt/> request {i}</prompt>' for i in range(4)
        ]
        batch = pc.serve_batch(prompts, max_new_tokens=1)
        assert batch.memory_savings <= 0.1

    def test_distinct_module_sets_form_groups(self, llama, tok):
        pc = self.make_pc(llama, tok)
        batch = pc.serve_batch(
            [
                '<prompt schema="batch"><doc/> q</prompt>',
                '<prompt schema="batch"><alt/> q</prompt>',
                '<prompt schema="batch"><doc/><alt/> q</prompt>',
            ],
            max_new_tokens=2,
        )
        assert batch.shared_groups == 3
        assert len(batch) == 3

    def test_batch_result_iterates(self, llama, tok):
        pc = self.make_pc(llama, tok)
        batch = pc.serve_batch(
            ['<prompt schema="batch"><doc/> x</prompt>'], max_new_tokens=2
        )
        assert len(list(batch)) == 1
