"""Tokenizer substrate: round-trip, determinism, specials, persistence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.tokenizer import (
    BPETokenizer,
    SpecialTokens,
    Vocab,
    WhitespaceTokenizer,
    train_bpe,
)
from tests.conftest import TRAIN_TEXTS


class TestVocab:
    def test_specials_occupy_first_ids(self):
        vocab = Vocab()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.bos_id == 2
        assert vocab.eos_id == 3

    def test_add_is_idempotent(self):
        vocab = Vocab()
        first = vocab.add("hello")
        assert vocab.add("hello") == first
        assert len(vocab) == 5

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocab()
        assert vocab.id_of("nonexistent") == vocab.unk_id

    def test_token_of_out_of_range(self):
        with pytest.raises(IndexError):
            Vocab().token_of(999)

    def test_tokens_returns_copy(self):
        vocab = Vocab()
        tokens = vocab.tokens()
        tokens.append("mutant")
        assert "mutant" not in vocab.tokens()


class TestBPETraining:
    def test_vocab_size_respected(self, tok):
        assert tok.vocab_size <= 420

    def test_too_small_vocab_rejected(self):
        with pytest.raises(ValueError):
            train_bpe(["abc"], vocab_size=100)

    def test_training_is_deterministic(self):
        a = train_bpe(TRAIN_TEXTS, vocab_size=300)
        b = train_bpe(TRAIN_TEXTS, vocab_size=300)
        assert a.merges() == b.merges()

    def test_merges_compress_common_words(self, tok):
        # "the" appears constantly in the training corpus; it must encode
        # to fewer tokens than its byte length.
        assert len(tok.encode("the")) < 3

    def test_empty_corpus_trains_byte_vocab(self):
        t = train_bpe([], vocab_size=260)
        assert t.vocab_size == 260
        assert t.decode(t.encode("xyz")) == "xyz"


class TestBPEEncodeDecode:
    def test_round_trip_ascii(self, tok):
        text = "the quick brown fox!"
        assert tok.decode(tok.encode(text)) == text

    def test_round_trip_unicode(self, tok):
        text = "héllo wörld Δ 東京 🎉"
        assert tok.decode(tok.encode(text)) == text

    def test_round_trip_untrained_bytes(self, tok):
        text = "\x00\x01 binary-ish \x7f"
        assert tok.decode(tok.encode(text)) == text

    def test_special_token_literals_map_to_ids(self, tok):
        ids = tok.encode("a <unk> b <s>")
        assert tok.unk_id in ids
        assert tok.bos_id in ids

    def test_bos_eos_flags(self, tok):
        ids = tok.encode("hi", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id
        assert ids[-1] == tok.eos_id

    def test_skip_specials_on_decode(self, tok):
        ids = tok.encode("hello", add_bos=True, add_eos=True)
        assert tok.decode(ids, skip_specials=True) == "hello"

    def test_decode_rejects_out_of_range(self, tok):
        with pytest.raises(IndexError):
            tok.decode([tok.vocab_size + 5])

    def test_chunk_invariance(self, tok):
        """Splitting text at a word boundary must not change the encoding —
        the property that lets modules tokenize independently."""
        a, b = "the quick brown", " fox jumps over"
        assert tok.encode(a) + tok.encode(b) == tok.encode(a + b)

    def test_byte_ids_are_stable_across_tokenizers(self):
        t1 = train_bpe(["aaa bbb"], vocab_size=300)
        t2 = train_bpe(["ccc ddd eee"], vocab_size=300)
        # Single-byte symbols always sit at 4 + byte value.
        assert t1.encode("\x41") == t2.encode("\x41") == [4 + 0x41]

    @settings(max_examples=60, deadline=None)
    @given(st.text(max_size=200))
    def test_round_trip_property(self, text):
        tok = _PROPERTY_TOKENIZER
        assert tok.decode(tok.encode(text)) == text

    @settings(max_examples=40, deadline=None)
    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=120))
    def test_encoding_deterministic_property(self, text):
        tok = _PROPERTY_TOKENIZER
        assert tok.encode(text) == tok.encode(text)


# Trained once at import: hypothesis re-runs the test body many times.
_PROPERTY_TOKENIZER = train_bpe(TRAIN_TEXTS, vocab_size=320)


class TestBPEPersistence:
    def test_save_load_round_trip(self, tok, tmp_path):
        path = tmp_path / "tok.json"
        tok.save(path)
        loaded = BPETokenizer.load(path)
        assert loaded.merges() == tok.merges()
        text = "the quick brown fox"
        assert loaded.encode(text) == tok.encode(text)

    def test_custom_specials_survive(self, tmp_path):
        specials = SpecialTokens(pad="<p>", unk="<u>", bos="<b>", eos="<e>")
        t = train_bpe(["abc"], vocab_size=300, specials=specials)
        path = tmp_path / "tok.json"
        t.save(path)
        assert BPETokenizer.load(path).specials == specials


class TestWhitespaceTokenizer:
    def test_round_trip_words(self):
        t = WhitespaceTokenizer()
        ids = t.encode("alpha beta gamma")
        assert t.decode(ids) == "alpha beta gamma"

    def test_vocab_grows_on_demand(self):
        t = WhitespaceTokenizer()
        before = t.vocab_size
        t.encode("new words here")
        assert t.vocab_size == before + 3

    def test_same_word_same_id(self):
        t = WhitespaceTokenizer()
        a = t.encode("repeat")
        b = t.encode("repeat")
        assert a == b

    def test_specials(self):
        t = WhitespaceTokenizer()
        ids = t.encode("x", add_bos=True, add_eos=True)
        assert ids[0] == t.bos_id and ids[-1] == t.eos_id
        assert t.decode(ids, skip_specials=True) == "x"
