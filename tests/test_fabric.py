"""Tiered cache fabric: routes, cost models, placement, tier walk.

Covers the fabric subsystem end to end: the extended copy-route table
(mmap page-in + peer network) and its calibration hooks, the tier cost
model's ranking, placement's promote/demote/drop algebra, the
miss-fetcher error path, and — the headline — byte-identical serving
from every tier (DRAM hit, snapshot page-in, peer fetch, re-encode)
across all four positional families.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.cache.persist import save_store, snapshot_catalog
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.fabric import (
    TIER_CPU,
    TIER_GPU,
    TIER_ORDER,
    TIER_PEER,
    TIER_REENCODE,
    TIER_SNAPSHOT,
    FabricStore,
    PlacementEngine,
    TierCostModel,
    analytic_cost_model,
)
from repro.hw.calibrate import calibrate_routes
from repro.hw.transfer import (
    ROUTE_BANDWIDTH,
    Route,
    copy_latency,
    route_bandwidth,
    set_route_bandwidth,
)
from repro.llm.kv import ModuleKV
from repro.pml.chat import PLAIN_TEMPLATE

SCHEMA = (
    '<schema name="trip"><module name="city">miami beaches nightlife surf'
    ' spots art deco</module><module name="plan">plan a trip lasting three'
    ' days focus on food</module></schema>'
)
PROMPT = '<prompt schema="trip"><city/><plan/> what should we do ?</prompt>'


def _module_kv(seed: int, T: int = 6) -> ModuleKV:
    rng = np.random.default_rng(seed)
    shape = (3, 2, T, 4)
    return ModuleKV.from_arenas(
        rng.standard_normal(shape).astype(np.float32),
        rng.standard_normal(shape).astype(np.float32),
        np.arange(T, dtype=np.int64),
    )


@pytest.fixture()
def restore_bandwidth():
    saved = dict(ROUTE_BANDWIDTH)
    yield
    ROUTE_BANDWIDTH.clear()
    ROUTE_BANDWIDTH.update(saved)


class TestRoutes:
    def test_new_routes_present_with_positive_bandwidth(self):
        for route in (Route.MMAP_PAGEIN, Route.PEER_NET):
            assert route_bandwidth(route) > 0

    def test_copy_latency_monotonic_in_payload(self):
        for route in Route:
            latencies = [copy_latency(n, route) for n in (1 << 10, 1 << 20, 1 << 30)]
            assert latencies == sorted(latencies)
            assert latencies[0] < latencies[-1]

    def test_route_hierarchy_matches_hardware_reality(self):
        # Page-in is slower than any DRAM copy; the network is slower still.
        nbytes = 1 << 20
        assert copy_latency(nbytes, Route.MMAP_PAGEIN) > copy_latency(
            nbytes, Route.HOST_TO_HOST
        )
        assert copy_latency(nbytes, Route.PEER_NET) > copy_latency(
            nbytes, Route.MMAP_PAGEIN
        )

    def test_set_route_bandwidth_validates_and_applies(self, restore_bandwidth):
        with pytest.raises(ValueError, match="positive"):
            set_route_bandwidth(Route.MMAP_PAGEIN, 0)
        set_route_bandwidth(Route.MMAP_PAGEIN, 123.0)
        assert route_bandwidth(Route.MMAP_PAGEIN) == 123.0

    def test_calibrate_routes_measures_and_applies(self, restore_bandwidth):
        measured = calibrate_routes(nbytes=1 << 18, repeats=1, apply=True)
        assert set(measured) >= {Route.HOST_TO_HOST.value, Route.MMAP_PAGEIN.value}
        for route_value, bandwidth in measured.items():
            assert bandwidth > 0
            assert route_bandwidth(Route(route_value)) == bandwidth


class TestTierCostModel:
    def test_rank_orders_tiers_cheapest_first(self):
        model = TierCostModel()
        ranked = model.rank_tiers(1 << 20, tokens=512)
        assert [tier for tier, _ in ranked] == list(TIER_ORDER)
        costs = [cost for _, cost in ranked]
        assert costs == sorted(costs)

    def test_reencode_cost_scales_with_tokens_not_bytes(self):
        model = TierCostModel(reencode_s_per_token=1e-3)
        assert model.fetch_cost_s(TIER_REENCODE, 1, tokens=100) == pytest.approx(0.1)
        assert model.fetch_cost_s(TIER_REENCODE, 1 << 30, tokens=100) == (
            model.fetch_cost_s(TIER_REENCODE, 1, tokens=100)
        )

    def test_unknown_tier_rejected(self):
        with pytest.raises(KeyError):
            TierCostModel().fetch_cost_s("tape", 1024)

    def test_observations_move_the_ewma(self):
        model = TierCostModel(peer_rtt_s=1e-3, alpha=0.5)
        model.observe_peer_rtt(9e-3)
        assert model.peer_rtt_s == pytest.approx(5e-3)
        model.observe_reencode(tokens=100, seconds=0.2)
        assert model.reencode_s_per_token > 1e-3
        cost = model.fetch_cost_s(TIER_PEER, 1 << 10)
        assert cost > model.peer_rtt_s  # RTT plus the wire time

    def test_analytic_seed_positive(self, llama):
        from repro.hw.device import device

        model = analytic_cost_model(llama.config, device("rtx-4090"))
        assert model.reencode_s_per_token > 0


class TestPlacement:
    def test_interarrival_ewma_converges(self):
        engine = PlacementEngine(horizon_s=2.0)
        key = CacheKey("s", "m")
        for i in range(16):
            engine.record_demand(key, float(i))
        demand = engine.demand_for(key)
        assert demand.hits == 16
        assert demand.interarrival_s == pytest.approx(1.0, abs=0.05)

    def test_expected_hits_goes_cold(self):
        engine = PlacementEngine(horizon_s=2.0, cold_factor=4.0)
        key = CacheKey("s", "m")
        engine.record_demand(key, 0.0)
        engine.record_demand(key, 1.0)  # gap 1s < horizon
        assert engine.expected_hits(key, 1.5) == pytest.approx(2.0)
        # Idle far beyond cold_factor x max(gap, horizon): extrapolation stops.
        assert engine.expected_hits(key, 100.0) == 0.0

    def test_promote_needs_demand_to_pay_the_move(self):
        engine = PlacementEngine(horizon_s=2.0)
        hot, unseen = CacheKey("s", "hot"), CacheKey("s", "unseen")
        for i in range(8):
            engine.record_demand(hot, 0.1 * i)
        assert engine.should_promote(hot, 1 << 20, now=0.8)
        assert not engine.should_promote(unseen, 1 << 20, now=0.8)
        snap = engine.snapshot()
        assert snap["promotions"] == 1 and snap["holds"] == 1

    def test_drop_only_snapshot_backed_cold_victims(self):
        engine = PlacementEngine(horizon_s=1.0, cold_factor=2.0)
        cold, hot = CacheKey("s", "cold"), CacheKey("s", "hot")
        engine.record_demand(cold, 0.0)
        engine.record_demand(cold, 1.0)
        for i in range(8):
            engine.record_demand(hot, 99.0 + 0.1 * i)
        now = 100.0
        # Unbacked always demotes: the snapshot cannot restore it.
        assert not engine.should_drop(cold, 1024, now, snapshot_backed=False)
        # Backed and cold: drop, the mapped snapshot pages it back.
        assert engine.should_drop(cold, 1024, now, snapshot_backed=True)
        # Backed but hot: demote, it is coming right back.
        assert not engine.should_drop(hot, 1024, now, snapshot_backed=True)
        snap = engine.snapshot()
        assert snap["drops"] == 1 and snap["demotions"] == 2

    def test_ledger_bounded_by_max_tracked(self):
        engine = PlacementEngine(max_tracked=4)
        for i in range(10):
            engine.record_demand(CacheKey("s", f"m{i}"), float(i))
        assert len(engine.tracked_keys()) <= 4
        # The most recent keys survive; the coldest were evicted.
        assert CacheKey("s", "m9") in engine.tracked_keys()


class TestMissFetcherErrors:
    """Satellite: a raising miss fetcher degrades to a local re-encode."""

    @pytest.mark.parametrize("store_cls", [ModuleCacheStore, FabricStore])
    def test_raising_fetcher_counted_and_degrades(self, store_cls):
        store = store_cls()
        observed = []

        def bad_fetcher(key):
            raise ConnectionResetError("peer hung up")

        store.set_miss_fetcher(bad_fetcher)
        store.add_fetch_error_listener(lambda key, exc: observed.append((key, exc)))
        key = CacheKey("s", "m")
        assert store.fetch(key) is None  # fell through to re-encode
        assert store.fetch_stats.fetch_errors == 1
        assert store.fetch_stats.hits == 0 and store.fetch_stats.misses == 0
        (obs_key, obs_exc), = observed
        assert obs_key == key
        assert isinstance(obs_exc, ConnectionResetError)

    def test_declining_and_delivering_fetchers_still_ledger(self):
        store = ModuleCacheStore()
        kv = _module_kv(0)
        store.set_miss_fetcher(lambda key: None)
        assert store.fetch(CacheKey("s", "a")) is None
        store.set_miss_fetcher(lambda key: kv)
        result = store.fetch(CacheKey("s", "b"))
        assert result is not None and result.source == "peer"
        assert store.fetch_stats.misses == 1 and store.fetch_stats.hits == 1

    def test_listener_runs_outside_store_lock(self):
        from repro.analysis.locks import assert_unheld

        store = ModuleCacheStore()
        store.set_miss_fetcher(lambda key: (_ for _ in ()).throw(OSError("boom")))
        store.add_fetch_error_listener(lambda key, exc: assert_unheld("store"))
        assert store.fetch(CacheKey("s", "m")) is None


class TestEvictionPlacement:
    """GPU capacity victims: drop when snapshot-backed and cold, else demote."""

    def _fabric(self, tmp_path, clock, **kwargs):
        seed = ModuleCacheStore()
        seed.put(CacheKey("s", "backed"), _module_kv(1))
        save_store(seed, tmp_path)
        kv = _module_kv(1)
        return FabricStore(
            gpu_capacity_bytes=int(kv.nbytes() * 1.5),
            snapshot_dir=tmp_path, clock=clock, **kwargs,
        )

    def test_backed_cold_victim_dropped_not_demoted(self, tmp_path):
        t = [0.0]
        store = self._fabric(tmp_path, lambda: t[0])
        backed, other = CacheKey("s", "backed"), CacheKey("s", "other")
        store.put(backed, _module_kv(1))
        t[0] = 100.0  # long idle: the backed entry's demand is stone cold
        store.put(other, _module_kv(2))  # evicts `backed` for capacity
        assert store.cpu.peek(backed) is None  # dropped, not demoted
        assert store.gpu.peek(other) is not None
        # ...and it is still reachable: the snapshot pages it back in.
        result = store.fetch(backed)
        assert result is not None and result.source == "snapshot"

    def test_unbacked_victim_demotes_to_dram(self, tmp_path):
        t = [0.0]
        store = self._fabric(tmp_path, lambda: t[0])
        unbacked, other = CacheKey("s", "unbacked"), CacheKey("s", "other")
        store.put(unbacked, _module_kv(3))
        t[0] = 100.0
        store.put(other, _module_kv(2))
        entry = store.cpu.peek(unbacked)
        assert entry is not None  # demoted: a re-encode is too dear to risk
        assert store.placement.snapshot()["demotions"] >= 1


class TestFabricTierWalk:
    """Byte-identity from every tier, across all four positional families."""

    def _pc(self, model, tok, store):
        pc = PromptCache(model, tok, store=store, template=PLAIN_TEMPLATE)
        pc.register_schema(SCHEMA)
        return pc

    def test_all_tiers_serve_identical_bytes(self, any_model, tok, tmp_path):
        # Reference: plain two-tier store, the seed-repo behavior.
        reference = self._pc(any_model, tok, ModuleCacheStore()).serve(
            PROMPT, max_new_tokens=6
        )

        # Tier 1+2 (DRAM): a fabric store serving hot is bit-identical.
        warm_store = FabricStore()
        warm_pc = self._pc(any_model, tok, warm_store)
        assert warm_pc.serve(PROMPT, max_new_tokens=6).output_ids == (
            reference.output_ids
        )
        for key in (CacheKey("trip", "city"), CacheKey("trip", "plan")):
            result = warm_store.fetch(key)
            assert result is not None and result.source in ("gpu", "cpu")

        # Persist the warm store: the snapshot becomes a lazy third tier.
        save_store(warm_store, tmp_path)

        # Tier 3 (snapshot): a cold fabric pages entries in per demand.
        snap_store = FabricStore(snapshot_dir=tmp_path)
        snap_pc = self._pc(any_model, tok, snap_store)
        assert snap_store.fabric_snapshot()["catalog_entries"] >= 2
        assert snap_pc.serve(PROMPT, max_new_tokens=6).output_ids == (
            reference.output_ids
        )
        assert snap_store.snapshot_stats.hits >= 2

        # Tier 4 (peer): a fabric with only a miss fetcher wired to the
        # warm store's entries — the in-process stand-in for the plane.
        peer_store = FabricStore()
        peer_store.set_miss_fetcher(
            lambda key: getattr(warm_store.peek(key), "kv", None)
        )
        peer_pc = self._pc(any_model, tok, peer_store)
        assert peer_pc.serve(PROMPT, max_new_tokens=6).output_ids == (
            reference.output_ids
        )
        assert peer_store.fetch_stats.hits >= 2
        assert peer_store.cost_model.peer_observations >= 2

        # Tier 5 (re-encode): nothing anywhere; the engine encodes and the
        # fabric observes the measured cost.
        cold_store = FabricStore()
        cold_pc = self._pc(any_model, tok, cold_store)
        assert cold_pc.serve(PROMPT, max_new_tokens=6).output_ids == (
            reference.output_ids
        )
        assert cold_store.fabric_snapshot()["reencodes"] >= 2
        assert cold_store.cost_model.reencode_observations >= 2

    def test_snapshot_catalog_indexes_without_loading(self, llama, tok, tmp_path):
        warm = self._pc(llama, tok, ModuleCacheStore())
        save_store(warm.store, tmp_path)
        catalog = snapshot_catalog(tmp_path)
        assert set(catalog) == {CacheKey("trip", "city"), CacheKey("trip", "plan")}
        lazy = FabricStore(snapshot_dir=tmp_path)
        # Cataloged but nothing resident: the fabric is lazy by design.
        assert lazy.total_bytes() == 0
        assert sorted(lazy.residency_tags()) == [
            "trip/city/solo", "trip/plan/solo",
        ]

    def test_corrupt_snapshot_entry_leaves_catalog(self, llama, tok, tmp_path):
        warm = self._pc(llama, tok, ModuleCacheStore())
        save_store(warm.store, tmp_path)
        # Truncate one payload: its sparse digest can no longer match.
        victim = next(tmp_path.glob("*keys.npy"))
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        store = FabricStore(snapshot_dir=tmp_path)
        before = store.fabric_snapshot()["catalog_entries"]
        hits = misses = 0
        with pytest.warns(UserWarning, match="checksum mismatch"):
            for key in list(snapshot_catalog(tmp_path)):
                if store.fetch(key) is None:
                    misses += 1
                else:
                    hits += 1
        assert misses == 1 and hits == before - 1
        # The corrupt entry dropped out: no retry loop on a bad payload.
        assert store.fabric_snapshot()["catalog_entries"] == before - 1


class TestLiveServerSweep:
    """Satellite: TTL sweeps run from the live loop, not just lazily."""

    def test_periodic_sweep_counts_expired_entries(self):
        from repro.server import LiveServer, ServeOptions

        class StubEngine:
            def __init__(self):
                self.schemas = {"a": object()}
                self.store = ModuleCacheStore(gpu_ttl_s=0.02)

        engine = StubEngine()
        engine.store.put(CacheKey("a", "m1"), _module_kv(1))
        engine.store.put(CacheKey("a", "m2"), _module_kv(2))
        server = LiveServer(
            engine, ServeOptions(store_sweep_interval_s=0.01)
        )

        async def scenario():
            await server.start()
            # No requests in flight: only the periodic sweep can expire.
            await asyncio.sleep(0.15)
            await server.stop(drain=True)

        asyncio.run(scenario())
        swept = server.metrics.counter(
            "cache_sweep_expired_total",
            "entries expired by the periodic TTL sweep",
        ).value
        assert swept == 2
        assert engine.store.gpu.stats.ttl_evictions == 2

    def test_sweep_disabled_when_interval_none(self):
        from repro.server import LiveServer, ServeOptions

        class StubEngine:
            def __init__(self):
                self.schemas = {}
                self.store = ModuleCacheStore(gpu_ttl_s=0.02)

        engine = StubEngine()
        engine.store.put(CacheKey("a", "m1"), _module_kv(1))
        server = LiveServer(engine, ServeOptions(store_sweep_interval_s=None))

        async def scenario():
            await server.start()
            await asyncio.sleep(0.08)
            await server.stop(drain=True)

        asyncio.run(scenario())
        # Entry is stale but nothing touched it: lazy-only semantics kept.
        assert engine.store.gpu.stats.ttl_evictions == 0

    def test_fetch_error_metrics_exported(self, llama, tok):
        from repro.server import LiveServer, ServeOptions

        store = ModuleCacheStore()
        store.set_miss_fetcher(
            lambda key: (_ for _ in ()).throw(ConnectionResetError("down"))
        )
        pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE)
        # Lazy: modules encode on first demand, so serving must consult
        # the (raising) miss fetcher before falling back to the encode.
        pc.register_schema(SCHEMA, eager=False)
        server = LiveServer(pc, ServeOptions(store_sweep_interval_s=None))

        async def scenario():
            async with server:
                request = await server.submit(PROMPT, max_new_tokens=2)
                await request.wait()

        asyncio.run(scenario())
        errors = server.metrics.counter(
            "cache_miss_fetch_errors_total",
            "miss fetchers that raised, by exception type",
            reason="ConnectionResetError",
        ).value
        assert errors >= 1
