"""Host calibration: micro-benchmarks and spec construction."""

from __future__ import annotations

import pytest

from repro.hw.calibrate import (
    calibrate_host,
    measure_copy_bandwidth,
    measure_exp_throughput,
    measure_matmul_flops,
    measure_small_gemm_flops,
    predicted_vs_measured,
)


class TestMicroBenchmarks:
    def test_matmul_flops_positive_and_plausible(self):
        flops = measure_matmul_flops(size=256, repeats=2)
        assert 1e8 < flops < 1e14  # anything from a potato to a super-host

    def test_small_gemm_slower_or_equal(self):
        big = measure_matmul_flops(size=256, repeats=2)
        small = measure_small_gemm_flops(rows=4, width=256, repeats=2)
        assert small <= big * 1.5  # thin GEMMs never meaningfully beat square

    def test_copy_bandwidth(self):
        bw = measure_copy_bandwidth(nbytes=1 << 22, repeats=2)
        assert 1e8 < bw < 1e12

    def test_exp_throughput(self):
        rate = measure_exp_throughput(n=1 << 18, repeats=2)
        assert 1e6 < rate < 1e11


class TestCalibration:
    def test_spec_fields(self):
        calibration = calibrate_host(gemm_size=256)
        spec = calibration.spec
        assert spec.name == "this-host" and spec.kind == "cpu"
        assert 0 < spec.small_gemm_efficiency <= 1.0
        assert spec.h2d_bandwidth is None
        assert spec.elementwise_throughput > 0

    def test_predicted_vs_measured_rows(self, llama):
        calibration = calibrate_host(gemm_size=256)
        rows = predicted_vs_measured(llama, [32, 64], calibration)
        assert len(rows) == 2
        for n, predicted, measured in rows:
            assert predicted > 0 and measured > 0
