"""Each shipped rule fires on its target pattern and stays quiet on the
blessed idioms around it (positive + negative fixtures per rule)."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import SourceModule
from repro.analysis.rules import (
    AsyncHygieneRule,
    BroadExceptRule,
    GuardedByRule,
    KVContractRule,
    NoWriteToMappedRule,
)


def run_rule(rule, src: str):
    module = SourceModule(Path("fixture.py"), "fixture.py", src)
    return [
        finding
        for finding in rule.check(module)
        if not module.suppressed(finding.line, finding.rule)
    ]


class TestGuardedBy:
    GOOD = """\
import threading

class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.entries = {}  # guarded-by: _lock

    def put(self, key, value):
        with self._lock:
            self.entries[key] = value

    def get(self, key):
        with self._lock:
            return self.entries.get(key)
"""

    def test_locked_access_is_clean(self):
        assert run_rule(GuardedByRule(), self.GOOD) == []

    def test_unlocked_access_fires(self):
        bad = self.GOOD + """\

    def size(self):
        return len(self.entries)
"""
        findings = run_rule(GuardedByRule(), bad)
        assert len(findings) == 1
        assert findings[0].rule == "guarded-by"
        assert "self.entries" in findings[0].message
        assert "size()" in findings[0].message

    def test_access_after_with_block_fires(self):
        bad = self.GOOD + """\

    def drain(self):
        with self._lock:
            items = list(self.entries)
        self.entries.clear()
"""
        findings = run_rule(GuardedByRule(), bad)
        assert [finding.line for finding in findings] == [len(bad.splitlines())]

    def test_wrong_lock_fires(self):
        bad = self.GOOD.replace(
            "self._lock = threading.Lock()",
            "self._lock = threading.Lock()\n        self._other = threading.Lock()",
        ).replace("with self._lock:\n            return", "with self._other:\n            return")
        findings = run_rule(GuardedByRule(), bad)
        assert len(findings) == 1
        assert "get()" in findings[0].message

    def test_init_is_exempt_and_unannotated_fields_ignored(self):
        src = """\
class Plain:
    def __init__(self):
        self.free = 0

    def bump(self):
        self.free += 1
"""
        assert run_rule(GuardedByRule(), src) == []

    def test_noqa_suppresses(self):
        bad = self.GOOD + """\

    def size(self):
        return len(self.entries)  # noqa: guarded-by - snapshot read is racy-ok
"""
        assert run_rule(GuardedByRule(), bad) == []


class TestAsyncHygiene:
    def test_time_sleep_in_coroutine_fires(self):
        src = """\
import time

async def tick():
    time.sleep(0.1)
"""
        findings = run_rule(AsyncHygieneRule(), src)
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_asyncio_sleep_is_clean(self):
        src = """\
import asyncio

async def tick():
    await asyncio.sleep(0.1)
"""
        assert run_rule(AsyncHygieneRule(), src) == []

    def test_blocking_file_io_fires(self):
        src = """\
async def load(path):
    return path.read_text()
"""
        findings = run_rule(AsyncHygieneRule(), src)
        assert len(findings) == 1 and "read_text" in findings[0].message

    def test_bare_open_fires(self):
        src = """\
async def load(path):
    with open(path) as fh:
        return fh.read()
"""
        assert len(run_rule(AsyncHygieneRule(), src)) == 1

    def test_sync_function_is_out_of_scope(self):
        src = """\
import time

def tick():
    time.sleep(0.1)
"""
        assert run_rule(AsyncHygieneRule(), src) == []

    def test_nested_sync_helper_is_out_of_scope(self):
        src = """\
import time

async def outer():
    def helper():
        time.sleep(0.1)
    return helper
"""
        assert run_rule(AsyncHygieneRule(), src) == []

    def test_await_free_spin_on_self_state_fires(self):
        src = """\
async def drain(self):
    while self.pending:
        self.pending.pop()
"""
        findings = run_rule(AsyncHygieneRule(), src)
        assert len(findings) == 1
        assert "never awaits" in findings[0].message

    def test_while_true_without_await_fires(self):
        src = """\
async def spin():
    while True:
        pass
"""
        assert len(run_rule(AsyncHygieneRule(), src)) == 1

    def test_loop_with_await_is_clean(self):
        src = """\
async def drain(self):
    while self.pending:
        await self.pending.pop()
"""
        assert run_rule(AsyncHygieneRule(), src) == []

    def test_bounded_local_loop_is_clean(self):
        src = """\
async def chunk(items):
    n = len(items)
    while n > 0:
        n -= 1
    return n
"""
        assert run_rule(AsyncHygieneRule(), src) == []


class TestBroadExcept:
    def test_silent_swallow_fires(self):
        src = """\
def f():
    try:
        risky()
    except Exception:
        pass
"""
        findings = run_rule(BroadExceptRule(), src)
        assert len(findings) == 1
        assert findings[0].rule == "no-bare-broad-except"

    def test_bare_except_fires(self):
        src = """\
def f():
    try:
        risky()
    except:
        pass
"""
        assert len(run_rule(BroadExceptRule(), src)) == 1

    def test_tuple_including_broad_fires(self):
        src = """\
def f():
    try:
        risky()
    except (ValueError, Exception):
        pass
"""
        assert len(run_rule(BroadExceptRule(), src)) == 1

    def test_reraise_is_clean(self):
        src = """\
def f():
    try:
        risky()
    except Exception:
        cleanup()
        raise
"""
        assert run_rule(BroadExceptRule(), src) == []

    def test_recording_the_exception_is_clean(self):
        src = """\
def f(report):
    try:
        risky()
    except Exception as exc:
        report.record_failure(exc)
"""
        assert run_rule(BroadExceptRule(), src) == []

    def test_binding_without_using_still_fires(self):
        src = """\
def f():
    try:
        risky()
    except Exception as exc:
        pass
"""
        assert len(run_rule(BroadExceptRule(), src)) == 1

    def test_narrow_except_is_out_of_scope(self):
        src = """\
def f():
    try:
        risky()
    except ValueError:
        pass
"""
        assert run_rule(BroadExceptRule(), src) == []


class TestKVContract:
    def test_missing_contract_fires(self):
        src = """\
def append(self, keys, values):
    return keys, values
"""
        findings = run_rule(KVContractRule(), src)
        assert len(findings) == 1
        assert "no @shape_contract" in findings[0].message

    def test_arena_names_also_fire(self):
        src = """\
def from_arenas(cls, key_arena, value_arena):
    return key_arena, value_arena
"""
        assert len(run_rule(KVContractRule(), src)) == 1

    def test_contract_present_is_clean(self):
        src = """\
from repro.analysis.contracts import shape_contract

@shape_contract(keys="(n_kv_heads, T, head_dim)", values="(n_kv_heads, T, head_dim)")
def append(self, keys, values):
    return keys, values
"""
        assert run_rule(KVContractRule(), src) == []

    def test_incomplete_contract_fires(self):
        src = """\
from repro.analysis.contracts import shape_contract

@shape_contract(keys="(n_kv_heads, T, head_dim)")
def append(self, keys, values):
    return keys, values
"""
        findings = run_rule(KVContractRule(), src)
        assert len(findings) == 1
        assert "omits" in findings[0].message and "values" in findings[0].message

    def test_unrelated_params_out_of_scope(self):
        src = """\
def lookup(self, keys):
    return keys
"""
        assert run_rule(KVContractRule(), src) == []


class TestNoWriteToMapped:
    def test_subscript_store_fires(self):
        src = """\
def patch(kv, x):
    kv.key_arena[0] = x
"""
        findings = run_rule(NoWriteToMappedRule(), src)
        assert len(findings) == 1
        assert "key_arena" in findings[0].message

    def test_augassign_and_nested_subscript_fire(self):
        src = """\
def scale(kv, x):
    kv.value_arena[:, 1:] *= x
    kv.key_arena[0][2] = x
"""
        assert len(run_rule(NoWriteToMappedRule(), src)) == 2

    def test_copyto_destination_and_fill_fire(self):
        src = """\
import numpy as np

def overwrite(kv, x):
    np.copyto(kv.key_arena, x)
    kv.value_arena.fill(0)
"""
        findings = run_rule(NoWriteToMappedRule(), src)
        assert len(findings) == 2
        assert "copyto" in findings[0].message
        assert ".fill()" in findings[1].message

    def test_reads_and_private_copies_are_clean(self):
        src = """\
import numpy as np

def ok(kv, x, out):
    y = kv.key_arena[0]                    # read
    np.copyto(out, kv.value_arena)         # arena as *source*
    kv.key_arena.copy()[0] = x             # explicit copy-on-write
    key_arena = np.empty_like(y)           # plain local, not an attribute
    key_arena[0] = x
    return y
"""
        assert run_rule(NoWriteToMappedRule(), src) == []

    def test_noqa_suppresses(self):
        src = """\
def rebuild(kv, x):
    kv.key_arena[0] = x  # noqa: no-write-to-mapped -- private rebuild buffer
"""
        assert run_rule(NoWriteToMappedRule(), src) == []
