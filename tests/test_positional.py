"""Position encodings: discontinuous-ID support is the paper's §4.2 core."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.positional import (
    AlibiBias,
    LearnedPositionalEmbedding,
    RotaryEmbedding,
    alibi_slopes,
)

RNG = np.random.default_rng(3)


class TestRotaryEmbedding:
    def test_rejects_odd_head_dim(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(head_dim=7, max_position=16)

    def test_position_zero_is_identity(self):
        rope = RotaryEmbedding(head_dim=8, max_position=32)
        x = RNG.normal(size=(2, 1, 8)).astype(np.float32)
        np.testing.assert_allclose(rope.apply(x, np.array([0])), x, atol=1e-6)

    def test_preserves_norm(self):
        """Rotations are orthogonal: token norms are unchanged."""
        rope = RotaryEmbedding(head_dim=16, max_position=64)
        x = RNG.normal(size=(4, 10, 16)).astype(np.float32)
        out = rope.apply(x, np.arange(10))
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-4
        )

    def test_relative_position_property(self):
        """q·k after RoPE depends only on the position *difference* — the
        property that makes gapped absolute IDs semantically safe (§3.1)."""
        rope = RotaryEmbedding(head_dim=8, max_position=512)
        q = RNG.normal(size=(1, 1, 8)).astype(np.float32)
        k = RNG.normal(size=(1, 1, 8)).astype(np.float32)

        def score(qpos, kpos):
            qr = rope.apply(q, np.array([qpos]))
            kr = rope.apply(k, np.array([kpos]))
            return float(qr[0, 0] @ kr[0, 0])

        assert score(10, 4) == pytest.approx(score(110, 104), abs=1e-3)
        assert score(300, 250) == pytest.approx(score(53, 3), abs=1e-3)

    def test_discontinuous_ids_match_table_lookup(self):
        """Applying at gapped IDs equals applying at contiguous IDs and
        selecting — the lookup-table adaptation of §4.2."""
        rope = RotaryEmbedding(head_dim=8, max_position=128)
        x = RNG.normal(size=(2, 3, 8)).astype(np.float32)
        gapped = np.array([5, 40, 99])
        full = RNG.normal(size=(2, 128, 8)).astype(np.float32)
        full[:, gapped, :] = x
        out_full = rope.apply(full, np.arange(128))
        out_gapped = rope.apply(x, gapped)
        np.testing.assert_allclose(out_gapped, out_full[:, gapped, :], atol=1e-5)

    def test_out_of_range_positions_rejected(self):
        rope = RotaryEmbedding(head_dim=8, max_position=16)
        x = RNG.normal(size=(1, 1, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            rope.apply(x, np.array([16]))
        with pytest.raises(ValueError):
            rope.apply(x, np.array([-1]))

    def test_mismatched_length_rejected(self):
        rope = RotaryEmbedding(head_dim=8, max_position=16)
        x = RNG.normal(size=(1, 3, 8)).astype(np.float32)
        with pytest.raises(ValueError):
            rope.apply(x, np.array([0, 1]))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=55))
    def test_relative_property_hypothesis(self, base, delta):
        rope = _ROPE
        q = _QK[0]
        k = _QK[1]
        qr = rope.apply(q, np.array([base + delta]))
        kr = rope.apply(k, np.array([base]))
        qr0 = rope.apply(q, np.array([delta]))
        kr0 = rope.apply(k, np.array([0]))
        assert float(qr[0, 0] @ kr[0, 0]) == pytest.approx(
            float(qr0[0, 0] @ kr0[0, 0]), abs=1e-3
        )


_ROPE = RotaryEmbedding(head_dim=8, max_position=256)
_QK = RNG.normal(size=(2, 1, 1, 8)).astype(np.float32)


class TestAlibi:
    def test_slopes_power_of_two(self):
        slopes = alibi_slopes(8)
        assert len(slopes) == 8
        # Geometric sequence with ratio 2^(-1) for 8 heads.
        ratios = slopes[1:] / slopes[:-1]
        np.testing.assert_allclose(ratios, ratios[0], rtol=1e-6)
        assert slopes[0] == pytest.approx(2 ** (-1.0))

    def test_slopes_non_power_of_two(self):
        slopes = alibi_slopes(6)
        assert len(slopes) == 6
        assert np.all(slopes > 0)

    def test_bias_zero_at_same_position(self):
        bias = AlibiBias(4, 64).bias(np.array([5]), np.array([5]))
        np.testing.assert_allclose(bias[:, 0, 0], 0.0)

    def test_bias_grows_with_distance(self):
        ab = AlibiBias(2, 64)
        bias = ab.bias(np.array([10]), np.array([0, 5, 9]))
        # Keys further back receive more negative bias.
        assert bias[0, 0, 0] < bias[0, 0, 1] < bias[0, 0, 2] < 0

    def test_bias_depends_on_position_ids_not_indices(self):
        """Gapped IDs must yield the same bias as the equivalent distances —
        the lookup-table adaptation for ALiBi (§4.2)."""
        ab = AlibiBias(2, 512)
        a = ab.bias(np.array([100]), np.array([90]))
        b = ab.bias(np.array([400]), np.array([390]))
        np.testing.assert_allclose(a, b)

    def test_bias_shape(self):
        ab = AlibiBias(3, 64)
        assert ab.bias(np.arange(4), np.arange(7)).shape == (3, 4, 7)


class TestLearnedPositional:
    def test_lookup_adds_table_rows(self):
        table = RNG.normal(size=(16, 4)).astype(np.float32)
        pos = LearnedPositionalEmbedding(table)
        hidden = np.zeros((3, 4), dtype=np.float32)
        out = pos.apply(hidden, np.array([2, 9, 2]))
        np.testing.assert_array_equal(out[0], table[2])
        np.testing.assert_array_equal(out[1], table[9])
        np.testing.assert_array_equal(out[0], out[2])

    def test_discontinuous_ids_no_adaptation_needed(self):
        # The paper notes embedding tables need no changes (§4.2): any order
        # and gap pattern of IDs is just a gather.
        table = RNG.normal(size=(32, 4)).astype(np.float32)
        pos = LearnedPositionalEmbedding(table)
        hidden = np.zeros((3, 4), dtype=np.float32)
        out = pos.apply(hidden, np.array([31, 0, 17]))
        np.testing.assert_array_equal(out[0], table[31])

    def test_out_of_range_rejected(self):
        pos = LearnedPositionalEmbedding(np.zeros((8, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            pos.apply(np.zeros((1, 4), dtype=np.float32), np.array([8]))
