"""Miner promotion policy against a recording stub engine.

These tests pin the policy invariants the byte-identity contract rests
on (no real model needed — the stub records registrations):

- thresholds: promotion requires ``min_hits`` observations AND a segment
  of at least ``min_tokens`` beyond the previous promoted boundary;
- tip-extension only: a node shallower than an already-promoted
  descendant is never promoted (its span would overlap);
- segments of one path tile ``[0, end)`` contiguously;
- demotion: trie eviction of a promoted node unregisters its module;
- failed registration is retried and surfaced in the stats.
"""

from __future__ import annotations

import pytest

from repro.reuse.miner import DiscoveryConfig, ReuseMiner


class StubEngine:
    """Records register/unregister calls; optionally fails some."""

    def __init__(self, fail_first: int = 0) -> None:
        self.registered: dict[str, tuple[tuple[int, ...], int, tuple[str, ...]]] = {}
        self.unregistered: list[tuple[str, str | None]] = []
        self._fail_remaining = fail_first

    def register_discovered_module(self, name, prefix_tokens, start, ancestors=()):
        if self._fail_remaining > 0:
            self._fail_remaining -= 1
            raise RuntimeError("store pressure")
        self.registered[name] = (tuple(prefix_tokens), start, tuple(ancestors))

    def unregister_discovered_module(self, name, reason=None):
        self.unregistered.append((name, reason))


def miner(engine=None, **overrides) -> ReuseMiner:
    config = DiscoveryConfig(**{"min_hits": 2, "min_tokens": 4, **overrides})
    return ReuseMiner(engine if engine is not None else StubEngine(), config)


SHARED = list(range(100, 112))  # 12-token shared prefix


class TestThresholds:
    def test_no_promotion_below_min_hits(self):
        engine = StubEngine()
        m = miner(engine, min_hits=3)
        m.observe(SHARED + [1])
        m.observe(SHARED + [2])
        assert not engine.registered

    def test_promotes_at_min_hits(self):
        engine = StubEngine()
        m = miner(engine, min_hits=2)
        m.observe(SHARED + [1])
        m.observe(SHARED + [2])
        (prefix, start, ancestors), = engine.registered.values()
        assert prefix == tuple(SHARED)
        assert start == 0 and ancestors == ()
        assert m.stats.promotions == 1

    def test_no_promotion_below_min_tokens(self):
        engine = StubEngine()
        m = miner(engine, min_tokens=64)
        for i in range(5):
            m.observe(SHARED + [i])
        assert not engine.registered

    def test_max_modules_cap(self):
        engine = StubEngine()
        m = miner(engine, max_modules=1)
        for i in range(3):
            m.observe(SHARED + [i])
            m.observe(list(range(200, 212)) + [i])
        assert len(engine.registered) == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="min_hits"):
            DiscoveryConfig(min_hits=1).validate()
        with pytest.raises(ValueError, match="min_tokens"):
            DiscoveryConfig(min_tokens=0).validate()


class TestChainTiling:
    def test_deeper_segment_starts_at_previous_boundary(self):
        engine = StubEngine()
        m = miner(engine)
        extended = SHARED + list(range(300, 308))
        m.observe(SHARED + [1])
        m.observe(SHARED + [2])  # promotes [0, 12)
        m.observe(extended + [1])
        m.observe(extended + [2])  # promotes [12, 20) on the same path
        starts = sorted(start for _, start, _ in engine.registered.values())
        assert starts == [0, 12]
        deeper = [
            (prefix, start, anc)
            for prefix, start, anc in engine.registered.values()
            if start == 12
        ]
        (prefix, start, ancestors), = deeper
        assert prefix == tuple(extended)
        assert len(ancestors) == 1  # conditioned on the promoted root segment

    def test_shallower_node_never_promoted_after_descendant(self):
        engine = StubEngine()
        # min_tokens small so the shallow split node would qualify if the
        # tip-extension rule did not exclude it.
        m = miner(engine, min_hits=2, min_tokens=2)
        deep = SHARED + list(range(300, 306))
        m.observe(deep)
        m.observe(deep)  # promotes the full deep path [0, 18)
        registered_before = set(engine.registered)
        # Diverge inside the promoted run: the split creates a shallower
        # node that keeps the hit stats — still not promotable.
        for i in range(4):
            m.observe(SHARED[:6] + [900 + i])
        new = {
            name: engine.registered[name]
            for name in set(engine.registered) - registered_before
        }
        for prefix, start, _ in new.values():
            # Any new module must not overlap [0, 18) unless it *is* a
            # chain extension starting at a promoted boundary.
            assert start == 0 and len(prefix) <= 6 or start >= 18

    def test_observed_paths_promote_chain_that_tiles(self):
        engine = StubEngine()
        m = miner(engine, min_hits=2, min_tokens=4)
        a = SHARED + list(range(300, 310))
        for seq in (SHARED, SHARED, a, a, a + [1], a + [2]):
            m.observe(seq)
        # Every registered segment chain tiles from 0 with no gaps.
        segs = sorted(
            (start, len(prefix)) for prefix, start, _ in engine.registered.values()
        )
        prev_end = 0
        for start, prefix_len in segs:
            assert start == prev_end
            prev_end = prefix_len


class TestDemotionAndFailure:
    def test_trie_eviction_demotes_module(self):
        engine = StubEngine()
        m = miner(engine, max_trie_tokens=16, min_tokens=4, min_hits=2)
        m.observe(SHARED)
        m.observe(SHARED)  # promoted, 12 tokens resident
        assert len(engine.registered) == 1
        # Unrelated traffic blows the token budget; the promoted leaf is
        # the eviction victim and must be demoted.
        m.observe(list(range(400, 412)))
        m.observe(list(range(500, 512)))
        assert engine.unregistered, "eviction did not demote"
        name, reason = engine.unregistered[0]
        assert name in {"seg0001"} and reason == "capacity"
        assert m.stats.demotions == 1
        assert m.snapshot()["modules"] == len(engine.registered) - len(
            engine.unregistered
        )

    def test_failed_registration_retries_and_is_counted(self):
        engine = StubEngine(fail_first=1)
        m = miner(engine, min_hits=2)
        m.observe(SHARED + [1])
        m.observe(SHARED + [2])  # first attempt fails
        assert not engine.registered
        assert m.stats.failed_promotions == 1
        assert "store pressure" in (m.last_promotion_error or "")
        m.observe(SHARED + [3])  # retried on the next observation
        assert len(engine.registered) == 1
        assert m.stats.promotions == 1

    def test_match_and_matched_prefix_len(self):
        engine = StubEngine()
        m = miner(engine, min_hits=2)
        m.observe(SHARED + [1])
        m.observe(SHARED + [2])
        names = m.match(SHARED + [5, 6])
        assert names == list(engine.registered)
        assert m.matched_prefix_len(SHARED + [5, 6]) == len(SHARED)
        assert m.match([9, 9, 9]) == []
        assert m.matched_prefix_len([9, 9, 9]) == 0

    def test_snapshot_shape(self):
        m = miner()
        m.observe(SHARED)
        snap = m.snapshot()
        for key in (
            "trie_nodes", "trie_tokens", "modules", "promotions", "demotions",
            "failed_promotions", "observed_sequences", "observed_tokens",
            "last_promotion_error",
        ):
            assert key in snap
        assert snap["observed_sequences"] == 1
        assert snap["observed_tokens"] == len(SHARED)
