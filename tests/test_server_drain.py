"""Graceful-drain semantics of ``LiveServer.stop(drain=True)``.

The SIGTERM contract: a draining server refuses new submissions with
:class:`ServerClosed` but completes everything already accepted — queued
*and* in flight — before ``stop`` returns. Also pins down the deadline
race: a request whose deadline expires while it sits behind a slow batch
expires instead of running.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.server import DeadlineExceeded, LiveServer, ServeOptions, ServerClosed
from repro.server.request import DONE, EXPIRED

from tests.test_server_runtime import StubEngine, prompt, run


class TestDrain:
    def test_drain_completes_queued_and_inflight_work(self):
        async def main():
            engine = StubEngine(service_s=0.02)
            server = LiveServer(
                engine, ServeOptions(max_batch=1, queue_delay_budget_s=None)
            )
            await server.start()
            requests = [await server.submit(prompt(i=i)) for i in range(4)]
            stop = asyncio.create_task(server.stop(drain=True))
            await asyncio.sleep(0)  # let the drain flag land
            assert server.draining
            with pytest.raises(ServerClosed, match="draining"):
                await server.submit(prompt(i=99))
            await stop
            return server, requests

        server, requests = run(main())
        # Every accepted request ran to completion before stop returned.
        assert [r.state for r in requests] == [DONE] * 4
        assert all(r.result is not None for r in requests)
        assert not server._running

    def test_drain_then_results_consumable_after_stop(self):
        async def main():
            engine = StubEngine(service_s=0.01)
            server = LiveServer(
                engine, ServeOptions(max_batch=2, queue_delay_budget_s=None)
            )
            await server.start()
            requests = [await server.submit(prompt(i=i)) for i in range(3)]
            await server.stop(drain=True)
            # wait() after the fact must resolve, not hang or raise.
            return [await r.wait() for r in requests]

        results = run(main())
        assert [r.text for r in results] == ["ok"] * 3

    def test_non_drain_stop_fails_queued_requests(self):
        async def main():
            engine = StubEngine(service_s=0.05)
            server = LiveServer(
                engine, ServeOptions(max_batch=1, queue_delay_budget_s=None)
            )
            await server.start()
            first = await server.submit(prompt(i=0))  # will be in flight
            queued = [await server.submit(prompt(i=i)) for i in range(1, 4)]
            await asyncio.sleep(0.01)  # worker picks up the first batch
            await server.stop(drain=False)
            outcomes = []
            for request in [first] + queued:
                try:
                    await request.wait()
                    outcomes.append("done")
                except ServerClosed:
                    outcomes.append("closed")
            return outcomes

        outcomes = run(main())
        # The in-flight batch finishes; the queue is failed fast.
        assert outcomes[0] == "done"
        assert outcomes[1:] == ["closed"] * 3

    def test_restart_after_drain_clears_draining(self):
        async def main():
            server = LiveServer(StubEngine(), ServeOptions(max_batch=1))
            await server.start()
            await server.stop(drain=True)
            await server.start()
            assert not server.draining
            request = await server.submit(prompt())
            result = await request.wait()
            await server.stop()
            return result

        assert run(main()).text == "ok"


class TestDeadlineRace:
    def test_deadline_expiry_racing_batch_start(self):
        """A request whose deadline passes while an earlier batch hogs the
        engine must expire in the queue, not run late."""

        async def main():
            engine = StubEngine(service_s=0.08)
            server = LiveServer(
                engine,
                ServeOptions(max_batch=1, queue_delay_budget_s=None),
            )
            await server.start()
            blocker = await server.submit(prompt(i=0))
            doomed = await server.submit(prompt(i=1), deadline_s=0.02)
            with pytest.raises(DeadlineExceeded):
                await doomed.wait()
            await blocker.wait()
            await server.stop()
            return engine, blocker, doomed

        engine, blocker, doomed = run(main())
        assert blocker.state == DONE
        assert doomed.state == EXPIRED
        # The expired request never reached the engine.
        assert all(prompt(i=1) not in batch for batch in engine.batches)

    def test_deadline_expired_before_worker_wakes(self):
        async def main():
            server = LiveServer(
                StubEngine(), ServeOptions(max_batch=4, batch_max_wait_s=0.05)
            )
            await server.start()
            request = await server.submit(prompt(), deadline_s=0.0)
            with pytest.raises(DeadlineExceeded):
                await request.wait()
            await server.stop()
            return request

        assert run(main()).state == EXPIRED
