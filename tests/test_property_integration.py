"""Property-based integration: random schemas through the whole stack.

Hypothesis generates structurally random schemas (text, modules, params,
unions, nesting) and random valid prompts derived from them; the suite
asserts the stack-wide invariants hold for every instance:

- parser round-trip through Schema.to_pml();
- layout: spans non-overlapping outside unions, pure function of input;
- serving: cached + uncached token counts add up, decoding succeeds;
- baseline content: identical token multiset as cached serving.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.engine import PromptCache
from repro.cache.layout import layout_schema
from repro.llm import build_model, tiny_config
from repro.pml import PLAIN_TEMPLATE, Schema, SchemaMismatchError, resolve
from repro.tokenizer.bpe import train_bpe
from tests.conftest import TRAIN_TEXTS

TOK = train_bpe(TRAIN_TEXTS, vocab_size=420)
MODEL = build_model(tiny_config("llama", vocab_size=TOK.vocab_size), seed=2)

WORDS = ["the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
         "miami", "paris", "plan", "trip", "days", "focus", "food"]

text_strategy = st.lists(st.sampled_from(WORDS), min_size=1, max_size=12).map(" ".join)


@st.composite
def module_strategy(draw, index: int):
    name = f"m{index}"
    parts = [draw(text_strategy)]
    has_param = draw(st.booleans())
    if has_param:
        length = draw(st.integers(min_value=1, max_value=6))
        parts.append(f'<param name="p{index}" len="{length}"/>')
        parts.append(draw(text_strategy))
    return name, has_param, f'<module name="{name}">{"".join(parts)}</module>'


@st.composite
def schema_strategy(draw):
    """A schema with 1-4 top-level modules, optionally one union."""
    n_modules = draw(st.integers(min_value=1, max_value=4))
    names, bodies = {}, []
    for i in range(n_modules):
        name, has_param, body = draw(module_strategy(i))
        names[name] = has_param
        bodies.append(body)
    union_members: list[str] = []
    if draw(st.booleans()):
        a = f'<module name="u0">{draw(text_strategy)}</module>'
        b = f'<module name="u1">{draw(text_strategy)} {draw(text_strategy)}</module>'
        bodies.append(f"<union>{a}{b}</union>")
        union_members = ["u0", "u1"]
    if draw(st.booleans()):
        bodies.insert(0, draw(text_strategy))
    source = f'<schema name="gen">{"".join(bodies)}</schema>'
    return source, names, union_members


@st.composite
def prompt_strategy(draw, names: dict[str, bool], union_members: list[str]):
    selected = [n for n in names if draw(st.booleans())]
    if union_members and draw(st.booleans()):
        selected.append(draw(st.sampled_from(union_members)))
    imports = []
    for name in selected:
        index = name[1:]
        if names.get(name) and draw(st.booleans()):
            imports.append(f'<{name} p{index}="{draw(st.sampled_from(WORDS))}"/>')
        else:
            imports.append(f"<{name}/>")
    trailing = draw(text_strategy) if draw(st.booleans()) else ""
    return f'<prompt schema="gen">{"".join(imports)} {trailing}</prompt>'


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_random_schema_full_stack(data):
    source, names, union_members = data.draw(schema_strategy())
    schema = Schema.parse(source)

    # Round-trip through the canonical serialization.
    again = Schema.parse(schema.to_pml())
    assert set(again.modules) == set(schema.modules)

    # Layout invariants.
    layout = layout_schema(schema, TOK)
    layout2 = layout_schema(Schema.parse(source), TOK)
    for name in layout.modules:
        np.testing.assert_array_equal(
            layout.module(name).positions, layout2.module(name).positions
        )
    for a in layout.modules.values():
        for b in layout.modules.values():
            if a.name >= b.name:
                continue
            if {a.name, b.name} == set(union_members):
                continue
            overlap = set(map(int, a.positions)) & set(map(int, b.positions))
            assert not overlap, (a.name, b.name)

    # Serve a random derived prompt end to end.
    prompt = data.draw(prompt_strategy(names, union_members))
    pc = PromptCache(MODEL, TOK, template=PLAIN_TEMPLATE)
    pc.register_schema(source, eager=False)
    resolved = resolve(prompt, schema)

    # Arguments longer than their slots are legitimately rejected; skip those.
    for selection in resolved.selections:
        for param_name, value in selection.args.items():
            slot = layout.module(selection.name).params[param_name]
            if len(TOK.encode(value)) > slot.length:
                return

    try:
        result = pc.serve(prompt, max_new_tokens=2)
    except SchemaMismatchError:
        # Prompts selecting nothing at all are legitimately rejected.
        assert not resolved.selections and not resolved.texts
        assert not layout.always_included()
        return
    assert result.prompt_tokens == result.cached_tokens + result.uncached_tokens
    assert len(result.output_ids) == 2

    baseline = pc.baseline(prompt, max_new_tokens=2)
    assert len(baseline.output_ids) == 2


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_random_prompt_baseline_content_matches(data):
    """The baseline sequence contains exactly the cached+uncached content:
    serve and baseline agree on total prompt token count."""
    source, names, union_members = data.draw(schema_strategy())
    schema = Schema.parse(source)
    prompt = data.draw(prompt_strategy(names, union_members))
    pc = PromptCache(MODEL, TOK, template=PLAIN_TEMPLATE)
    pc.register_schema(source, eager=False)

    layout = layout_schema(schema, TOK)
    resolved = resolve(prompt, schema)
    for selection in resolved.selections:
        for param_name, value in selection.args.items():
            slot = layout.module(selection.name).params[param_name]
            if len(TOK.encode(value)) > slot.length:
                return

    try:
        result = pc.serve(prompt, max_new_tokens=1)
    except SchemaMismatchError:
        return  # empty prompt: covered by the full-stack test
    baseline = pc.baseline(prompt, max_new_tokens=1)
    expected = result.prompt_tokens
    if result.uncached_tokens == 1 and not resolved.texts:
        # Fully-cached prompts recompute one token; it is part of the
        # baseline sequence already.
        expected = result.cached_tokens + 1
    assert len(baseline.prompt_ids) == expected
