"""Continuous iteration-level batching: the per-token scheduler stack.

Bottom-up coverage of the pieces the scheduler composes — the batched
single-token forward (bit-identical to sequential decode), resumable
serve streams with chunked prefill, the FIFO admission queue — and then
the end-to-end contracts: greedy outputs byte-identical to the
whole-request ``serve_batch`` path across all four positional families,
no starvation under adversarial arrival order, and balanced paged-lease
accounting under the page auditor.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import install_sanitizers, uninstall_sanitizers
from repro.cache.engine import PromptCache
from repro.llm import generate, generate_batch
from repro.pml.chat import PLAIN_TEMPLATE
from repro.server import ContinuousScheduler, LiveServer, ServeOptions
from repro.server.batcher import RAW_BUCKET, CacheAwareBatcher
from repro.server.request import DONE, FAILED, LiveRequest


def run(coro):
    return asyncio.run(coro)


def make_request(request_id, *, schema="a", submitted_at=0.0, raw=False,
                 batch_group=None, max_new_tokens=4, prompt="p"):
    return LiveRequest(
        request_id=request_id,
        prompt=prompt,
        schema=schema,
        max_new_tokens=max_new_tokens,
        submitted_at=submitted_at,
        raw=raw,
        batch_group=batch_group,
    )


SCHEMA = (
    '<schema name="trip">'
    '<module name="plan">plan a trip lasting three days focus on food '
    "the quick brown fox jumps over the lazy dog</module>"
    '<module name="city">paris museums cafes architecture louvre seine'
    "</module>"
    "</schema>"
)
PROMPTS = [
    '<prompt schema="trip"><plan/> answer the question</prompt>',
    '<prompt schema="trip"><plan/><city/> answer the question using the '
    "documents above</prompt>",
    '<prompt schema="trip"><city/> miami beaches nightlife</prompt>',
    '<prompt schema="trip"><plan/> the capital of atlantis</prompt>',
]


def make_pc(model, tok):
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(SCHEMA)
    return pc


# -- batched decode forward ------------------------------------------------------


class TestForwardDecodeBatch:
    def test_generate_batch_matches_sequential(self, any_model, tok):
        """The tentpole's correctness bedrock, per positional family:
        one batched forward per step produces exactly the tokens the
        per-sequence loop produces."""
        prompts = [
            tok.encode("the quick brown fox"),
            tok.encode("paris museums cafes architecture"),
            tok.encode("plan a trip lasting three days"),
        ]
        sequential = [
            generate(any_model, p, max_new_tokens=8) for p in prompts
        ]
        batched = generate_batch(any_model, prompts, max_new_tokens=8)
        for seq, bat in zip(sequential, batched):
            assert bat.output_ids == seq.output_ids

    def test_mixed_lengths_retire_independently(self, llama, tok):
        """A stop-token retirement mid-batch must not perturb survivors:
        run one long sequence alone, then alongside a short-budget one."""
        long_prompt = tok.encode("the quick brown fox jumps")
        short_prompt = tok.encode("miami beaches nightlife")
        alone = generate(llama, long_prompt, max_new_tokens=10)
        together = generate_batch(
            llama, [long_prompt, short_prompt], max_new_tokens=10
        )
        # Shrink the second's budget by re-running with per-call budgets
        # via the scheduler-equivalent: batch of different effective
        # lengths is exercised through stop_ids below.
        assert together[0].output_ids == alone.output_ids
        stop = together[1].output_ids[2]
        with_stop = generate_batch(
            llama, [long_prompt, short_prompt],
            max_new_tokens=10, stop_ids={stop},
        )
        # The long sequence still matches its solo run even after the
        # short one dropped out of the batch partway through...
        if stop not in alone.output_ids:
            assert with_stop[0].output_ids == alone.output_ids
        # ...and the short one stopped exactly at the stop token.
        assert with_stop[1].output_ids[-1] == stop

    def test_batch_of_one_matches_forward(self, llama, tok):
        prompt = tok.encode("answer the question")
        assert (
            generate_batch(llama, [prompt], max_new_tokens=6)[0].output_ids
            == generate(llama, prompt, max_new_tokens=6).output_ids
        )


# -- decode_loop step accounting -------------------------------------------------


class TestDecodeTiming:
    def test_sampling_time_lands_in_step_times(self, llama, tok):
        """Satellite: per-step sampling cost is folded into
        ``step_times_s`` — a deliberately slow sampler must show up in
        TTST, not vanish between the timers."""
        prompt = tok.encode("the quick brown fox")
        delay = 0.005

        class SlowGreedy:
            def __call__(self, logits):
                time.sleep(delay)
                return int(np.argmax(logits))

        fast = generate(llama, prompt, max_new_tokens=5)
        slow = generate(llama, prompt, max_new_tokens=5, sampler=SlowGreedy())
        assert slow.output_ids == fast.output_ids
        # 4 recorded steps (final token's sampling has no forward after
        # it and stays uncharged); each must carry >= one sampling delay.
        assert len(slow.step_times_s) == 4
        assert all(s >= delay for s in slow.step_times_s)
        assert sum(slow.step_times_s) >= sum(fast.step_times_s) + 3 * delay


# -- resumable serve streams -----------------------------------------------------


class TestServeStream:
    def test_chunked_prefill_matches_whole_request(self, llama, tok):
        """Driving a stream with a tiny prefill budget, one chunk at a
        time, ends in the same greedy tokens the one-call path makes."""
        pc = make_pc(llama, tok)
        direct = pc.serve(PROMPTS[1], max_new_tokens=6)

        stream = pc.open_stream(PROMPTS[1], max_new_tokens=6)
        assert stream.prefill_remaining > 0
        chunks = 0
        while stream.prefill_remaining:
            assert stream.prefill_step(2) > 0
            chunks += 1
        assert chunks >= 2  # the budget actually chunked the suffix
        while stream.decoding:
            token, needs_forward = stream.next_token()
            if not needs_forward:
                break
            logits = pc.model.forward_decode_batch(
                np.asarray([token]),
                np.asarray([stream.decode_position]),
                [stream.cache],
            )
            stream.set_logits(logits[0], 0.0)
        result = stream.finish()
        assert result.output_ids == direct.output_ids
        assert result.cached_tokens == direct.cached_tokens
        assert result.prompt_tokens == direct.prompt_tokens

    def test_zero_budget_retires_at_prefill_end(self, llama, tok):
        pc = make_pc(llama, tok)
        stream = pc.open_stream(PROMPTS[0], max_new_tokens=0)
        while stream.prefill_remaining:
            stream.prefill_step(64)
        assert stream.done and not stream.decoding
        assert stream.finish().output_ids == []

    def test_abort_is_idempotent_and_releases_fork(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPTS[0], max_new_tokens=1)  # build the shared base
        live_before = [pool.live_pages for pool in _base_pools(pc)]
        stream = pc.open_stream(PROMPTS[0], max_new_tokens=4)
        stream.abort()
        stream.abort()
        assert [p.live_pages for p in _base_pools(pc)] == live_before

    def test_text_stream_matches_serve_text(self, llama, tok):
        pc = make_pc(llama, tok)
        text = "the quick brown fox jumps over the lazy dog"
        direct = pc.serve_text(text, max_new_tokens=5)
        stream = pc.open_text_stream(text, max_new_tokens=5)
        while stream.prefill_remaining:
            stream.prefill_step(256)
        while stream.decoding:
            token, needs_forward = stream.next_token()
            if not needs_forward:
                break
            logits = pc.model.forward_decode_batch(
                np.asarray([token]),
                np.asarray([stream.decode_position]),
                [stream.cache],
            )
            stream.set_logits(logits[0], 0.0)
        assert stream.finish().output_ids == direct.output_ids


def _base_pools(pc):
    """Page pools behind every shared spliced base the engine holds."""
    pools = []
    for base in pc._bases.values():
        pools.extend(getattr(base.cache, "pools", []))
    return pools


# -- admission queue satellites --------------------------------------------------


class TestBatcherAdmission:
    def test_raw_groups_collapse_into_one_bucket(self):
        """Satellite: raw discovery fingerprints never leak as metric
        labels — every raw group reports under ``<raw>``."""
        b = CacheAwareBatcher()
        b.put(make_request("r1", schema="__raw__", raw=True,
                           batch_group="__raw__:chain-fp-1"))
        b.put(make_request("r2", schema="__raw__", raw=True,
                           batch_group="__raw__:chain-fp-2"))
        b.put(make_request("s1", schema="trip"))
        pending = b.pending_by_schema()
        assert pending == {RAW_BUCKET: 2, "trip": 1}
        assert not any(k.startswith("__raw__:") for k in pending)

    def test_pop_oldest_is_strict_fifo_across_groups(self):
        b = CacheAwareBatcher()
        arrivals = [
            make_request("a", schema="x", submitted_at=1.0),
            make_request("b", schema="y", submitted_at=2.0),
            make_request("c", schema="x", submitted_at=3.0),
            make_request("d", schema="z", submitted_at=4.0),
        ]
        # Schemas interleave adversarially, but put order is arrival
        # order (the runtime enqueues at submit time) — pop order must
        # ignore grouping entirely and follow arrival.
        for r in arrivals:
            b.put(r)
        popped = [b.pop_oldest().request_id for _ in range(4)]
        assert popped == ["a", "b", "c", "d"]
        assert b.pop_oldest() is None


# -- scheduler unit behaviour (duck-typed streams) -------------------------------


class _FakeStream:
    """Minimal ServeStream double for slot-accounting tests."""

    def __init__(self, max_new_tokens=4, prefill=1):
        self.max_new_tokens = max_new_tokens
        self.output_ids = []
        self.prefill_remaining = prefill
        self.done = False
        self.logits = object() if prefill == 0 else None
        self.cache = None
        self.decode_position = 0

    @property
    def decoding(self):
        return self.logits is not None and not self.done

    def prefill_step(self, budget):
        take = min(budget, self.prefill_remaining)
        self.prefill_remaining -= take
        if self.prefill_remaining == 0:
            self.logits = object()
        return take

    def next_token(self):
        self.output_ids.append(7)
        if len(self.output_ids) >= self.max_new_tokens:
            self.done = True
        return 7, not self.done

    def set_logits(self, row, step_s):
        self.logits = row

    def abort(self):
        pass

    def finish(self):
        return "result"


class _FakeEngine:
    def __init__(self):
        self.model = self

    def open_stream(self, prompt, max_new_tokens=32):
        return _FakeStream(max_new_tokens=max_new_tokens)

    def forward_decode_batch(self, tokens, positions, caches):
        return [object()] * len(caches)


class TestSchedulerSlots:
    def test_predicted_free_slots_counts_certain_retirements(self):
        sched = ContinuousScheduler(_FakeEngine(), max_inflight=2)
        sched.iterate([make_request("a", max_new_tokens=3),
                       make_request("b", max_new_tokens=5)])
        assert sched.active == 2  # both prefilled and sampled token 1
        assert sched.predicted_free_slots() == 0
        sched.iterate([])  # a samples token 2 of 3 → certain to retire
        assert sched.predicted_free_slots() == 1
        outcome = sched.iterate([make_request("c", max_new_tokens=5)])
        # a retired in the sample phase, c filled the slot same-iteration.
        assert [r.request_id for r, *_ in outcome.finished] == ["a"]
        assert outcome.admitted == 1
        assert sched.active == 2

    def test_overflow_is_requeued_not_lost(self):
        sched = ContinuousScheduler(_FakeEngine(), max_inflight=1)
        outcome = sched.iterate([make_request("a"), make_request("b")])
        assert outcome.admitted == 1
        assert [r.request_id for r in outcome.requeued] == ["b"]

    def test_open_failure_fails_only_that_request(self):
        class Flaky(_FakeEngine):
            def open_stream(self, prompt, max_new_tokens=32):
                if prompt == "bad":
                    raise ValueError("boom")
                return super().open_stream(prompt, max_new_tokens=max_new_tokens)

        sched = ContinuousScheduler(Flaky(), max_inflight=4)
        outcome = sched.iterate([
            make_request("good", prompt="ok"),
            make_request("bad", prompt="bad"),
        ])
        assert outcome.admitted == 1
        (req, result, error, _), = outcome.finished
        assert req.request_id == "bad" and result is None
        assert isinstance(error, ValueError)
        assert sched.active == 1


# -- end-to-end: LiveServer in continuous mode -----------------------------------


class TestContinuousServer:
    def options(self, **kw):
        kw.setdefault("mode", "continuous")
        kw.setdefault("queue_delay_budget_s", None)
        return ServeOptions(**kw)

    def test_outputs_byte_identical_to_serve_batch(self, any_model, tok):
        """The acceptance contract, per positional family: greedy tokens
        from the iteration-level scheduler match whole-request
        ``serve_batch`` exactly."""
        pc = make_pc(any_model, tok)
        direct = pc.serve_batch(PROMPTS, max_new_tokens=6).results

        async def main():
            async with LiveServer(pc, self.options()) as server:
                assert server.continuous
                requests = [
                    await server.submit(p, max_new_tokens=6) for p in PROMPTS
                ]
                return [await r.wait() for r in requests]

        live = run(main())
        for a, b in zip(live, direct):
            assert a.output_ids == b.output_ids
            assert a.cached_tokens == b.cached_tokens

    def test_no_starvation_under_adversarial_arrival(self, llama, tok):
        """A long decode admitted first must not delay later short
        requests to its own completion: with iteration-level batching
        the shorts retire while the long request is still decoding."""
        pc = make_pc(llama, tok)

        async def main():
            async with LiveServer(
                pc, self.options(max_inflight=3)
            ) as server:
                long_req = await server.submit(PROMPTS[0], max_new_tokens=48)
                shorts = [
                    await server.submit(p, max_new_tokens=2)
                    for p in PROMPTS[1:]
                ]
                await asyncio.gather(
                    long_req.wait(), *(r.wait() for r in shorts)
                )
                return long_req, shorts

        long_req, shorts = run(main())
        assert long_req.state == DONE and len(long_req.result.output_ids) == 48
        for short in shorts:
            assert short.state == DONE
            # Strictly earlier completion: the long request never held
            # the engine to itself.
            assert short.finished_at < long_req.finished_at

    def test_paged_leases_balance_across_serving(self, llama, tok):
        """Every fork the scheduler takes (and every private mirror
        seed behind it) is released by retirement — audited page
        balance across a concurrent serving burst."""
        already = sanitize.active_auditor()
        auditor = install_sanitizers()
        try:
            pc = make_pc(llama, tok)
            pc.serve_batch(PROMPTS, max_new_tokens=2)  # build shared bases
            pools = _base_pools(pc)
            assert pools

            async def main():
                async with LiveServer(pc, self.options()) as server:
                    requests = [
                        await server.submit(p, max_new_tokens=4)
                        for p in PROMPTS * 2
                    ]
                    await asyncio.gather(*(r.wait() for r in requests))

            with auditor.expect_balanced(*pools):
                run(main())
            assert auditor.errors_raised == 0
        finally:
            if already is None:
                uninstall_sanitizers()

    def test_raw_text_path_matches_serve_text(self, llama, tok):
        pc = make_pc(llama, tok)
        texts = [
            "the quick brown fox jumps over the lazy dog",
            "paris museums cafes architecture louvre seine",
        ]
        direct = [pc.serve_text(t, max_new_tokens=4) for t in texts]

        async def main():
            async with LiveServer(pc, self.options()) as server:
                requests = [
                    await server.submit_text(t, max_new_tokens=4)
                    for t in texts
                ]
                return [await r.wait() for r in requests]

        live = run(main())
        for a, b in zip(live, direct):
            assert a.output_ids == b.output_ids

    def test_iteration_metrics_exported(self, llama, tok):
        """Satellite: occupancy histogram, decode-rate gauge, stall
        counter, and inter-token latency quantiles all reach the
        Prometheus exposition."""
        pc = make_pc(llama, tok)

        async def main():
            async with LiveServer(
                pc, self.options(max_inflight=2)
            ) as server:
                requests = [
                    await server.submit(p, max_new_tokens=4) for p in PROMPTS
                ]
                await asyncio.gather(*(r.wait() for r in requests))
                return server, server.snapshot(), server.prometheus()

        server, snap, prom = run(main())
        assert snap["histograms"]["server_iteration_occupancy"]["count"] > 0
        assert snap["histograms"]["server_iteration_occupancy"]["p99"] <= 2
        assert snap["histograms"]["server_inter_token_seconds"]["count"] > 0
        assert "p95" in snap["histograms"]["server_inter_token_seconds"]
        assert snap["gauges"]["server_decode_tokens_per_second"] > 0
        # max_inflight=2 with 4 queued requests forces admission stalls.
        assert snap["counters"]["server_admission_stalls_total"] >= 1
        for name in (
            "server_iteration_occupancy",
            "server_inter_token_seconds",
            "server_decode_tokens_per_second",
            "server_admission_stalls_total",
        ):
            assert name in prom

    def test_whole_request_mode_still_serves(self, llama, tok):
        """The legacy path stays reachable behind the runtime flag and
        produces the same outputs."""
        pc = make_pc(llama, tok)
        direct = pc.serve(PROMPTS[0], max_new_tokens=4)

        async def main():
            async with LiveServer(
                pc,
                ServeOptions(mode="whole_request", queue_delay_budget_s=None),
            ) as server:
                assert not server.continuous
                return await server.serve(PROMPTS[0], max_new_tokens=4)

        assert run(main()).output_ids == direct.output_ids

    def test_streamed_tokens_arrive_incrementally(self, llama, tok):
        pc = make_pc(llama, tok)

        async def main():
            async with LiveServer(pc, self.options()) as server:
                request = await server.submit(PROMPTS[0], max_new_tokens=5)
                seen = [token async for token in request.stream()]
                result = await request.wait()
                return seen, result

        seen, result = run(main())
        assert seen == result.output_ids
        assert result.output_ids == pc.serve(PROMPTS[0], max_new_tokens=5).output_ids

    def test_shutdown_aborts_inflight_without_leaks(self, llama, tok):
        pc = make_pc(llama, tok)
        pc.serve(PROMPTS[0], max_new_tokens=1)
        pools = _base_pools(pc)
        live_before = [p.live_pages for p in pools]

        async def main():
            server = LiveServer(pc, self.options())
            await server.start()
            request = await server.submit(PROMPTS[0], max_new_tokens=2000)
            # Give the scheduler a moment to admit it, then slam the door.
            for _ in range(200):
                await asyncio.sleep(0.005)
                if server.inflight:
                    break
            await server.stop(drain=False)
            return request

        request = run(main())
        assert request.state == FAILED
        assert [p.live_pages for p in pools] == live_before
