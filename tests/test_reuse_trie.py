"""Invariants of the reuse-discovery radix trie (and the dedup analyzer).

Property-based core (hypothesis, seeded/deterministic):

- insert/longest-prefix round-trip: every inserted sequence matches in
  full, and an arbitrary query's match length equals its longest common
  prefix with the inserted set;
- path compression: resident ``token_count`` equals the number of
  *distinct non-empty prefixes* in the inserted set (the uncompressed
  trie's node count), while ``node_count`` only grows at branch points;
- eviction: capacity bounds hold after every insert, TTL expiry prunes
  idle leaves (cascading), and pruning re-merges single-child parents.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.reuse.trie import EVICT_CAPACITY, EVICT_TTL, TokenRadixTrie

sequences = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=12),
    min_size=1,
    max_size=8,
)


def lcp(a, b) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestRoundTrip:
    @given(seqs=sequences)
    @settings(max_examples=60, deadline=None)
    def test_inserted_sequences_match_in_full(self, seqs):
        trie = TokenRadixTrie()
        for seq in seqs:
            trie.insert(seq)
        for seq in seqs:
            assert trie.longest_prefix(seq).length == len(seq)

    @given(seqs=sequences, query=st.lists(st.integers(0, 7), max_size=14))
    @settings(max_examples=60, deadline=None)
    def test_match_length_is_longest_common_prefix(self, seqs, query):
        trie = TokenRadixTrie()
        for seq in seqs:
            trie.insert(seq)
        expected = max(lcp(query, seq) for seq in seqs)
        assert trie.longest_prefix(query).length == expected

    @given(seqs=sequences)
    @settings(max_examples=60, deadline=None)
    def test_covered_path_tiles_the_sequence(self, seqs):
        trie = TokenRadixTrie()
        for seq in seqs:
            path = trie.insert(seq)
            offset = 0
            for node in path:
                assert node.start == offset
                offset = node.end
            assert offset == len(seq)
            assert tuple(seq[: path[-1].end]) == path[-1].path_tokens()


class TestCompression:
    @given(seqs=sequences)
    @settings(max_examples=60, deadline=None)
    def test_token_count_equals_distinct_prefixes(self, seqs):
        trie = TokenRadixTrie()
        prefixes: set[tuple] = set()
        for seq in seqs:
            trie.insert(seq)
            prefixes.update(tuple(seq[:i]) for i in range(1, len(seq) + 1))
        assert trie.stats.token_count == len(prefixes)
        assert trie.stats.node_count == sum(1 for _ in trie.nodes())

    def test_shared_prefix_is_one_run_until_divergence(self):
        trie = TokenRadixTrie()
        trie.insert([1, 2, 3, 4, 5])
        assert trie.stats.node_count == 1
        trie.insert([1, 2, 3, 9, 9])
        # Split at the divergence: shared run [1,2,3] + two tails.
        assert trie.stats.splits == 1
        assert trie.stats.node_count == 3
        shared = trie.longest_prefix([1, 2, 3]).path
        assert len(shared) == 1 and shared[0].tokens == (1, 2, 3)

    def test_split_preserves_hit_statistics_on_upper_node(self):
        trie = TokenRadixTrie()
        for _ in range(3):
            trie.insert([1, 2, 3, 4])
        trie.insert([1, 2, 7])
        upper = trie.longest_prefix([1, 2]).path[0]
        # Every earlier full-run cover also covered the shorter upper
        # half, plus the insert that caused the split.
        assert upper.tokens == (1, 2)
        assert upper.hits == 4

    def test_prune_merges_single_child_parent(self):
        trie = TokenRadixTrie(max_tokens=None)
        trie.insert([1, 2, 3, 4])
        trie.insert([1, 2, 9])
        trie.insert([1, 2, 3, 4, 5])  # keep the [3,4] branch warm
        assert trie.stats.node_count == 4
        victim = trie.longest_prefix([1, 2, 9]).path[-1]
        trie._prune(victim, EVICT_CAPACITY)
        # [1,2] re-merges with its surviving [3,4] child.
        assert trie.longest_prefix([1, 2, 3, 4, 5]).length == 5
        assert trie.stats.node_count == 2


class TestEviction:
    @given(seqs=sequences, cap=st.integers(min_value=4, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_capacity_bound_holds_after_every_insert(self, seqs, cap):
        trie = TokenRadixTrie(max_tokens=cap)
        for seq in seqs:
            trie.insert(seq)
            assert trie.stats.token_count <= cap

    def test_lru_evicts_least_recently_used_leaf(self):
        trie = TokenRadixTrie(max_tokens=8)
        trie.insert([1, 1, 1])
        trie.insert([2, 2, 2])
        trie.insert([1, 1, 1])  # refresh the first branch
        trie.insert([3, 3, 3])  # over budget: [2,2,2] is coldest
        assert trie.longest_prefix([2, 2, 2]).length == 0
        assert trie.longest_prefix([1, 1, 1]).length == 3
        assert trie.longest_prefix([3, 3, 3]).length == 3

    def test_lfu_evicts_least_frequent_leaf(self):
        trie = TokenRadixTrie(max_tokens=8, policy="lfu")
        for _ in range(3):
            trie.insert([1, 1, 1])
        trie.insert([2, 2, 2])  # hits=1, the frequency victim
        trie.insert([3, 3, 3])
        assert trie.longest_prefix([2, 2, 2]).length == 0
        assert trie.longest_prefix([1, 1, 1]).length == 3

    def test_max_nodes_bound(self):
        trie = TokenRadixTrie(max_nodes=2)
        trie.insert([1, 2])
        trie.insert([3, 4])
        trie.insert([5, 6])
        assert trie.stats.node_count <= 2

    def test_ttl_sweep_prunes_idle_leaves_cascading(self):
        clock = FakeClock()
        evicted: list[tuple] = []
        trie = TokenRadixTrie(
            ttl_s=10.0, clock=clock,
            on_evict=lambda node, reason: evicted.append((node.tokens, reason)),
        )
        trie.insert([1, 2, 3])
        trie.insert([1, 2, 9])  # splits: [1,2] interior + two leaves
        # Promote the interior node: it cannot re-merge away, so the
        # cascade must prune it explicitly once its children expire.
        trie.longest_prefix([1, 2]).path[0].promoted = True
        clock.now = 11.0
        pruned = trie.sweep_expired()
        assert pruned == 3
        assert trie.stats.node_count == 0
        assert all(reason == EVICT_TTL for _, reason in evicted)
        assert trie.stats.ttl_evictions == 3

    def test_ttl_sweep_remerges_unpromoted_parent(self):
        clock = FakeClock()
        trie = TokenRadixTrie(ttl_s=10.0, clock=clock)
        trie.insert([1, 2, 3])
        clock.now = 5.0
        trie.insert([1, 2, 9])
        clock.now = 12.0  # first tail idle > ttl, second still fresh
        assert trie.sweep_expired() == 1
        # The unpromoted interior [1,2] re-merged with the survivor.
        assert trie.stats.node_count == 1
        assert trie.longest_prefix([1, 2, 9]).length == 3

    def test_recently_used_leaves_survive_the_sweep(self):
        clock = FakeClock()
        trie = TokenRadixTrie(ttl_s=10.0, clock=clock)
        trie.insert([1, 2, 3])
        clock.now = 8.0
        trie.insert([1, 2, 3])  # refreshed
        clock.now = 11.0
        assert trie.sweep_expired() == 0
        assert trie.longest_prefix([1, 2, 3]).length == 3

    def test_insert_enforces_ttl_lazily(self):
        clock = FakeClock()
        trie = TokenRadixTrie(ttl_s=5.0, clock=clock)
        trie.insert([1, 2, 3])
        clock.now = 6.0
        trie.insert([7, 8])
        assert trie.longest_prefix([1, 2, 3]).length == 0

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            TokenRadixTrie(policy="fifo")


class TestDedupAnalyzer:
    def test_disjoint_batch_has_zero_potential(self):
        from repro.reuse.dedup import analyze_batch

        report = analyze_batch([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert report.shared_tokens == 0
        assert report.potential == 0.0

    def test_shared_prefix_fraction(self):
        from repro.reuse.dedup import analyze_batch

        report = analyze_batch([[1, 2, 3, 4], [1, 2, 3, 9], [1, 2, 7, 7]])
        # Second shares [1,2,3] with the first; third shares [1,2].
        assert report.total_tokens == 12
        assert report.shared_tokens == 5
        assert report.potential == pytest.approx(5 / 12)

    @given(seqs=sequences)
    @settings(max_examples=40, deadline=None)
    def test_potential_bounded_and_order_of_first_sequence_free(self, seqs):
        from repro.reuse.dedup import analyze_batch

        report = analyze_batch(seqs)
        assert 0.0 <= report.potential < 1.0 or len(seqs) == 0
        assert report.total_tokens == sum(len(s) for s in seqs)
