"""Primitive layers: numerical correctness against independent references."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.special import softmax as scipy_softmax

from repro.llm.layers import (
    embed,
    gelu,
    gelu_mlp,
    layer_norm,
    linear,
    rms_norm,
    silu,
    softmax,
    swiglu_mlp,
)

RNG = np.random.default_rng(42)


def rand(*shape):
    return RNG.normal(size=shape).astype(np.float32)


class TestLinear:
    def test_matches_manual_matmul(self):
        x, w, b = rand(5, 8), rand(3, 8), rand(3)
        out = linear(x, w, b)
        np.testing.assert_allclose(out, x @ w.T + b, rtol=1e-6)

    def test_no_bias(self):
        x, w = rand(4, 6), rand(2, 6)
        np.testing.assert_allclose(linear(x, w), x @ w.T, rtol=1e-6)


class TestNorms:
    def test_rms_norm_unit_scale(self):
        x = rand(7, 16)
        out = rms_norm(x, np.ones(16, dtype=np.float32))
        rms = np.sqrt(np.mean(out**2, axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-3)

    def test_rms_norm_weight_scales(self):
        x = rand(3, 8)
        w = np.full(8, 2.0, dtype=np.float32)
        np.testing.assert_allclose(
            rms_norm(x, w), 2.0 * rms_norm(x, np.ones(8, dtype=np.float32)), rtol=1e-6
        )

    def test_layer_norm_zero_mean_unit_var(self):
        x = rand(5, 32)
        out = layer_norm(x, np.ones(32, dtype=np.float32), np.zeros(32, dtype=np.float32))
        np.testing.assert_allclose(out.mean(-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(-1), 1.0, atol=1e-3)

    def test_layer_norm_bias_shifts(self):
        x = rand(2, 4)
        bias = np.full(4, 3.0, dtype=np.float32)
        shifted = layer_norm(x, np.ones(4, dtype=np.float32), bias)
        base = layer_norm(x, np.ones(4, dtype=np.float32), np.zeros(4, dtype=np.float32))
        np.testing.assert_allclose(shifted, base + 3.0, rtol=1e-6)

    def test_rms_norm_invariant_to_scale_direction(self):
        # RMSNorm(a*x) == RMSNorm(x) for positive scalar a.
        x = rand(4, 8)
        w = np.ones(8, dtype=np.float32)
        np.testing.assert_allclose(rms_norm(3.0 * x, w), rms_norm(x, w), atol=1e-5)


class TestActivations:
    def test_silu_matches_definition(self):
        x = rand(100)
        expected = x / (1 + np.exp(-x))
        np.testing.assert_allclose(silu(x), expected, rtol=1e-6)

    def test_silu_zero_at_zero(self):
        assert silu(np.zeros(1, dtype=np.float32))[0] == 0.0

    def test_gelu_close_to_exact(self):
        # tanh approximation should track the exact erf form closely.
        from scipy.special import erf

        x = np.linspace(-4, 4, 200).astype(np.float32)
        exact = 0.5 * x * (1 + erf(x / np.sqrt(2)))
        np.testing.assert_allclose(gelu(x), exact, atol=2e-3)

    def test_gelu_monotone_on_positive(self):
        x = np.linspace(0, 5, 50).astype(np.float32)
        assert np.all(np.diff(gelu(x)) > 0)


class TestSoftmax:
    def test_matches_scipy(self):
        x = rand(6, 10)
        np.testing.assert_allclose(softmax(x), scipy_softmax(x, axis=-1), rtol=1e-5)

    def test_rows_sum_to_one(self):
        x = rand(4, 9) * 10
        np.testing.assert_allclose(softmax(x).sum(-1), 1.0, rtol=1e-5)

    def test_stable_under_large_inputs(self):
        x = np.array([[1e4, 1e4 + 1.0]], dtype=np.float32)
        out = softmax(x)
        assert np.all(np.isfinite(out))
        assert out[0, 1] > out[0, 0]

    def test_shift_invariance(self):
        x = rand(3, 5)
        np.testing.assert_allclose(softmax(x), softmax(x + 7.0), rtol=1e-5)


class TestMLPs:
    def test_swiglu_shape_and_gating(self):
        x = rand(4, 8)
        gate, up, down = rand(16, 8), rand(16, 8), rand(8, 16)
        out = swiglu_mlp(x, gate, up, down)
        assert out.shape == (4, 8)
        expected = (silu(x @ gate.T) * (x @ up.T)) @ down.T
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_gelu_mlp_with_and_without_bias(self):
        x = rand(3, 8)
        up, down = rand(16, 8), rand(8, 16)
        no_bias = gelu_mlp(x, up, None, down, None)
        with_zero_bias = gelu_mlp(
            x, up, np.zeros(16, dtype=np.float32), down, np.zeros(8, dtype=np.float32)
        )
        np.testing.assert_allclose(no_bias, with_zero_bias, rtol=1e-6)


class TestEmbed:
    def test_lookup(self):
        table = rand(10, 4)
        ids = np.array([3, 3, 7])
        out = embed(ids, table)
        np.testing.assert_array_equal(out[0], table[3])
        np.testing.assert_array_equal(out[2], table[7])

    def test_empty_sequence(self):
        table = rand(5, 4)
        assert embed(np.array([], dtype=int), table).shape == (0, 4)
