"""Autograd engine: every op's gradient against central finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.train import autograd as ag
from repro.train.autograd import Tensor

RNG = np.random.default_rng(21)


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x (float64)."""
    x = x.astype(np.float64)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x.astype(np.float32))
        flat[i] = original - eps
        minus = fn(x.astype(np.float32))
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, shape, atol=2e-2):
    """``build(tensor) -> scalar Tensor``; compares autograd vs numerical."""
    x_data = RNG.normal(size=shape).astype(np.float32)

    def scalar(data):
        return float(build(Tensor(data)).data)

    x = Tensor(x_data, requires_grad=True)
    out = build(x)
    out.backward()
    numeric = numerical_grad(scalar, x_data.copy())
    np.testing.assert_allclose(x.grad, numeric, atol=atol, rtol=5e-2)


class TestElementwiseGrads:
    def test_add(self):
        check_gradient(lambda x: (x + 3.0).sum(), (3, 4))

    def test_mul(self):
        other = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        check_gradient(lambda x: (x * other).sum(), (3, 4))

    def test_mul_broadcast(self):
        other = Tensor(RNG.normal(size=(4,)).astype(np.float32))
        check_gradient(lambda x: (x * other).sum(), (3, 4))

    def test_power(self):
        check_gradient(lambda x: ((x * x + 1.0) ** 0.5).sum(), (5,))

    def test_exp(self):
        check_gradient(lambda x: ag.exp(x).sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda x: ag.tanh(x).sum(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda x: ag.sigmoid(x).sum(), (6,))

    def test_sub_and_neg(self):
        check_gradient(lambda x: (2.0 - (-x)).sum(), (4,))

    def test_div(self):
        denom = Tensor(np.abs(RNG.normal(size=(4,))).astype(np.float32) + 1.0)
        check_gradient(lambda x: (x / denom).sum(), (4,))


class TestMatmulGrads:
    def test_matmul_2d(self):
        other = Tensor(RNG.normal(size=(4, 5)).astype(np.float32))
        check_gradient(lambda x: (x @ other).sum(), (3, 4))

    def test_matmul_right_arg(self):
        left = Tensor(RNG.normal(size=(3, 4)).astype(np.float32))
        check_gradient(lambda x: (left @ x).sum(), (4, 5))

    def test_matmul_batched(self):
        other = Tensor(RNG.normal(size=(2, 4, 5)).astype(np.float32))
        check_gradient(lambda x: (x @ other).sum(), (2, 3, 4))

    def test_matmul_broadcast_batch(self):
        # (B, T, d) @ (d, k) — the linear-layer shape.
        other = Tensor(RNG.normal(size=(4, 5)).astype(np.float32))
        check_gradient(lambda x: (x @ other).sum(), (2, 3, 4))


class TestShapeGrads:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape((6,)) * 2.0).sum(), (2, 3))

    def test_transpose(self):
        w = Tensor(RNG.normal(size=(3, 2)).astype(np.float32))
        check_gradient(lambda x: (x.transpose(1, 0) * w).sum(), (2, 3))

    def test_getitem_slice(self):
        check_gradient(lambda x: x[..., 1:].sum(), (3, 4))

    def test_concat(self):
        check_gradient(
            lambda x: ag.concat([x[..., :2], -x[..., 2:]], axis=-1).sum(), (3, 4)
        )

    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2.0).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: (x.mean(axis=-1) ** 2.0).sum(), (3, 4))


class TestSoftmaxAndLoss:
    def test_softmax_grad(self):
        target = Tensor(RNG.normal(size=(3, 5)).astype(np.float32))
        check_gradient(lambda x: (ag.softmax(x) * target).sum(), (3, 5))

    def test_cross_entropy_matches_manual(self):
        logits_data = RNG.normal(size=(4, 7)).astype(np.float32)
        targets = np.array([1, 3, 0, 6])

        def scalar(data):
            return float(ag.cross_entropy_logits(Tensor(data), targets).data)

        logits = Tensor(logits_data, requires_grad=True)
        loss = ag.cross_entropy_logits(logits, targets)
        loss.backward()
        numeric = numerical_grad(scalar, logits_data.copy())
        np.testing.assert_allclose(logits.grad, numeric, atol=2e-2)

    def test_cross_entropy_weights_mask_positions(self):
        logits = Tensor(RNG.normal(size=(1, 3, 5)).astype(np.float32), requires_grad=True)
        targets = np.array([[1, 2, 3]])
        weights = np.array([[0.0, 1.0, 0.0]])
        loss = ag.cross_entropy_logits(logits, targets, weights)
        loss.backward()
        # Unweighted positions receive exactly zero gradient.
        assert np.all(logits.grad[0, 0] == 0)
        assert np.all(logits.grad[0, 2] == 0)
        assert np.any(logits.grad[0, 1] != 0)

    def test_embedding_grad_scatter(self):
        table = Tensor(RNG.normal(size=(10, 4)).astype(np.float32), requires_grad=True)
        ids = np.array([[2, 2, 5]])
        out = ag.embedding(table, ids)
        out.sum().backward()
        assert np.allclose(table.grad[2], 2.0)  # used twice
        assert np.allclose(table.grad[5], 1.0)
        assert np.allclose(table.grad[0], 0.0)


class TestTapeMechanics:
    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * x + x  # x used three times
        y.backward()
        assert x.grad[0] == pytest.approx(2 * 2.0 + 1.0)

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_no_grad_without_flag(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        y = (x * 2).sum()
        y.backward()
        assert x.grad is None

    def test_detach_stops_gradient(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x.detach() * 2).sum().backward()
        assert x.grad is None

    def test_zero_grad(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None
