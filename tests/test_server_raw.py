"""LiveServer schema-free raw path: submit_text → serve_text_batch.

Stub-engine tests pin the dispatch policy (raw batches go to
``serve_text_batch``, PML batches to ``serve_batch``, never mixed; raw
requests sharing a discovery fingerprint co-batch) and the discovery
metrics (dedup-potential, discovered-token counters, reuse gauges). One
integration class checks the live raw path is byte-identical to the
direct engine call.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.cache.engine import BatchServeResult, PromptCache, ServeResult
from repro.cache.storage import ModuleCacheStore
from repro.pml.errors import PMLError
from repro.reuse import DiscoveryConfig
from repro.server import LiveServer, ServeOptions
from repro.server.loadgen import build_raw_prompts, run_raw_open_loop


def run(coro):
    return asyncio.run(coro)


class ByteTok:
    """Tokenizer double: one token per byte of text."""

    def encode(self, text: str) -> list[int]:
        return list(text.encode())


class StubDiscovery:
    """Miner double: matches any text starting with the shared preamble."""

    PREFIX = "sys: you are helpful. "

    def match(self, ids) -> list[str]:
        if bytes(ids[: len(self.PREFIX)]) == self.PREFIX.encode():
            return ["seg0001"]
        return []

    def snapshot(self) -> dict:
        return {
            "trie_nodes": 3, "trie_tokens": 40, "trie_inserts": 5,
            "trie_lookups": 5, "trie_splits": 1, "trie_evictions": 0,
            "trie_ttl_evictions": 0, "modules": 1, "promotions": 1,
            "demotions": 0, "failed_promotions": 0,
            "observed_sequences": 5, "observed_tokens": 200,
            "last_promotion_error": None,
        }


class RawStubEngine:
    """PromptCache-shaped double covering both serve paths."""

    def __init__(self, service_s: float = 0.0, discovery=None) -> None:
        self.schemas = {"a": object()}
        self.store = ModuleCacheStore()
        self.tokenizer = ByteTok()
        self.discovery = discovery
        self.batches: list[tuple[str, list[str]]] = []
        self.service_s = service_s

    def _results(self, prompts):
        if self.service_s:
            time.sleep(self.service_s)
        return [
            ServeResult(
                output_ids=[1, 2], text="ok", prompt_tokens=10,
                cached_tokens=6, uncached_tokens=4, ttft_s=0.001,
                splice_s=0.0005, suffix_s=0.0005, step_times_s=[0.001],
            )
            for _ in prompts
        ]

    def serve_batch(self, prompts, max_new_tokens=16, **kwargs):
        self.batches.append(("pml", list(prompts)))
        return BatchServeResult(
            results=self._results(prompts), physical_bytes=0,
            duplicated_bytes=0, shared_groups=1,
        )

    def serve_text_batch(self, texts, max_new_tokens=16, **kwargs):
        self.batches.append(("raw", list(texts)))
        return BatchServeResult(
            results=self._results(texts), physical_bytes=0,
            duplicated_bytes=0, shared_groups=1,
        )


OPTIONS = ServeOptions(
    max_batch=4, batch_max_wait_s=0.01, queue_delay_budget_s=None,
    inline_execution=True,
)


class TestRawDispatch:
    def test_raw_goes_to_serve_text_batch(self):
        engine = RawStubEngine()

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                result = await server.serve_text("hello raw", max_new_tokens=2)
                return result

        result = run(main())
        assert result.output_ids == [1, 2]
        assert engine.batches == [("raw", ["hello raw"])]

    def test_raw_and_pml_never_share_a_batch(self):
        engine = RawStubEngine()

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                pml = await server.submit(
                    '<prompt schema="a">q</prompt>', max_new_tokens=2
                )
                raw = await server.submit_text("plain text", max_new_tokens=2)
                await pml.wait()
                await raw.wait()

        run(main())
        kinds = [kind for kind, _ in engine.batches]
        assert sorted(kinds) == ["pml", "raw"]
        assert all(len(batch) == 1 for _, batch in engine.batches)

    def test_shared_fingerprint_batches_together(self):
        engine = RawStubEngine(discovery=StubDiscovery())

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                matched = [
                    await server.submit_text(
                        StubDiscovery.PREFIX + f"user {i}", max_new_tokens=2
                    )
                    for i in range(3)
                ]
                other = await server.submit_text("unrelated", max_new_tokens=2)
                for request in [*matched, other]:
                    await request.wait()
                    assert request.batch_group is not None
                assert matched[0].batch_group == matched[1].batch_group
                assert other.batch_group != matched[0].batch_group

        run(main())
        raw_batches = [batch for kind, batch in engine.batches if kind == "raw"]
        sizes = sorted(len(b) for b in raw_batches)
        assert sizes == [1, 3]

    def test_empty_text_rejected(self):
        engine = RawStubEngine()

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                with pytest.raises(PMLError):
                    await server.submit_text("   ")

        run(main())


class TestRawMetrics:
    def test_dedup_and_discovered_token_series(self):
        engine = RawStubEngine(discovery=StubDiscovery())

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                requests = [
                    await server.submit_text(
                        StubDiscovery.PREFIX + f"user {i}", max_new_tokens=2
                    )
                    for i in range(3)
                ]
                for request in requests:
                    await request.wait()
                return server.prometheus()

        prom = run(main())
        # Pre-flight dedup on the 3-member raw batch.
        assert "reuse_dedup_potential" in prom
        assert 'reuse_dedup_tokens_total{kind="shared"}' in prom
        # Per-request discovered-cache token counters (6 cached + 4
        # uncached per stub result, 3 requests).
        assert 'reuse_discovered_tokens_total{status="cached"} 18' in prom
        assert 'reuse_discovered_tokens_total{status="uncached"} 12' in prom

    def test_reuse_gauges_exported_from_snapshot(self):
        engine = RawStubEngine(discovery=StubDiscovery())

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                await server.serve_text(
                    StubDiscovery.PREFIX + "user", max_new_tokens=2
                )
                return server.prometheus()

        prom = run(main())
        for family in (
            "reuse_trie_nodes 3", "reuse_trie_tokens 40", "reuse_modules 1",
            "reuse_promotions 1", "reuse_demotions 0",
            "reuse_discovered_hit_rate 0.6",
        ):
            assert family in prom, family

    def test_no_discovery_no_reuse_gauges(self):
        engine = RawStubEngine()

        async def main():
            async with LiveServer(engine, OPTIONS) as server:
                await server.serve_text("plain", max_new_tokens=2)
                return server.prometheus()

        prom = run(main())
        assert "reuse_trie_nodes" not in prom
        # Raw token counters still emitted — discovery-off raw traffic is
        # simply all-uncached in real engines.
        assert "reuse_discovered_tokens_total" in prom


class TestRawIntegration:
    """Live raw path over the real engine: byte-identical to direct."""

    def test_live_serve_text_matches_direct(self, llama, tok):
        pc_live = PromptCache(llama, tok)
        pc_live.attach_discovery(DiscoveryConfig(min_hits=2, min_tokens=8))
        pc_direct = PromptCache(llama, tok)
        prompts = build_raw_prompts(tok, 6, shared_tokens=32, suffix_tokens=8)

        async def main():
            async with LiveServer(
                pc_live, ServeOptions(queue_delay_budget_s=None)
            ) as server:
                out = []
                for _ in range(2):
                    for text in prompts:
                        out.append(await server.serve_text(text, max_new_tokens=3))
                return out, server.prometheus()

        live, prom = run(main())
        direct = [
            pc_direct.serve_text(t, max_new_tokens=3, observe=False)
            for t in prompts
        ] * 1
        for result, expected in zip(live[: len(prompts)], direct):
            assert result.output_ids == expected.output_ids
        for result, expected in zip(live[len(prompts):], direct):
            assert result.output_ids == expected.output_ids
        assert pc_live.discovery.stats.promotions >= 1
        assert "reuse_discovered_hit_rate" in prom

    def test_run_raw_open_loop_reports(self, llama, tok):
        pc = PromptCache(llama, tok)
        pc.attach_discovery(DiscoveryConfig(min_hits=2, min_tokens=8))
        prompts = build_raw_prompts(tok, 6, shared_tokens=32, suffix_tokens=8)

        async def main():
            async with LiveServer(
                pc,
                ServeOptions(max_batch=3, batch_max_wait_s=0.005,
                             queue_delay_budget_s=None),
            ) as server:
                return await run_raw_open_loop(
                    server, prompts, max_new_tokens=2
                )

        report = run(main())
        assert report.completed == len(prompts)
        assert report.failed == 0 and report.rejected == 0
        assert report.cached_token_fraction > 0.0
