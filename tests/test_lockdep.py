"""Runtime lockdep: the dynamic half of the lock-order contract."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import locks
from repro.analysis.locks import assert_unheld, ordered_lock
from repro.analysis.sanitize import LockDep, SanitizerError


@pytest.fixture
def lockdep():
    previous = locks.active_lockdep()
    dep = LockDep()
    locks.set_lockdep(dep)
    try:
        yield dep
    finally:
        locks.set_lockdep(previous)


@pytest.fixture
def no_lockdep():
    # The sanitized shard installs a session recorder; these tests are
    # about the production default, so clear it for their duration.
    previous = locks.active_lockdep()
    locks.set_lockdep(None)
    try:
        yield
    finally:
        locks.set_lockdep(previous)


class TestZeroCostOff:
    def test_without_recorder_ordered_lock_is_plain(self, no_lockdep):
        lock = ordered_lock("plain.test")
        # A bare RLock, not a tracking wrapper: no per-acquire overhead.
        assert not isinstance(lock, locks._TrackedLock)
        with lock:
            assert_unheld("plain.test")  # no recorder -> no-op

    def test_locks_created_before_install_stay_plain(self, no_lockdep):
        early = ordered_lock("early.test")
        dep = LockDep()
        locks.set_lockdep(dep)
        try:
            with early:
                assert dep.held_locks() == ()
        finally:
            locks.set_lockdep(None)


class TestLockDep:
    def test_consistent_order_records_edges(self, lockdep):
        a = ordered_lock("t.a")
        b = ordered_lock("t.b")
        with a:
            with b:
                assert lockdep.held_locks() == ("t.a", "t.b")
        assert lockdep.held_locks() == ()
        assert ("t.a", "t.b") in lockdep.edges()

    def test_inverted_acquisition_fails_without_deadlocking(self, lockdep):
        a = ordered_lock("t.a")
        b = ordered_lock("t.b")
        with a:
            with b:
                pass
        # Same thread, opposite nesting: no schedule actually deadlocks
        # *this* run — lockdep reports the inversion anyway.
        with b:
            with pytest.raises(SanitizerError, match="inverts the established order"):
                a.acquire()

    def test_declared_edges_are_seeded(self, lockdep):
        first = ordered_lock("t.first")
        second = ordered_lock("t.second", after=("t.first",))
        # The very first observed acquisition already contradicts the
        # declared order: no warm-up nesting needed.
        with second:
            with pytest.raises(SanitizerError, match="t.first"):
                first.acquire()

    def test_cross_thread_edges_build_one_graph(self, lockdep):
        a = ordered_lock("t.a")
        b = ordered_lock("t.b")

        def forward():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=forward, name="fwd")
        worker.start()
        worker.join()
        failures: list[SanitizerError] = []

        def backward():
            try:
                with b:
                    with a:
                        pass
            except SanitizerError as exc:
                failures.append(exc)

        worker = threading.Thread(target=backward, name="bwd")
        worker.start()
        worker.join()
        assert failures, "inversion on another thread must be detected"

    def test_reentrant_reacquire_is_fine(self, lockdep):
        r = ordered_lock("t.r")
        with r:
            with r:
                assert lockdep.held_locks() == ("t.r", "t.r")

    def test_non_reentrant_reacquire_raises(self, lockdep):
        m = ordered_lock("t.m", reentrant=False)
        m.acquire()
        try:
            with pytest.raises(SanitizerError, match="non-reentrant"):
                m.acquire()
        finally:
            m.release()

    def test_assert_unheld_guard(self, lockdep):
        s = ordered_lock("t.s")
        assert_unheld("t.s")  # not held: fine
        with s:
            with pytest.raises(SanitizerError, match="documented to run"):
                assert_unheld("t.s")

    def test_failed_nonblocking_acquire_does_not_leak_held_state(self, lockdep):
        m = ordered_lock("t.m2", reentrant=False)
        hold = threading.Event()
        release = threading.Event()

        def holder():
            with m:
                hold.set()
                release.wait(timeout=5)

        worker = threading.Thread(target=holder)
        worker.start()
        hold.wait(timeout=5)
        try:
            assert m.acquire(blocking=False) is False
            assert lockdep.held_locks() == ()
        finally:
            release.set()
            worker.join()


class TestEngineIntegration:
    def test_engine_locks_are_tracked_under_sanitizers(self, lockdep):
        from repro.cache.storage import ModuleCacheStore

        store = ModuleCacheStore()
        with store._lock:
            assert "store" in lockdep.held_locks()
