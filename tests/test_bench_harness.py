"""Benchmark harness: token profiling, modeled TTFT rows, report rendering."""

from __future__ import annotations

import pytest

from repro.bench import (
    dataset_profile,
    format_series,
    format_table,
    measure_sample,
    modeled_ttft,
    scale_profile,
    time_call,
    token_profile,
)
from repro.cache.engine import PromptCache
from repro.datasets.suite import build_dataset
from repro.hw.device import RTX_4090
from repro.llm.config import paper_config
from repro.pml import PLAIN_TEMPLATE

LLAMA7B = paper_config("llama2-7b")


class TestTokenProfiles:
    def test_sample_profile_counts(self, tok):
        sample = build_dataset("narrativeqa", n_samples=1, context_words=100)[0]
        profile = token_profile(sample, tok)
        assert profile.cached_tokens > profile.uncached_tokens > 0
        assert profile.total == profile.cached_tokens + profile.uncached_tokens

    def test_dataset_profile_averages(self, tok):
        profile = dataset_profile("narrativeqa", tok, context_words=100, n_samples=3)
        assert profile.dataset == "narrativeqa"
        assert profile.cached_tokens > 0

    def test_scale_profile_preserves_uncached(self, tok):
        base = dataset_profile("narrativeqa", tok, context_words=100, n_samples=2)
        scaled = scale_profile(base, 5000)
        assert scaled.total == 5000
        assert scaled.uncached_tokens == base.uncached_tokens

    def test_scale_profile_floor(self, tok):
        base = dataset_profile("triviaqa", tok, context_words=100, n_samples=1)
        scaled = scale_profile(base, 1)  # smaller than the uncached part
        assert scaled.cached_tokens == 0


class TestModeledTTFT:
    def test_speedup_positive(self, tok):
        profile = scale_profile(
            dataset_profile("narrativeqa", tok, context_words=100, n_samples=1), 5000
        )
        result = modeled_ttft(profile, LLAMA7B, RTX_4090, "gpu")
        assert result.speedup > 1
        assert result.baseline_s > result.cached_s

    def test_storage_affects_cached_only(self, tok):
        profile = scale_profile(
            dataset_profile("narrativeqa", tok, context_words=100, n_samples=1), 5000
        )
        gpu = modeled_ttft(profile, LLAMA7B, RTX_4090, "gpu")
        cpu = modeled_ttft(profile, LLAMA7B, RTX_4090, "cpu")
        assert gpu.baseline_s == cpu.baseline_s
        assert gpu.cached_s < cpu.cached_s


class TestMeasure:
    def test_measure_sample_speedup(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        sample = build_dataset("narrativeqa", n_samples=1, context_words=150)[0]
        result = measure_sample(pc, sample)
        assert result.baseline_s > 0 and result.cached_s > 0
        assert result.cached_tokens > 0

    def test_time_call_returns_best(self):
        elapsed = time_call(sum, range(1000), repeats=3)
        assert 0 <= elapsed < 0.1


class TestReports:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["xyz", 0.001]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_note(self):
        text = format_table("T", ["a"], [[1]], note="context")
        assert text.endswith("note: context")

    def test_format_series_columns(self):
        text = format_series("S", "x", [1, 2], {"ys": [10, 20], "zs": [30, 40]})
        assert "ys" in text and "zs" in text and "40" in text

    def test_float_formatting(self):
        text = format_table("T", ["v"], [[123.456], [1.234], [0.00123], [0.0]])
        assert "123" in text
        assert "1.23" in text
        assert "0.0012" in text
