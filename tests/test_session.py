"""Multi-turn sessions: cache persistence, position budget, coherence."""

from __future__ import annotations

import pytest

from repro.cache.engine import PromptCache
from repro.pml import PLAIN_TEMPLATE
from repro.pml.errors import SchemaMismatchError

SCHEMA = (
    '<schema name="chat">you are a helpful assistant .'
    '<module name="doc">the quick brown fox jumps over the lazy dog .</module>'
    "</schema>"
)


@pytest.fixture()
def pc(llama, tok):
    cache = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
    cache.register_schema(SCHEMA)
    return cache


class TestSession:
    def test_turns_accumulate_context(self, pc):
        session = pc.start_session('<prompt schema="chat"><doc/> hello</prompt>')
        before = session.context_tokens
        session.send("what did the fox do ?", max_new_tokens=4)
        middle = session.context_tokens
        session.send("and the dog ?", max_new_tokens=4)
        assert before < middle < session.context_tokens

    def test_turn_results(self, pc):
        session = pc.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        turn = session.send("tell me more", max_new_tokens=5)
        assert len(turn.output_ids) == 5
        assert turn.uncached_tokens > 0
        assert turn.ttft_s >= 0
        assert isinstance(turn.text, str)
        assert session.turns == [turn]

    def test_per_turn_cost_independent_of_history(self, pc):
        """The whole point: turn N only prefills its own text."""
        session = pc.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        counts = [
            session.send("same question every time", max_new_tokens=3).uncached_tokens
            for _ in range(3)
        ]
        assert counts[0] == counts[1] == counts[2]

    def test_history_influences_replies(self, llama, tok):
        """Replies must condition on earlier turns (the cache is shared)."""
        pc1 = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc1.register_schema(SCHEMA)
        a = pc1.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        a.send("the topic is foxes and hounds today", max_new_tokens=2)
        reply_with_history = a.send("continue", max_new_tokens=6)

        pc2 = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc2.register_schema(SCHEMA)
        b = pc2.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        b.send("the topic is quiet harbors at dusk", max_new_tokens=2)
        reply_other_history = b.send("continue", max_new_tokens=6)
        # Different histories at identical positions: replies may still
        # coincide for a random model, but the cache sizes must reflect the
        # different turn lengths.
        assert a.context_tokens != b.context_tokens or (
            reply_with_history.output_ids != reply_other_history.output_ids
        )

    def test_deterministic_across_identical_sessions(self, pc):
        s1 = pc.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        s2 = pc.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        r1 = s1.send("what now ?", max_new_tokens=5)
        r2 = s2.send("what now ?", max_new_tokens=5)
        assert r1.output_ids == r2.output_ids

    def test_position_budget_enforced(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(SCHEMA)
        session = pc.start_session('<prompt schema="chat"><doc/> hi</prompt>')
        with pytest.raises(SchemaMismatchError, match="position budget"):
            session.send("word " * 4100, max_new_tokens=2)
