"""Snapshot format v2: memmap-ready arenas, tiered verification, attach.

Covers the zero-copy warm-start plane: raw ``.npy`` arena payloads load
via ``np.memmap`` bit-identically, same-host attach shares one resident
copy, the sparse/full digest split keeps corrupt-skip behavior, and the
write-guard sanitizer rejects in-place writes into mapped arenas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizerError, install_sanitizers, uninstall_sanitizers
from repro.cache.engine import PromptCache
from repro.cache.persist import (
    DigestSweep,
    _index_entries,
    attach_snapshot,
    load_store,
    resident_snapshot_bytes,
    save_store,
)
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.llm.kv import LayerKV, ModuleKV
from repro.pml import PLAIN_TEMPLATE
from repro.server.metrics import MetricsRegistry

SCHEMA = (
    '<schema name="lib"><module name="a">the quick brown fox</module>'
    '<module name="b">jumps over the lazy dog</module></schema>'
)
PROMPT = '<prompt schema="lib"><a/><b/> what happened ?</prompt>'


@pytest.fixture()
def pc(llama, tok):
    cache = PromptCache(llama, tok, template=PLAIN_TEMPLATE)
    cache.register_schema(SCHEMA)
    return cache


def _module_kv(seed: int, T: int = 6) -> ModuleKV:
    rng = np.random.default_rng(seed)
    shape = (3, 2, T, 4)
    return ModuleKV.from_arenas(
        rng.standard_normal(shape).astype(np.float32),
        rng.standard_normal(shape).astype(np.float32),
        np.arange(T, dtype=np.int64),
    )


class TestV2RoundTrip:
    def test_eager_load_is_bit_identical_and_arena_backed(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        restored = load_store(tmp_path)
        for name in ("a", "b"):
            key = CacheKey("lib", name)
            original = pc.store.peek(key).kv
            loaded = restored.peek(key).kv
            assert loaded.is_arena
            np.testing.assert_array_equal(loaded.key_arena, original.key_arena)
            np.testing.assert_array_equal(loaded.value_arena, original.value_arena)
            np.testing.assert_array_equal(loaded.positions, original.positions)

    def test_index_carries_version_and_digests(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        version, entries = _index_entries(tmp_path)
        assert version == 2
        for record in entries:
            assert record["kind"] == "arena"
            for part in ("keys", "values", "positions"):
                info = record["files"][part]
                assert len(info["sha256"]) == 64
                assert len(info["sparse_sha256"]) == 64
                assert info["nbytes"] > 0

    def test_unknown_format_rejected(self, pc, tmp_path):
        with pytest.raises(ValueError, match="unknown snapshot format"):
            save_store(pc.store, tmp_path, format="v3")

    def test_unknown_verify_rejected(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        with pytest.raises(ValueError, match="unknown verify mode"):
            load_store(tmp_path, verify="paranoid")


class TestMappedLoad:
    def test_mmap_load_is_mapped_and_bit_identical(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        restored = load_store(tmp_path, mmap=True)
        for name in ("a", "b"):
            key = CacheKey("lib", name)
            loaded = restored.peek(key).kv
            assert loaded.is_arena and loaded.is_mapped
            np.testing.assert_array_equal(
                np.asarray(loaded.key_arena), pc.store.peek(key).kv.key_arena
            )

    def test_mapped_bytes_accounting(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        eager = load_store(tmp_path)
        mapped = load_store(tmp_path, mmap=True)
        assert eager.mapped_bytes() == 0
        assert mapped.mapped_bytes() > 0
        assert mapped.mapped_bytes() == mapped.total_bytes()

    def test_residency_probe_best_effort(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        mapped = load_store(tmp_path, mmap=True)
        resident = resident_snapshot_bytes(mapped)
        if resident is not None:
            assert resident >= 0

    def test_mapped_serve_output_byte_identical(self, pc, tmp_path, llama, tok):
        """The acceptance bit: serving from the memmap store produces the
        same tokens, cached counts, and spliced states as in-memory."""
        in_memory = pc.serve(PROMPT, max_new_tokens=8)
        save_store(pc.store, tmp_path)
        mapped_store = load_store(tmp_path, mmap=True)
        pc2 = PromptCache(llama, tok, store=mapped_store, template=PLAIN_TEMPLATE)
        pc2.register_schema(SCHEMA)  # solos present: no re-encode
        assert mapped_store.peek(CacheKey("lib", "a")).kv.is_mapped
        mapped = pc2.serve(PROMPT, max_new_tokens=8)
        assert mapped.output_ids == in_memory.output_ids
        assert mapped.text == in_memory.text
        assert mapped.cached_tokens == in_memory.cached_tokens


class TestVerification:
    def _snapshot(self, tmp_path):
        store = ModuleCacheStore()
        store.put(CacheKey("s", "a"), _module_kv(1), tier="cpu")
        store.put(CacheKey("s", "b"), _module_kv(2), tier="cpu")
        save_store(store, tmp_path)
        return store

    def _corrupt(self, tmp_path, name: str, offset: int = 200) -> None:
        path = tmp_path / name
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0xFF
        path.write_bytes(bytes(raw))

    def test_corrupt_file_skipped_eager_full(self, tmp_path):
        self._snapshot(tmp_path)
        self._corrupt(tmp_path, "s__a__solo.keys.npy")
        with pytest.warns(UserWarning, match="checksum mismatch"):
            restored = load_store(tmp_path)
        assert CacheKey("s", "a") not in restored
        assert CacheKey("s", "b") in restored

    def test_corrupt_file_skipped_mapped_sparse(self, tmp_path):
        self._snapshot(tmp_path)
        self._corrupt(tmp_path, "s__a__solo.values.npy")
        with pytest.warns(UserWarning, match="sparse checksum mismatch"):
            restored = load_store(tmp_path, mmap=True)
        assert CacheKey("s", "a") not in restored

    def test_truncated_file_skipped(self, tmp_path):
        self._snapshot(tmp_path)
        path = tmp_path / "s__a__solo.keys.npy"
        path.write_bytes(path.read_bytes()[:64])
        with pytest.warns(UserWarning, match="mismatch"):
            restored = load_store(tmp_path, mmap=True)
        assert CacheKey("s", "a") not in restored

    def test_missing_file_skipped(self, tmp_path):
        self._snapshot(tmp_path)
        (tmp_path / "s__b__solo.positions.npy").unlink()
        with pytest.warns(UserWarning, match="payload file missing"):
            restored = load_store(tmp_path)
        assert CacheKey("s", "b") not in restored
        assert CacheKey("s", "a") in restored

    def test_verify_off_loads_corrupt_payload(self, tmp_path):
        self._snapshot(tmp_path)
        self._corrupt(tmp_path, "s__a__solo.keys.npy")
        restored = load_store(tmp_path, verify="off")
        assert CacheKey("s", "a") in restored  # operator opted out

    def test_background_sweep_evicts_corruption(self, tmp_path):
        self._snapshot(tmp_path)
        result = attach_snapshot(tmp_path, background_verify=False)
        assert result.sweep is None
        # Corruption lands *after* attach — only the full sweep sees it.
        self._corrupt(tmp_path, "s__a__solo.values.npy", offset=-3)
        _, entries = _index_entries(tmp_path)
        metrics = MetricsRegistry()
        sweep = DigestSweep(tmp_path, result.store, entries, metrics=metrics)
        with pytest.warns(UserWarning, match="digest sweep evicting"):
            sweep.run()  # run inline: deterministic, no thread scheduling
        assert CacheKey("s", "a") not in result.store
        assert CacheKey("s", "b") in result.store
        assert sweep.verified == 1
        assert len(sweep.failures) == 1
        counters = metrics.snapshot()["counters"]
        assert counters['snapshot_verify_failures_total{phase="background"}'] == 1


class TestAttach:
    def test_attach_shares_one_snapshot_across_stores(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        first = attach_snapshot(tmp_path, background_verify=False)
        second = attach_snapshot(tmp_path, background_verify=False)
        for result in (first, second):
            assert result.mapped_bytes > 0
            assert result.store.mapped_bytes() == result.mapped_bytes
        np.testing.assert_array_equal(
            np.asarray(first.store.peek(CacheKey("lib", "a")).kv.key_arena),
            np.asarray(second.store.peek(CacheKey("lib", "a")).kv.key_arena),
        )

    def test_attach_exports_metrics_and_sweep_passes(self, pc, tmp_path):
        save_store(pc.store, tmp_path)
        metrics = MetricsRegistry()
        result = attach_snapshot(tmp_path, metrics=metrics)
        result.sweep.join(timeout=30)
        assert not result.sweep.is_alive()
        assert result.sweep.failures == []
        gauges = metrics.snapshot()["gauges"]
        assert gauges["snapshot_mapped_bytes"] == result.mapped_bytes
        # Residency is best-effort; when reported it must be a sane gauge.
        if "snapshot_resident_bytes" in gauges:
            assert gauges["snapshot_resident_bytes"] >= 0


class TestWriteGuard:
    @pytest.fixture()
    def guarded(self):
        already = sanitize.active_auditor()
        install_sanitizers()
        yield
        if already is None:
            uninstall_sanitizers()

    def test_append_into_mapped_arena_raises(self, guarded, tmp_path):
        store = ModuleCacheStore()
        store.put(CacheKey("s", "a"), _module_kv(3), tier="cpu")
        save_store(store, tmp_path)
        mapped = load_store(tmp_path, mmap=True).peek(CacheKey("s", "a")).kv
        layer = LayerKV.adopt(
            np.asarray(mapped.key_arena[0]),
            np.asarray(mapped.value_arena[0]),
            np.asarray(mapped.positions),
            length=len(mapped) - 1,  # spare capacity inside the mapping
        )
        grow = np.ones((2, 1, 4), dtype=np.float32)
        with pytest.raises(SanitizerError, match="snapshot-mapped"):
            layer.append(grow, grow, np.array([99]))

    def test_private_append_still_fine(self, guarded):
        layer = LayerKV(n_kv_heads=2, head_dim=4)
        grow = np.ones((2, 3, 4), dtype=np.float32)
        layer.append(grow, grow, np.arange(3))
        assert len(layer) == 3

    def test_guard_uninstalled_with_sanitizers(self):
        from repro.llm import kv as kv_mod

        already = sanitize.active_auditor()
        install_sanitizers()
        assert kv_mod._WRITE_GUARD is not None
        if already is None:
            uninstall_sanitizers()
            assert kv_mod._WRITE_GUARD is None
