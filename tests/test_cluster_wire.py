"""Wire protocol: xxh64 vectors, framing, and module round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.compress import CompressedModuleKV, Int8Codec
from repro.cache.storage import CacheKey
from repro.cluster import wire
from repro.llm.kv import ModuleKV


def make_module_kv(layers=2, heads=2, tokens=5, dim=4, seed=0) -> ModuleKV:
    rng = np.random.default_rng(seed)
    shape = (heads, tokens, dim)
    return ModuleKV(
        keys=[rng.standard_normal(shape).astype(np.float32) for _ in range(layers)],
        values=[rng.standard_normal(shape).astype(np.float32) for _ in range(layers)],
        positions=np.arange(10, 10 + tokens, dtype=np.int64),
    )


class TestXXH64:
    # Published XXH64 reference vectors.
    def test_reference_vectors(self):
        assert wire.xxh64(b"") == 0xEF46DB3751D8E999
        assert wire.xxh64(b"xxhash") == 3665147885093898016
        assert wire.xxh64(b"xxhash", seed=20141025) == 13067679811253438005

    @pytest.mark.parametrize("size", [0, 1, 3, 4, 7, 8, 31, 32, 33, 63, 257, 4096])
    def test_streaming_matches_oneshot(self, size):
        rng = np.random.default_rng(size)
        data = rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()
        stream = wire.StreamingXXH64()
        for start in range(0, size, 13):  # awkward chunk boundary on purpose
            stream.update(data[start:start + 13])
        assert stream.digest() == wire.xxh64(data)

    def test_seed_changes_digest(self):
        assert wire.xxh64(b"abc") != wire.xxh64(b"abc", seed=1)


class TestFraming:
    def test_round_trip(self):
        frame = wire.pack_frame(wire.MSG_CHUNK, b"abcdef")
        msg_type, length = wire.unpack_header(frame[: wire.HEADER_SIZE])
        assert (msg_type, length) == (wire.MSG_CHUNK, 6)
        assert frame[wire.HEADER_SIZE:] == b"abcdef"

    def test_header_only_pack_matches_full_frame(self):
        payload = b"xyz"
        assert (
            wire.pack_header(wire.MSG_CHUNK, len(payload)) + payload
            == wire.pack_frame(wire.MSG_CHUNK, payload)
        )

    def test_bad_magic_and_version(self):
        good = bytearray(wire.pack_frame(wire.MSG_PING))
        bad_magic = bytes(b"JUNK") + bytes(good[4:])
        with pytest.raises(wire.WireError, match="magic"):
            wire.unpack_header(bad_magic[: wire.HEADER_SIZE])
        bad_version = bytes(good[:4]) + bytes([99]) + bytes(good[5:])
        with pytest.raises(wire.WireError, match="version"):
            wire.unpack_header(bad_version[: wire.HEADER_SIZE])

    def test_oversize_frame_rejected(self):
        import struct

        header = struct.pack(
            "!4sBB2xI", wire.MAGIC, wire.VERSION, wire.MSG_CHUNK, 0
        )
        # Rewrite length beyond the cap.
        header = header[:8] + (wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.unpack_header(header)

    def test_get_round_trip(self):
        key = CacheKey("sch", "mod", "solo")
        frame = wire.pack_get(key)
        assert wire.key_from_request(frame[wire.HEADER_SIZE:]) == key


def assemble(module: wire.WireModule, chunk_size=64) -> bytearray:
    body = bytearray()
    for chunk in wire.iter_chunks(module, chunk_size):
        body.extend(chunk)
    return body


class TestModuleRoundTrip:
    def test_raw_round_trip(self):
        kv = make_module_kv()
        key = CacheKey("s", "m")
        module = wire.serialize_module(key, kv)
        assert module.meta["kind"] == "raw"
        assert module.total_bytes == int(module.meta["total_bytes"])
        out = wire.deserialize_module(module.meta, assemble(module))
        assert isinstance(out, ModuleKV)
        np.testing.assert_array_equal(out.positions, kv.positions)
        for a, b in zip(out.keys, kv.keys):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(out.values, kv.values):
            np.testing.assert_array_equal(a, b)

    def test_compressed_round_trip(self):
        codec = Int8Codec()
        stored = codec.encode(make_module_kv(seed=3))
        assert isinstance(stored, CompressedModuleKV)
        module = wire.serialize_module(CacheKey("s", "m"), stored)
        assert module.meta["kind"] == stored.codec
        out = wire.deserialize_module(module.meta, assemble(module))
        assert isinstance(out, CompressedModuleKV)
        assert out.codec == stored.codec
        assert set(out.payload) == set(stored.payload)
        for field_name, tensors in stored.payload.items():
            for a, b in zip(out.payload[field_name], tensors):
                np.testing.assert_array_equal(a, b)
        # The decoded engine view matches too.
        np.testing.assert_array_equal(
            codec.decode(out).keys[0], codec.decode(stored).keys[0]
        )

    def test_chunking_never_splits_correctness(self):
        kv = make_module_kv(tokens=17)
        module = wire.serialize_module(CacheKey("s", "m"), kv)
        for chunk_size in (1, 7, 64, 1 << 20):
            out = wire.deserialize_module(module.meta, assemble(module, chunk_size))
            np.testing.assert_array_equal(out.keys[1], kv.keys[1])

    def test_corruption_detected(self):
        module = wire.serialize_module(CacheKey("s", "m"), make_module_kv())
        body = assemble(module)
        body[len(body) // 2] ^= 0xFF
        with pytest.raises(wire.WireError, match="checksum"):
            wire.deserialize_module(module.meta, body)

    def test_truncation_detected(self):
        module = wire.serialize_module(CacheKey("s", "m"), make_module_kv())
        body = assemble(module)[:-8]
        with pytest.raises(wire.WireError, match="declared"):
            wire.deserialize_module(module.meta, body)

    def test_unserializable_payload(self):
        with pytest.raises(wire.WireError, match="cannot serialize"):
            wire.serialize_module(CacheKey("s", "m"), object())

    def test_zero_copy_send_views(self):
        kv = make_module_kv()
        module = wire.serialize_module(CacheKey("s", "m"), kv)
        # The first buffer is a view over the positions tensor itself.
        assert module.buffers[0].obj is kv.positions or isinstance(
            module.buffers[0].obj, np.ndarray
        )
        assert sum(len(b) for b in module.buffers) == kv.nbytes()
