"""Shared fixtures: one tokenizer and one tiny model per architecture,
built once per session so the suite stays fast.

With ``REPRO_SANITIZE=1`` in the environment the whole suite runs under
the runtime sanitizers (:mod:`repro.analysis.sanitize`): page
refcount/lease auditing, splice-plan validation, and shape-contract
enforcement — any violation fails the offending test at the faulting
call."""

from __future__ import annotations

import pytest

from repro.analysis.sanitize import install_if_enabled, uninstall_sanitizers
from repro.llm import build_model, tiny_config
from repro.tokenizer.bpe import train_bpe


@pytest.fixture(scope="session", autouse=True)
def _sanitizers():
    """Install the REPRO_SANITIZE sanitizers for the whole session."""
    auditor = install_if_enabled()
    yield auditor
    if auditor is not None:
        uninstall_sanitizers()

TRAIN_TEXTS = [
    "the quick brown fox jumps over the lazy dog " * 4,
    "miami beaches nightlife surf spots art deco " * 4,
    "paris museums cafes architecture louvre seine " * 4,
    "plan a trip lasting three days focus on food " * 4,
    "the capital of atlantis is coral city " * 4,
    "answer the question using the documents above " * 4,
    "def main(): return game.run() class Unit: pass " * 4,
]

ARCHITECTURES = ("llama", "falcon", "mpt", "gpt2")


@pytest.fixture(scope="session")
def tok():
    return train_bpe(TRAIN_TEXTS, vocab_size=420)


@pytest.fixture(scope="session")
def models(tok):
    return {
        arch: build_model(tiny_config(arch, vocab_size=tok.vocab_size), seed=11)
        for arch in ARCHITECTURES
    }


@pytest.fixture(scope="session")
def llama(models):
    return models["llama"]


@pytest.fixture(scope="session")
def mpt(models):
    return models["mpt"]


@pytest.fixture(params=ARCHITECTURES)
def any_model(request, models):
    """Parametrized across all four architecture families."""
    return models[request.param]
