"""Two-tier module store: capacity, eviction policies, statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.storage import (
    CacheKey,
    CacheTier,
    ModuleCacheStore,
    POLICIES,
    SOLO_VARIANT,
)
from repro.hw.allocator import CapacityError
from repro.llm.kv import ModuleKV

RNG = np.random.default_rng(13)


def make_kv(tokens: int) -> ModuleKV:
    shape = (2, tokens, 4)
    return ModuleKV(
        keys=[RNG.normal(size=shape).astype(np.float32)],
        values=[RNG.normal(size=shape).astype(np.float32)],
        positions=np.arange(tokens),
    )


def key(name: str, variant: str = SOLO_VARIANT) -> CacheKey:
    return CacheKey(schema="s", module=name, variant=variant)


KV_BYTES = make_kv(10).nbytes()  # all 10-token entries are the same size


class TestCacheTier:
    def test_put_get_round_trip(self):
        tier = CacheTier("gpu")
        tier.put(key("a"), make_kv(5))
        entry = tier.get(key("a"))
        assert entry is not None and len(entry.kv) == 5

    def test_miss_returns_none_and_counts(self):
        tier = CacheTier("gpu")
        assert tier.get(key("ghost")) is None
        assert tier.stats.misses == 1

    def test_hit_rate(self):
        tier = CacheTier("gpu")
        tier.put(key("a"), make_kv(3))
        tier.get(key("a"))
        tier.get(key("b"))
        assert tier.stats.hit_rate == 0.5

    def test_reinsert_replaces(self):
        tier = CacheTier("gpu")
        tier.put(key("a"), make_kv(3))
        tier.put(key("a"), make_kv(7))
        assert len(tier.get(key("a")).kv) == 7
        assert len(tier.keys()) == 1

    def test_capacity_enforced_by_eviction(self):
        tier = CacheTier("gpu", capacity_bytes=2 * KV_BYTES + 10)
        tier.put(key("a"), make_kv(10))
        tier.put(key("b"), make_kv(10))
        tier.put(key("c"), make_kv(10))  # must evict one
        assert tier.used_bytes <= tier.accountant.capacity_bytes
        assert tier.stats.evictions == 1

    def test_oversized_entry_rejected(self):
        tier = CacheTier("gpu", capacity_bytes=10)
        with pytest.raises(CapacityError):
            tier.put(key("big"), make_kv(100))

    def test_pinned_entries_survive(self):
        tier = CacheTier("gpu", capacity_bytes=2 * KV_BYTES + 10)
        tier.put(key("pin"), make_kv(10), pinned=True)
        tier.put(key("b"), make_kv(10))
        tier.put(key("c"), make_kv(10))
        assert key("pin") in tier

    def test_all_pinned_raises(self):
        tier = CacheTier("gpu", capacity_bytes=KV_BYTES + 10)
        tier.put(key("pin"), make_kv(10), pinned=True)
        with pytest.raises(CapacityError):
            tier.put(key("b"), make_kv(10))

    def test_variants_are_distinct_keys(self):
        tier = CacheTier("gpu")
        tier.put(key("a"), make_kv(3))
        tier.put(key("a", "scaffold0"), make_kv(4))
        assert len(tier.keys()) == 2


class TestEvictionPolicies:
    def fill(self, policy: str) -> CacheTier:
        tier = CacheTier("gpu", capacity_bytes=3 * KV_BYTES + 10, policy=policy)
        for name in ("a", "b", "c"):
            tier.put(key(name), make_kv(10))
        return tier

    def test_lru_evicts_least_recently_used(self):
        tier = self.fill("lru")
        tier.get(key("a"))
        tier.get(key("c"))
        tier.put(key("d"), make_kv(10))  # b is LRU
        assert key("b") not in tier and key("a") in tier

    def test_lfu_evicts_least_frequently_used(self):
        tier = self.fill("lfu")
        for _ in range(3):
            tier.get(key("a"))
        for _ in range(2):
            tier.get(key("b"))
        tier.get(key("c"))
        tier.put(key("d"), make_kv(10))
        assert key("c") not in tier

    def test_fifo_evicts_oldest_insertion(self):
        tier = self.fill("fifo")
        tier.get(key("a"))  # recency must not matter
        tier.put(key("d"), make_kv(10))
        assert key("a") not in tier

    def test_size_aware_evicts_largest(self):
        tier = CacheTier("gpu", capacity_bytes=make_kv(30).nbytes() + 2 * KV_BYTES + 10, policy="size")
        tier.put(key("small1"), make_kv(10))
        tier.put(key("huge"), make_kv(30))
        tier.put(key("small2"), make_kv(10))
        tier.put(key("newcomer"), make_kv(10))
        assert key("huge") not in tier

    def test_policy_registry(self):
        assert set(POLICIES) == {"lru", "lfu", "fifo", "size"}


class TestModuleCacheStore:
    def test_fetch_prefers_gpu(self):
        store = ModuleCacheStore()
        store.put(key("a"), make_kv(3), tier="cpu")
        store.put(key("a"), make_kv(3), tier="gpu")
        assert store.fetch(key("a")).tier == "gpu"

    def test_fetch_falls_back_to_cpu(self):
        store = ModuleCacheStore()
        store.put(key("a"), make_kv(3), tier="cpu")
        result = store.fetch(key("a"))
        assert result is not None and result.tier == "cpu"

    def test_gpu_overflow_spills_to_cpu(self):
        store = ModuleCacheStore(gpu_capacity_bytes=10)
        store.put(key("big"), make_kv(50), tier="gpu")
        assert key("big") in store.cpu

    def test_miss_returns_none(self):
        assert ModuleCacheStore().fetch(key("ghost")) is None

    def test_total_bytes(self):
        store = ModuleCacheStore()
        store.put(key("a"), make_kv(10), tier="gpu")
        store.put(key("b"), make_kv(10), tier="cpu")
        assert store.total_bytes() == 2 * KV_BYTES

    def test_unknown_tier(self):
        with pytest.raises(KeyError):
            ModuleCacheStore().tier("tpu")


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from("abcdef"), st.integers(min_value=1, max_value=20)),
        min_size=1,
        max_size=25,
    ),
    st.sampled_from(["lru", "lfu", "fifo", "size"]),
)
def test_capacity_never_exceeded_property(operations, policy):
    """Whatever the access pattern and policy, used bytes stay in budget."""
    tier = CacheTier("gpu", capacity_bytes=5 * KV_BYTES, policy=policy)
    for name, tokens in operations:
        try:
            tier.put(key(name), make_kv(tokens))
        except CapacityError:
            pass  # single oversized entry: allowed to refuse
        assert tier.used_bytes <= tier.accountant.capacity_bytes


class TestDemotionAndPrefetch:
    def test_gpu_eviction_demotes_to_cpu(self):
        store = ModuleCacheStore(gpu_capacity_bytes=2 * KV_BYTES + 10)
        store.put(key("a"), make_kv(10))
        store.put(key("b"), make_kv(10))
        store.put(key("c"), make_kv(10))  # evicts one into the CPU tier
        assert store.gpu.stats.evictions == 1
        assert len(store.cpu.keys()) == 1
        evicted = store.cpu.keys()[0]
        assert store.fetch(evicted).tier == "cpu"

    def test_demotion_can_be_disabled(self):
        store = ModuleCacheStore(
            gpu_capacity_bytes=2 * KV_BYTES + 10, demote_on_evict=False
        )
        for name in ("a", "b", "c"):
            store.put(key(name), make_kv(10))
        assert len(store.cpu.keys()) == 0

    def test_prefetch_promotes_from_cpu(self):
        store = ModuleCacheStore()
        store.put(key("cold"), make_kv(5), tier="cpu")
        assert store.fetch(key("cold")).tier == "cpu"
        assert store.prefetch([key("cold")]) == 1
        assert store.fetch(key("cold")).tier == "gpu"

    def test_prefetch_skips_resident_and_missing(self):
        store = ModuleCacheStore()
        store.put(key("hot"), make_kv(5), tier="gpu")
        assert store.prefetch([key("hot"), key("ghost")]) == 0

    def test_prefetch_respects_capacity(self):
        store = ModuleCacheStore(gpu_capacity_bytes=KV_BYTES + 10)
        store.gpu.put(key("pinned"), make_kv(10), pinned=True)
        store.put(key("cold"), make_kv(10), tier="cpu")
        assert store.prefetch([key("cold")]) == 0


class TestConcurrency:
    """The store must stay consistent under interleaved async/thread access."""

    def test_threaded_hammer_keeps_accounting_consistent(self):
        import threading

        # Capacity for ~3 entries so eviction + demotion churn constantly.
        store = ModuleCacheStore(gpu_capacity_bytes=3 * KV_BYTES + 10)
        errors: list[Exception] = []

        def work(worker: int) -> None:
            try:
                for i in range(200):
                    k = CacheKey(schema="s", module=f"m{worker}-{i % 8}",
                                 variant=SOLO_VARIANT)
                    store.put(k, make_kv(10))
                    store.fetch(k)
                    store.prefetch([k])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for tier in (store.gpu, store.cpu):
            expected = sum(tier.get(k).nbytes for k in tier.keys())
            assert tier.used_bytes == expected
        assert store.gpu.used_bytes <= 3 * KV_BYTES + 10

    def test_evict_listeners_fire_outside_reentrancy_hazard(self):
        store = ModuleCacheStore(gpu_capacity_bytes=2 * KV_BYTES + 10)
        seen: list[str] = []
        # The listener re-enters the store while the evicting tier holds the
        # lock — the shared RLock must make this safe, not deadlock.
        store.gpu.add_evict_listener(
            lambda victim, reason: seen.append(victim.key.module) or store.cpu.keys()
        )
        for name in ("a", "b", "c"):
            store.put(key(name), make_kv(10))
        assert seen == ["a"]
        assert any(k.module == "a" for k in store.cpu.keys())  # still demoted

    def test_asyncio_tasks_share_the_store(self):
        import asyncio

        store = ModuleCacheStore(gpu_capacity_bytes=4 * KV_BYTES + 10)

        async def main():
            loop = asyncio.get_running_loop()

            def work(worker: int) -> None:
                for i in range(100):
                    k = CacheKey(schema="s", module=f"t{worker}-{i % 4}",
                                 variant=SOLO_VARIANT)
                    store.put(k, make_kv(10))
                    store.fetch(k)

            await asyncio.gather(
                *(loop.run_in_executor(None, work, w) for w in range(4))
            )

        asyncio.run(main())
        total = store.gpu.stats.insertions + store.cpu.stats.insertions
        assert total >= 400
        assert store.gpu.used_bytes <= 4 * KV_BYTES + 10


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestTTLExpiry:
    def test_idle_entry_expires_on_get(self):
        clock = FakeClock()
        tier = CacheTier("gpu", ttl_s=10.0, clock=clock)
        tier.put(key("a"), make_kv(10))
        clock.now = 11.0
        assert tier.get(key("a")) is None
        assert tier.stats.ttl_evictions == 1
        assert key("a") not in tier

    def test_hit_refreshes_the_ttl(self):
        clock = FakeClock()
        tier = CacheTier("gpu", ttl_s=10.0, clock=clock)
        tier.put(key("a"), make_kv(10))
        clock.now = 8.0
        assert tier.get(key("a")) is not None  # refresh at t=8
        clock.now = 17.0  # 9s idle since the hit, 17s since insert
        assert tier.get(key("a")) is not None

    def test_sweep_expires_in_bulk_without_demotion(self):
        clock = FakeClock()
        store = ModuleCacheStore(gpu_ttl_s=10.0, clock=clock)
        for name in ("a", "b"):
            store.put(key(name), make_kv(10))
        clock.now = 20.0
        assert store.sweep_expired() == 2
        # TTL victims are stale, not hot-capacity casualties: they are
        # dropped outright, never demoted to the CPU tier.
        assert not store.gpu.keys() and not store.cpu.keys()

    def test_pinned_entries_never_expire(self):
        clock = FakeClock()
        tier = CacheTier("gpu", ttl_s=10.0, clock=clock)
        tier.put(key("a"), make_kv(10), pinned=True)
        clock.now = 100.0
        assert tier.sweep_expired() == 0
        assert tier.get(key("a")) is not None

    def test_put_sweeps_before_capacity_eviction(self):
        clock = FakeClock()
        listener_reasons: list[tuple[str, str]] = []
        tier = CacheTier(
            "gpu", capacity_bytes=2 * KV_BYTES + 10, ttl_s=10.0, clock=clock
        )
        tier.add_evict_listener(
            lambda entry, reason: listener_reasons.append(
                (entry.key.module, reason)
            )
        )
        tier.put(key("a"), make_kv(10))
        clock.now = 11.0
        tier.put(key("b"), make_kv(10))
        tier.put(key("c"), make_kv(10))
        # "a" left via TTL during the puts, so capacity never forced an
        # eviction — and the listener saw the reason label say so.
        assert listener_reasons == [("a", "ttl")]
        assert tier.stats.ttl_evictions == 1
        assert tier.stats.evictions == 1


class TestPerTierPolicyAndReasons:
    def test_tiers_can_run_different_policies(self):
        store = ModuleCacheStore(
            gpu_capacity_bytes=2 * KV_BYTES + 10,
            cpu_capacity_bytes=2 * KV_BYTES + 10,
            gpu_policy="lru",
            cpu_policy="lfu",
        )
        assert store.gpu.policy is POLICIES["lru"]
        assert store.cpu.policy is POLICIES["lfu"]

    def test_capacity_eviction_reports_reason_capacity(self):
        reasons: list[str] = []
        store = ModuleCacheStore(gpu_capacity_bytes=2 * KV_BYTES + 10)
        store.gpu.add_evict_listener(
            lambda entry, reason: reasons.append(reason)
        )
        for name in ("a", "b", "c"):
            store.put(key(name), make_kv(10))
        assert reasons == ["capacity"]
        # Capacity victims demote: still servable from the CPU tier.
        assert len(store.cpu.keys()) == 1

    def test_store_level_ttl_is_per_tier(self):
        clock = FakeClock()
        store = ModuleCacheStore(gpu_ttl_s=5.0, cpu_ttl_s=50.0, clock=clock)
        store.put(key("hot"), make_kv(10), tier="gpu")
        store.put(key("warm"), make_kv(10), tier="cpu")
        clock.now = 10.0
        store.sweep_expired()
        assert not store.gpu.keys()
        assert [k.module for k in store.cpu.keys()] == ["warm"]
