"""Metrics registry: instrument math, export formats, thread safety."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.server.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("x").inc(-1)

    def test_counter_get_or_create_is_same_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", tier="gpu").inc()
        reg.counter("hits", tier="gpu").inc()
        reg.counter("hits", tier="cpu").inc()
        assert reg.counter("hits", tier="gpu").value == 2
        assert reg.counter("hits", tier="cpu").value == 1

    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.dec(3)
        g.inc()
        assert g.value == 8

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_histogram_count_sum_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("ttft")
        for v in (0.01, 0.02, 0.03):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.06)
        assert h.mean == pytest.approx(0.02)

    def test_histogram_percentiles_match_numpy(self):
        reg = MetricsRegistry()
        h = reg.histogram("ttft")
        values = np.linspace(0.001, 1.0, 101)
        for v in values:
            h.observe(float(v))
        for q in (50, 90, 95, 99):
            assert h.percentile(q) == pytest.approx(float(np.percentile(values, q)))

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        buckets = dict(h.cumulative_buckets())
        assert buckets[0.1] == 1
        assert buckets[1.0] == 3
        assert buckets[float("inf")] == 4

    def test_empty_histogram_is_quiet(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.percentile(95) == 0.0
        assert h.mean == 0.0


class TestExport:
    def test_prometheus_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("requests_total", "served requests", outcome="done").inc(3)
        reg.gauge("queue_depth", "queued").set(2)
        text = reg.to_prometheus()
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{outcome="done"} 3' in text
        assert "queue_depth 2" in text

    def test_prometheus_histogram_has_buckets_and_quantiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("ttft_seconds", "ttft", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.to_prometheus()
        assert 'ttft_seconds_bucket{le="0.1"} 1' in text
        assert 'ttft_seconds_bucket{le="+Inf"} 2' in text
        assert "ttft_seconds_sum" in text
        assert "ttft_seconds_count 2" in text
        assert 'ttft_seconds_quantile{quantile="0.95"}' in text

    def test_prometheus_merges_labels_on_histograms(self):
        reg = MetricsRegistry()
        reg.histogram("lat", stage="prefill").observe(0.2)
        text = reg.to_prometheus()
        assert 'lat_bucket{stage="prefill",le="+Inf"} 1' in text
        assert 'lat_quantile{stage="prefill",quantile="0.5"}' in text

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(7)
        reg.histogram("c").observe(0.25)
        snap = reg.snapshot()
        assert snap["counters"]["a"] == 1
        assert snap["gauges"]["b"] == 7
        hist = snap["histograms"]["c"]
        assert hist["count"] == 1
        assert hist["p95"] == pytest.approx(0.25)

    def test_to_json_round_trips(self):
        import json

        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert json.loads(reg.to_json())["counters"]["a"] == 1

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestConcurrency:
    def test_parallel_observers_lose_nothing(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()
                reg.histogram("h").observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 8000
        assert reg.histogram("h").count == 8000
