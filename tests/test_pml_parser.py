"""PML parser: schema and prompt grammars."""

from __future__ import annotations

import pytest

from repro.pml.ast import (
    ImportNode,
    ModuleNode,
    ParamNode,
    RoleNode,
    TextNode,
    UnionNode,
)
from repro.pml.errors import ParseError
from repro.pml.parser import parse_prompt, parse_schema


class TestSchemaGrammar:
    def test_minimal(self):
        schema = parse_schema('<schema name="s"></schema>')
        assert schema.name == "s" and schema.children == []

    def test_requires_name(self):
        with pytest.raises(ParseError):
            parse_schema("<schema></schema>")

    def test_requires_schema_root(self):
        with pytest.raises(ParseError):
            parse_schema('<module name="m">x</module>')

    def test_text_and_module_ordering(self):
        schema = parse_schema('<schema name="s">intro<module name="m">body</module>outro</schema>')
        kinds = [type(c).__name__ for c in schema.children]
        assert kinds == ["TextNode", "ModuleNode", "TextNode"]
        assert schema.children[0].text == "intro"

    def test_whitespace_between_tags_dropped(self):
        schema = parse_schema('<schema name="s">\n  <module name="m">x</module>\n</schema>')
        assert len(schema.children) == 1

    def test_nested_modules(self):
        schema = parse_schema(
            '<schema name="s"><module name="outer">a<module name="inner">b</module>c</module></schema>'
        )
        outer = schema.children[0]
        assert isinstance(outer.children[1], ModuleNode)
        assert outer.children[1].name == "inner"

    def test_union_members(self):
        schema = parse_schema(
            '<schema name="s"><union><module name="a">1</module><module name="b">2</module></union></schema>'
        )
        union = schema.children[0]
        assert isinstance(union, UnionNode)
        assert [m.name for m in union.members] == ["a", "b"]

    def test_union_rejects_bare_text(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><union>loose<module name="a">1</module></union></schema>')

    def test_union_rejects_non_module(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><union><param name="p" len="1"/></union></schema>')

    def test_empty_union_rejected(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><union></union></schema>')

    def test_param_attributes(self):
        schema = parse_schema(
            '<schema name="s"><module name="m"><param name="p" len="4" default="hi"/></module></schema>'
        )
        param = schema.children[0].children[0]
        assert isinstance(param, ParamNode)
        assert (param.name, param.length, param.default) == ("p", 4, "hi")

    def test_param_len_validation(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><module name="m"><param name="p" len="zero"/></module></schema>')
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><module name="m"><param name="p" len="0"/></module></schema>')

    def test_param_must_self_close(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><module name="m"><param name="p" len="1">x</param></module></schema>')

    def test_role_tags(self):
        schema = parse_schema(
            '<schema name="s"><system>be kind</system><user>hi<module name="doc">d</module></user></schema>'
        )
        system, user = schema.children
        assert isinstance(system, RoleNode) and system.role == "system"
        assert isinstance(user.children[1], ModuleNode)

    def test_scaffold_declaration(self):
        schema = parse_schema(
            '<schema name="s"><scaffold modules="a,b"/><module name="a">1</module><module name="b">2</module></schema>'
        )
        assert schema.scaffolds == [("a", "b")]

    def test_scaffold_requires_two_names(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><scaffold modules="a"/></schema>')

    def test_module_cannot_shadow_reserved(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><module name="union">x</module></schema>')

    def test_mismatched_close_tag(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><module name="m">x</union></schema>')

    def test_content_after_root_rejected(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"></schema>trailing')

    def test_unknown_tag_in_schema(self):
        with pytest.raises(ParseError):
            parse_schema('<schema name="s"><prompt schema="x"/></schema>')


class TestPromptGrammar:
    def test_minimal(self):
        prompt = parse_prompt('<prompt schema="s"></prompt>')
        assert prompt.schema == "s"

    def test_requires_schema_attr(self):
        with pytest.raises(ParseError):
            parse_prompt("<prompt>x</prompt>")

    def test_imports_and_text(self):
        prompt = parse_prompt('<prompt schema="s"><miami/>Highlight the surf spots</prompt>')
        imp, text = prompt.children
        assert isinstance(imp, ImportNode) and imp.name == "miami"
        assert isinstance(text, TextNode)

    def test_import_with_args(self):
        prompt = parse_prompt('<prompt schema="s"><trip-plan duration="3 days"/></prompt>')
        assert prompt.children[0].args == {"duration": "3 days"}

    def test_nested_imports(self):
        prompt = parse_prompt('<prompt schema="s"><travel-plan><paris/></travel-plan></prompt>')
        outer = prompt.children[0]
        assert outer.children[0].name == "paris"

    def test_reserved_tags_rejected_in_prompts(self):
        with pytest.raises(ParseError):
            parse_prompt('<prompt schema="s"><module name="m">x</module></prompt>')

    def test_prompt_root_required(self):
        with pytest.raises(ParseError):
            parse_prompt('<schema name="s"></schema>')
