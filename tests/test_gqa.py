"""Grouped-query / multi-query attention: the paper's §6 memory lever.

The engine supports ``n_kv_heads < n_heads``; these tests pin down that
every correctness property (KV-cache equivalence, prefix equivalence, the
Table 2 memory accounting) holds under GQA and MQA too.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.llm import build_model, generate, generate_no_cache, tiny_config
from repro.pml import PLAIN_TEMPLATE

PROMPT = [5, 9, 12, 300, 41, 17, 23]


def gqa_config(n_kv_heads: int):
    return dataclasses.replace(tiny_config("llama", vocab_size=420), n_kv_heads=n_kv_heads)


@pytest.fixture(params=[1, 2])  # MQA and 2-group GQA (4 query heads)
def gqa_model(request):
    return build_model(gqa_config(request.param), seed=4)


class TestGQACorrectness:
    def test_kv_cache_matches_full_recompute(self, gqa_model):
        with_cache = generate(gqa_model, PROMPT, max_new_tokens=6)
        without = generate_no_cache(gqa_model, PROMPT, max_new_tokens=6)
        assert with_cache.output_ids == without.output_ids

    def test_chunked_prefill(self, gqa_model):
        ids = np.array(PROMPT)
        single = gqa_model.forward(ids, np.arange(len(ids)), gqa_model.new_cache())
        cache = gqa_model.new_cache()
        gqa_model.forward(ids[:4], np.arange(4), cache)
        chunked = gqa_model.forward(ids[4:], np.arange(4, len(ids)), cache)
        np.testing.assert_allclose(single[-1], chunked[-1], atol=1e-4)

    def test_prompt_cache_prefix_equivalence(self, gqa_model, tok):
        pc = PromptCache(gqa_model, tok, template=PLAIN_TEMPLATE)
        pc.register_schema(
            '<schema name="g"><module name="d">the quick brown fox jumps '
            "over the lazy dog</module></schema>"
        )
        prompt = '<prompt schema="g"><d/> continue the story</prompt>'
        cached = pc.serve(prompt, max_new_tokens=6)
        baseline = pc.baseline(prompt, max_new_tokens=6)
        assert cached.output_ids == baseline.output_ids


class TestGQAMemory:
    def test_kv_bytes_shrink_with_fewer_kv_heads(self):
        mha = tiny_config("llama")
        mqa = dataclasses.replace(mha, n_kv_heads=1)
        assert mqa.kv_bytes_per_token() == mha.kv_bytes_per_token() // mha.n_heads

    def test_cache_tensors_match_config(self, gqa_model, tok):
        pc = PromptCache(gqa_model, tok, template=PLAIN_TEMPLATE)
        pc.register_schema('<schema name="g"><module name="d">the quick fox</module></schema>')
        from repro.cache.storage import CacheKey

        kv = pc.store.fetch(CacheKey("g", "d")).entry.kv
        assert kv.keys[0].shape[0] == gqa_model.config.n_kv_heads

    def test_grouped_kv_cuts_module_storage(self, tok):
        sizes = {}
        for kv_heads in (4, 1):
            model = build_model(gqa_config(kv_heads), seed=4)
            pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
            pc.register_schema(
                '<schema name="g"><module name="d">the quick brown fox jumps</module></schema>'
            )
            sizes[kv_heads] = pc.store.total_bytes()
        assert sizes[1] < 0.4 * sizes[4]
