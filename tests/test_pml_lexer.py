"""PML lexer: the lenient XML dialect."""

from __future__ import annotations

import pytest

from repro.pml.errors import ParseError
from repro.pml.lexer import Lexer, decode_entities


def lex(source: str):
    return Lexer(source).tokens()


class TestTags:
    def test_open_close(self):
        tokens = lex("<module name='a'>hi</module>")
        assert [t.kind for t in tokens] == ["open", "text", "close"]
        assert tokens[0].name == "module"
        assert tokens[0].attrs == {"name": "a"}

    def test_self_closing(self):
        (token,) = lex('<miami/>')
        assert token.kind == "open" and token.self_closing

    def test_multiple_attributes(self):
        (token,) = lex('<param name="duration" len="3" default="one day"/>')
        assert token.attrs == {"name": "duration", "len": "3", "default": "one day"}

    def test_unquoted_attribute(self):
        (token,) = lex("<param len=5/>")
        assert token.attrs == {"len": "5"}

    def test_valueless_attribute(self):
        (token,) = lex("<module pinned/>")
        assert token.attrs == {"pinned": ""}

    def test_single_quotes_and_entities_in_values(self):
        (token,) = lex("<m note='a &lt; b'/>")
        assert token.attrs["note"] == "a < b"

    def test_hyphen_and_dot_in_names(self):
        (token,) = lex("<trip-plan.v2/>")
        assert token.name == "trip-plan.v2"

    def test_unterminated_tag_raises_with_position(self):
        with pytest.raises(ParseError) as exc:
            lex("<module name='a'")
        assert exc.value.line == 1


class TestTextLeniency:
    def test_bare_angle_bracket_is_text(self):
        """Code-like module content must survive (Fig 6 schemas)."""
        tokens = lex("<m>if x < 3: y = a <b> done</m>")
        text = "".join(t.text for t in tokens if t.kind == "text")
        assert "x < 3" in text
        # "<b>" IS a valid tag start, so it lexes as a tag.
        assert any(t.kind == "open" and t.name == "b" for t in tokens)

    def test_angle_before_space_or_digit_is_text(self):
        tokens = lex("a < b and x <3")
        assert len(tokens) == 1 and tokens[0].kind == "text"
        assert tokens[0].text == "a < b and x <3"

    def test_entities_decoded_in_text(self):
        (token,) = lex("x &lt; y &amp;&amp; z &gt; w")
        assert token.text == "x < y && z > w"

    def test_bare_ampersand_is_literal(self):
        (token,) = lex("salt & pepper")
        assert token.text == "salt & pepper"

    def test_cdata_passes_verbatim(self):
        tokens = lex("<m><![CDATA[<module> is not parsed & neither is this]]></m>")
        text = [t for t in tokens if t.kind == "text"][0].text
        assert text == "<module> is not parsed & neither is this"

    def test_comments_skipped(self):
        tokens = lex("a<!-- hidden <tags> -->b")
        assert [t.text for t in tokens if t.kind == "text"] == ["a", "b"]

    def test_unterminated_comment(self):
        with pytest.raises(ParseError):
            lex("<!-- forever")

    def test_line_column_tracking(self):
        tokens = lex("line one\n  <module name='x'/>")
        tag = [t for t in tokens if t.kind == "open"][0]
        assert tag.line == 2 and tag.column == 3


class TestEntities:
    def test_all_five(self):
        assert decode_entities("&lt;&gt;&amp;&quot;&apos;") == "<>&\"'"

    def test_unknown_entity_left_alone(self):
        assert decode_entities("&nbsp;") == "&nbsp;"
