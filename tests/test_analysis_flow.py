"""Interprocedural flow analyses: lease lifecycles and lock order."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import SourceModule
from repro.analysis.flow import LeaseLifecycleRule, LockOrderRule
from repro.analysis.rules import NoWriteToMappedRule


def module_of(text: str, name: str = "mod.py") -> SourceModule:
    return SourceModule(Path(name), name, text)


def lease_findings(*sources: str):
    modules = [module_of(src, f"m{i}.py") for i, src in enumerate(sources)]
    return LeaseLifecycleRule().check_project(modules)


def lock_findings(*sources: str):
    modules = [module_of(src, f"m{i}.py") for i, src in enumerate(sources)]
    return LockOrderRule().check_project(modules)


# A pool class that mints page leases by resolution (PagePool.allocate
# is a seeded acquire) and releases them by argument.
POOL = """\
class PagePool:
    def allocate(self):
        return object()

    def release(self, page):
        pass
"""


class TestLeaseLifecycle:
    def test_leak_on_fall_through_is_an_error(self):
        src = """\
def serve(pool, model):
    cache = pool.fork()
    model.prefill()
"""
        messages = [f.message for f in lease_findings(src)]
        assert any("never released" in m for m in messages)

    def test_leak_on_exception_is_a_warning_at_the_acquire(self):
        src = """\
def serve(pool, model):
    cache = pool.fork()
    model.prefill()
    cache.free()
"""
        findings = lease_findings(src)
        assert len(findings) == 1
        assert findings[0].severity == "warning"
        assert "leaks if" in findings[0].message
        assert findings[0].line == 2  # anchored at the acquire, not the call

    def test_release_in_finally_is_clean(self):
        src = """\
def serve(pool, model):
    cache = pool.fork()
    try:
        model.prefill()
    finally:
        cache.free()
"""
        assert lease_findings(src) == []

    def test_release_in_catch_all_handler_is_clean(self):
        src = """\
def serve(pool, model):
    cache = pool.fork()
    try:
        model.prefill()
    except Exception:
        cache.free()
        raise
    cache.free()
"""
        assert lease_findings(src) == []

    def test_double_release(self):
        src = POOL + """\
def use(pool):
    page = pool.allocate()
    pool.release(page)
    pool.release(page)
"""
        messages = [f.message for f in lease_findings(src)]
        assert any("double release of 'page'" in m for m in messages)

    def test_use_after_release(self):
        src = POOL + """\
def use(pool):
    page = pool.allocate()
    pool.release(page)
    page.write()
"""
        messages = [f.message for f in lease_findings(src)]
        assert any("use of 'page'" in m for m in messages)

    def test_lease_returned_by_helper_leaks_in_the_caller(self):
        src = POOL + """\
def make(pool):
    return pool.allocate()

def outer(pool):
    page = make(pool)
"""
        findings = lease_findings(src)
        assert any(
            "never released" in f.message and "outer" in f.message
            for f in findings
        )
        # The helper itself is clean: returning the lease transfers it.
        assert not any("make" in f.message for f in findings)

    def test_release_through_helper_is_clean(self):
        src = POOL + """\
def free_it(pool, page):
    pool.release(page)

def outer(pool):
    page = pool.allocate()
    free_it(pool, page)
"""
        assert lease_findings(src) == []

    def test_escape_into_container_transfers_ownership(self):
        src = """\
def admit(pool, inflight):
    cache = pool.fork()
    inflight.append(cache)
"""
        # .append() is unresolvable -> the lease escapes conservatively.
        assert lease_findings(src) == []

    def test_none_guarded_cleanup_is_clean(self):
        # The release-alias idiom used by the engine's open_stream().
        src = """\
def open_it(self, paged):
    release = None
    if paged:
        cache = self.pool.fork()
        release = cache
    else:
        cache = self.fresh()
    try:
        return self.wrap(cache)
    except BaseException:
        if release is not None:
            self.pool.release(release)
        raise
"""
        assert lease_findings(src) == []

    def test_boolean_guarded_cleanup_still_warns(self):
        # Same shape, but guarded by a boolean the interpreter cannot
        # correlate with the acquire branch — stays a warning.
        src = """\
def open_it(self, paged):
    owns = False
    if paged:
        cache = self.pool.fork()
        owns = True
    else:
        cache = self.fresh()
    try:
        return self.wrap(cache)
    except BaseException:
        if owns:
            cache.free()
        raise
"""
        findings = lease_findings(src)
        assert any("raise" in f.message for f in findings)


LOCKED_PAIR = """\
from repro.analysis.locks import ordered_lock

class Store:
    def __init__(self):
        self._a = ordered_lock("a")
        self._b = ordered_lock("b")

    def forward(self):
        with self._a:
            with self._b:
                pass
"""


class TestLockOrder:
    def test_two_lock_cycle(self):
        src = LOCKED_PAIR + """\

    def backward(self):
        with self._b:
            with self._a:
                pass
"""
        findings = lock_findings(src)
        assert any("lock-order cycle" in f.message for f in findings)

    def test_consistent_nesting_is_clean(self):
        src = LOCKED_PAIR + """\

    def also_forward(self):
        with self._a:
            with self._b:
                pass
"""
        assert lock_findings(src) == []

    def test_three_lock_cycle_across_functions(self):
        src = """\
from repro.analysis.locks import ordered_lock

class S:
    def __init__(self):
        self._a = ordered_lock("a")
        self._b = ordered_lock("b")
        self._c = ordered_lock("c")

    def ab(self):
        with self._a:
            with self._b:
                pass

    def bc(self):
        with self._b:
            with self._c:
                pass

    def ca(self):
        with self._c:
            with self._a:
                pass
"""
        findings = lock_findings(src)
        assert any("lock-order cycle" in f.message for f in findings)

    def test_observed_edge_contradicting_declared_order(self):
        src = """\
from repro.analysis.locks import ordered_lock

class S:
    def __init__(self):
        self._w = ordered_lock("w")
        self._x = ordered_lock("x", after=("w",))

    def wrong(self):
        with self._x:
            with self._w:
                pass
"""
        findings = lock_findings(src)
        assert any("contradicts the declared lock order" in f.message for f in findings)

    def test_edge_observed_through_a_callee(self):
        src = """\
from repro.analysis.locks import ordered_lock

class S:
    def __init__(self):
        self._w = ordered_lock("w")
        self._x = ordered_lock("x", after=("w",))

    def take_w(self):
        with self._w:
            pass

    def wrong(self):
        with self._x:
            self.take_w()
"""
        findings = lock_findings(src)
        assert any("contradicts the declared lock order" in f.message for f in findings)

    def test_reentrant_reacquire_is_clean(self):
        src = """\
from repro.analysis.locks import ordered_lock

class S:
    def __init__(self):
        self._r = ordered_lock("r")

    def outer(self):
        with self._r:
            with self._r:
                pass
"""
        assert lock_findings(src) == []

    def test_non_reentrant_reacquire_self_deadlocks(self):
        src = """\
from repro.analysis.locks import ordered_lock

class S:
    def __init__(self):
        self._m = ordered_lock("m", reentrant=False)

    def outer(self):
        with self._m:
            with self._m:
                pass
"""
        findings = lock_findings(src)
        assert any("non-reentrant lock 'm'" in f.message for f in findings)

    def test_assert_unheld_violated_through_a_call(self):
        src = """\
from repro.analysis.locks import assert_unheld, ordered_lock

class S:
    def __init__(self):
        self._s = ordered_lock("s")

    def fetch(self):
        assert_unheld("s")

    def bad(self):
        with self._s:
            self.fetch()
"""
        findings = lock_findings(src)
        assert any("unheld" in f.message for f in findings)

    def test_holds_lock_annotation_seeds_the_held_set(self):
        src = """\
from repro.analysis.locks import ordered_lock

class S:
    def __init__(self):
        self._w = ordered_lock("w")
        self._x = ordered_lock("x", after=("w",))

    def callback(self):  # holds-lock: x
        with self._w:
            pass
"""
        findings = lock_findings(src)
        assert any("contradicts the declared lock order" in f.message for f in findings)

    def test_declared_cycle_is_a_config_error(self):
        src = """\
from repro.analysis.locks import ordered_lock

A = ordered_lock("a", after=("b",))
B = ordered_lock("b", after=("a",))
"""
        findings = lock_findings(src)
        assert any("declared lock order is cyclic" in f.message for f in findings)


class TestMappedWriteThroughHelpers:
    def test_arena_passed_to_writing_helper_is_flagged(self):
        src = """\
def fill_block(dst, x):
    dst[0] = x

def attach(kv, x):
    fill_block(kv.key_arena, x)
"""
        module = module_of(src)
        findings = NoWriteToMappedRule().check_project([module])
        assert any("fill_block" in f.message for f in findings)

    def test_helper_that_only_reads_is_clean(self):
        src = """\
def peek(srcv):
    return srcv[0]

def attach(kv):
    return peek(kv.key_arena)
"""
        module = module_of(src)
        assert NoWriteToMappedRule().check_project([module]) == []
