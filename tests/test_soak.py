"""System soak: randomized multi-schema serving under memory pressure.

One PromptCache with a tightly capped GPU tier, an int8 codec, and several
schemas; a random request stream forces continuous eviction, demotion,
re-fetch and re-encode. Invariants checked continuously:

- the GPU tier never exceeds capacity;
- every response decodes the requested number of tokens;
- determinism: the same prompt yields the same output at any point in the
  stream (eviction/demotion/compression must not corrupt states beyond
  the codec's declared fidelity — int8 is not bit-exact, so determinism is
  checked against an int8 reference, not the identity codec).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.engine import PromptCache
from repro.cache.storage import ModuleCacheStore
from repro.pml import PLAIN_TEMPLATE

N_SCHEMAS = 4
N_REQUESTS = 40

TEXTS = [
    "the quick brown fox jumps over the lazy dog near the harbor",
    "paris has museum basalt and cafes along the seine riverbank",
    "atlantis has capital coral according to the oldest records",
    "the misty valley borders the ancient gate near zephyria",
]


def build_pc(llama, tok, capacity_modules: int = 3):
    # Size the tier to ~3 module entries (int8-compressed).
    probe = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec="int8")
    probe.register_schema(
        f'<schema name="probe"><module name="m">{TEXTS[0]}</module></schema>'
    )
    per_module = probe.store.gpu.used_bytes
    store = ModuleCacheStore(
        gpu_capacity_bytes=capacity_modules * per_module + 512, policy="lru"
    )
    pc = PromptCache(llama, tok, store=store, template=PLAIN_TEMPLATE, kv_codec="int8")
    for i in range(N_SCHEMAS):
        body = "".join(
            f'<module name="doc{j}">{TEXTS[(i + j) % len(TEXTS)]} variant {i}{j}</module>'
            for j in range(2)
        )
        pc.register_schema(f'<schema name="s{i}">{body}</schema>', eager=False)
    return pc


def test_soak_random_stream(llama, tok):
    pc = build_pc(llama, tok)
    rng = np.random.default_rng(7)
    reference: dict[str, list[int]] = {}
    capacity = pc.store.gpu.accountant.capacity_bytes
    for step in range(N_REQUESTS):
        schema = f"s{int(rng.integers(0, N_SCHEMAS))}"
        doc = f"doc{int(rng.integers(0, 2))}"
        prompt = f'<prompt schema="{schema}"><{doc}/> question {schema}-{doc}</prompt>'
        result = pc.serve(prompt, max_new_tokens=3)
        assert len(result.output_ids) == 3
        assert pc.store.gpu.used_bytes <= capacity, step
        # Determinism across evictions/demotions/re-encodes.
        if prompt in reference:
            assert result.output_ids == reference[prompt], (step, prompt)
        else:
            reference[prompt] = result.output_ids
    stats = pc.store.gpu.stats
    # The stream must actually have exercised the memory pressure paths.
    assert stats.evictions > 0
    assert stats.misses > 0 and stats.hits > 0
    assert len(pc.store.cpu.keys()) > 0  # demotions landed in host memory


def test_soak_with_updates_and_invalidations(llama, tok):
    pc = build_pc(llama, tok, capacity_modules=4)
    rng = np.random.default_rng(11)
    for step in range(12):
        schema = f"s{int(rng.integers(0, N_SCHEMAS))}"
        pc.serve(f'<prompt schema="{schema}"><doc0/> q{step}</prompt>', max_new_tokens=2)
        if step % 4 == 1:
            pc.invalidate(schema, "doc0")
        if step % 5 == 2:
            pc.update_module_text(schema, "doc1", f"fresh text number {step} here")
    # Still serving correctly after the churn.
    result = pc.serve('<prompt schema="s0"><doc0/><doc1/> final</prompt>', max_new_tokens=3)
    assert len(result.output_ids) == 3
