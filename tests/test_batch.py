"""Shared-module batch memory accounting (paper §3.4)."""

from __future__ import annotations

import pytest

from repro.cache.batch import BatchRequest, batch_footprint, max_batch_size
from repro.llm.config import paper_config

LLAMA7B = paper_config("llama2-7b")


class TestBatchFootprint:
    def test_paper_example_fifty_percent(self):
        """§5.4: 100 requests of 2K tokens sharing a 1K module -> ~50%."""
        requests = [BatchRequest(("shared",), private_tokens=1000)] * 100
        fp = batch_footprint(LLAMA7B, requests, {"shared": 1000})
        assert fp.savings_fraction == pytest.approx(0.5, abs=0.01)

    def test_no_sharing_no_savings(self):
        requests = [
            BatchRequest((f"m{i}",), private_tokens=100) for i in range(4)
        ]
        fp = batch_footprint(LLAMA7B, requests, {f"m{i}": 50 for i in range(4)})
        assert fp.savings_fraction == 0.0

    def test_partial_overlap(self):
        requests = [
            BatchRequest(("sys", "doc_a"), private_tokens=100),
            BatchRequest(("sys", "doc_b"), private_tokens=100),
        ]
        fp = batch_footprint(
            LLAMA7B, requests, {"sys": 200, "doc_a": 500, "doc_b": 500}
        )
        # sys counted once instead of twice.
        assert 0 < fp.savings_fraction < 0.5

    def test_bytes_scale_with_model(self):
        requests = [BatchRequest(("m",), private_tokens=10)]
        small = batch_footprint(paper_config("falcon-1b"), requests, {"m": 100})
        large = batch_footprint(paper_config("llama2-70b"), requests, {"m": 100})
        assert large.duplicated_bytes > 10 * small.duplicated_bytes


class TestMaxBatchSize:
    def test_sharing_admits_larger_batches(self):
        budget = 40 * 10**9  # 40 GB HBM
        shared = max_batch_size(LLAMA7B, budget, 1000, 1000, shared=True)
        duplicated = max_batch_size(LLAMA7B, budget, 1000, 1000, shared=False)
        assert shared > duplicated
        # With a 50/50 split the asymptotic gain approaches 2x.
        assert shared >= int(1.8 * duplicated)

    def test_zero_private_tokens(self):
        assert max_batch_size(LLAMA7B, 10**9, 100, 0, shared=True) == 0

    def test_budget_too_small(self):
        assert max_batch_size(LLAMA7B, 10, 100, 100, shared=False) == 0
