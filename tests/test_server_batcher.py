"""Cache-aware batcher: grouping, max-wait, deadlines — all fake-clock."""

from __future__ import annotations

import pytest

from repro.server.batcher import CacheAwareBatcher
from repro.server.request import LiveRequest


def req(schema: str, submitted_at: float, *, max_new=4, deadline_at=None, rid="r"):
    return LiveRequest(
        request_id=rid,
        prompt=f'<prompt schema="{schema}"><context/></prompt>',
        schema=schema,
        max_new_tokens=max_new,
        submitted_at=submitted_at,
        deadline_at=deadline_at,
    )


class TestGrouping:
    def test_groups_by_schema(self):
        b = CacheAwareBatcher(max_batch=4, max_wait_s=0.1)
        b.put(req("a", 0.0))
        b.put(req("b", 0.0))
        b.put(req("a", 0.01))
        batch = b.next_batch(now=1.0)  # everything ripe
        assert [r.schema for r in batch] == ["a", "a"]
        assert [r.schema for r in b.next_batch(now=1.0)] == ["b"]

    def test_groups_split_by_decode_budget(self):
        b = CacheAwareBatcher(max_batch=4, max_wait_s=0.0)
        b.put(req("a", 0.0, max_new=4))
        b.put(req("a", 0.0, max_new=8))
        assert len(b.next_batch(now=0.0)) == 1  # different max_new_tokens

    def test_full_group_dispatches_before_max_wait(self):
        b = CacheAwareBatcher(max_batch=2, max_wait_s=10.0)
        b.put(req("a", 0.0))
        assert b.next_batch(now=0.0) is None  # not full, not ripe
        b.put(req("a", 0.0))
        assert len(b.next_batch(now=0.0)) == 2  # full fires immediately

    def test_max_batch_caps_take(self):
        b = CacheAwareBatcher(max_batch=2, max_wait_s=0.0)
        for i in range(5):
            b.put(req("a", 0.0, rid=f"r{i}"))
        assert len(b.next_batch(now=0.0)) == 2
        assert len(b) == 3

    def test_fifo_between_groups(self):
        b = CacheAwareBatcher(max_batch=8, max_wait_s=0.0)
        b.put(req("late", 1.0))
        b.put(req("early", 0.0))
        assert b.next_batch(now=2.0)[0].schema == "early"


class TestMaxWait:
    def test_not_ripe_before_max_wait(self):
        b = CacheAwareBatcher(max_batch=8, max_wait_s=0.05)
        b.put(req("a", submitted_at=1.0))
        assert b.next_batch(now=1.01) is None
        assert b.next_batch(now=1.05) is not None

    def test_ready_in_counts_down(self):
        b = CacheAwareBatcher(max_batch=8, max_wait_s=0.05)
        assert b.ready_in(now=0.0) is None  # empty queue
        b.put(req("a", submitted_at=1.0))
        assert b.ready_in(now=1.0) == pytest.approx(0.05)
        assert b.ready_in(now=1.03) == pytest.approx(0.02)
        assert b.ready_in(now=2.0) == 0.0

    def test_ready_in_zero_when_full(self):
        b = CacheAwareBatcher(max_batch=1, max_wait_s=10.0)
        b.put(req("a", submitted_at=0.0))
        assert b.ready_in(now=0.0) == 0.0


class TestDeadlines:
    def test_remove_expired_pulls_mid_queue(self):
        b = CacheAwareBatcher(max_batch=8, max_wait_s=0.0)
        b.put(req("a", 0.0, rid="keep1", deadline_at=100.0))
        b.put(req("a", 0.0, rid="dead", deadline_at=1.0))
        b.put(req("a", 0.0, rid="keep2"))  # no deadline
        expired = b.remove_expired(now=2.0)
        assert [r.request_id for r in expired] == ["dead"]
        assert [r.request_id for r in b.next_batch(now=2.0)] == ["keep1", "keep2"]

    def test_expired_whole_group_vanishes(self):
        b = CacheAwareBatcher(max_batch=8, max_wait_s=0.0)
        b.put(req("a", 0.0, deadline_at=1.0))
        assert len(b.remove_expired(now=5.0)) == 1
        assert len(b) == 0
        assert b.ready_in(now=5.0) is None

    def test_drain_empties_everything(self):
        b = CacheAwareBatcher()
        b.put(req("a", 0.0))
        b.put(req("b", 0.0))
        assert len(b.drain()) == 2
        assert len(b) == 0
