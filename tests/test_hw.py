"""Device latency/memory model: paper anchors and qualitative shapes."""

from __future__ import annotations

import pytest

from repro.hw import (
    A100,
    AMD_R9_7950X,
    CPU_DEVICES,
    GPU_DEVICES,
    INTEL_I9_13900K,
    RTX_4090,
    CapacityError,
    MemoryAccountant,
    Route,
    baseline_ttft,
    cached_ttft,
    copy_latency,
    decode_step_latency,
    device,
    layer_kv_payload_bytes,
    mb_per_token,
    module_copy_latency,
    module_transfer_route,
    speedup,
)
from repro.llm.config import paper_config

LLAMA7B = paper_config("llama2-7b")
LLAMA13B = paper_config("llama2-13b")


class TestDeviceCatalog:
    def test_lookup_by_name(self):
        assert device("rtx-4090") is RTX_4090
        with pytest.raises(KeyError):
            device("h100")

    def test_five_paper_devices(self):
        assert len(GPU_DEVICES) == 3 and len(CPU_DEVICES) == 2

    def test_small_gemm_efficiency_kicks_in(self):
        assert RTX_4090.achieved_flops(16) < RTX_4090.achieved_flops(512)
        assert RTX_4090.achieved_flops(512) == RTX_4090.matmul_flops


class TestBaselineTTFT:
    def test_paper_anchor_4090_3k(self):
        """§5.4: Llama2-7B at 3K tokens on the RTX 4090 ≈ 900 ms."""
        ttft = baseline_ttft(LLAMA7B, 3072, RTX_4090).total_s
        assert 0.7 < ttft < 1.1

    def test_quadratic_growth(self):
        a = baseline_ttft(LLAMA7B, 2000, RTX_4090).total_s
        b = baseline_ttft(LLAMA7B, 4000, RTX_4090).total_s
        assert b > 2 * a

    def test_cpu_much_slower_than_gpu(self):
        gpu = baseline_ttft(LLAMA7B, 5000, RTX_4090).total_s
        cpu = baseline_ttft(LLAMA7B, 5000, INTEL_I9_13900K).total_s
        assert cpu > 20 * gpu


class TestCachedTTFT:
    def test_paper_anchor_cached_3k(self):
        """§5.4: cached TTFT ≈ 90 ms at 3K on the 4090 (GPU storage)."""
        ttft = cached_ttft(LLAMA7B, 3072, 32, RTX_4090, "gpu").total_s
        assert 0.05 < ttft < 0.15

    def test_linear_growth_in_cached_length(self):
        a = cached_ttft(LLAMA7B, 2000, 32, RTX_4090, "cpu").total_s
        b = cached_ttft(LLAMA7B, 4000, 32, RTX_4090, "cpu").total_s
        assert b < 2.5 * a  # linear-ish, not quadratic

    def test_gpu_storage_faster_than_cpu_storage(self):
        gpu_mem = cached_ttft(LLAMA7B, 5000, 64, RTX_4090, "gpu").total_s
        cpu_mem = cached_ttft(LLAMA7B, 5000, 64, RTX_4090, "cpu").total_s
        assert gpu_mem < cpu_mem

    def test_uncached_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            cached_ttft(LLAMA7B, 100, 200, RTX_4090)

    def test_invalid_storage(self):
        with pytest.raises(ValueError):
            module_copy_latency(LLAMA7B, 100, RTX_4090, storage="tpu")


class TestSpeedups:
    """The paper's headline ranges (§5.2): GPU 5-10x (GPU memory),
    1.5-3x (CPU memory); CPU up to 70x (Intel) / 20x (AMD)."""

    def test_gpu_storage_range(self):
        for dev in GPU_DEVICES:
            s = speedup(LLAMA7B, 5000, 256, dev, "gpu")
            assert 4 < s < 14, (dev.name, s)

    def test_cpu_storage_range(self):
        for dev in GPU_DEVICES:
            s = speedup(LLAMA7B, 5000, 256, dev, "cpu")
            assert 1.5 < s < 4.5, (dev.name, s)

    def test_intel_up_to_70x(self):
        s = speedup(LLAMA7B, 5000, 32, INTEL_I9_13900K, "cpu")
        assert 40 < s < 90

    def test_amd_up_to_20x(self):
        s = speedup(LLAMA7B, 5000, 32, AMD_R9_7950X, "cpu")
        assert 12 < s < 30

    def test_cpu_benefits_more_than_gpu(self):
        """§5.2.2: CPU inference benefits more from Prompt Cache."""
        cpu = speedup(LLAMA7B, 5000, 64, INTEL_I9_13900K, "cpu")
        gpu = speedup(LLAMA7B, 5000, 64, RTX_4090, "gpu")
        assert cpu > gpu

    def test_model_size_effect(self):
        """§5.4: going 7B→13B adds far more baseline latency than cached
        latency (paper: +220 ms vs +30 ms at 3K on the 4090)."""
        base_delta = (
            baseline_ttft(LLAMA13B, 3072, RTX_4090).total_s
            - baseline_ttft(LLAMA7B, 3072, RTX_4090).total_s
        )
        cached_delta = (
            cached_ttft(LLAMA13B, 3072, 32, RTX_4090, "gpu").total_s
            - cached_ttft(LLAMA7B, 3072, 32, RTX_4090, "gpu").total_s
        )
        assert base_delta > 4 * cached_delta
        # The paper reports +220 ms; our constant-throughput device model
        # overestimates (real 13B GEMMs run at higher utilization). The
        # *shape* — baseline delta dwarfs cached delta — is the claim.
        assert 0.3 < base_delta < 1.2
        assert cached_delta < 0.1


class TestDecode:
    def test_ttst_anchor(self):
        """§5.4: ~32 ms/token decode for Llama2-7B on the RTX 4090."""
        ttst = decode_step_latency(LLAMA7B, 3072, RTX_4090)
        assert 0.015 < ttst < 0.06

    def test_decode_independent_of_caching(self):
        # The model has no "cached" decode variant: same function, same cost.
        assert decode_step_latency(LLAMA7B, 3072, RTX_4090) == pytest.approx(
            decode_step_latency(LLAMA7B, 3072, RTX_4090)
        )


class TestTransfer:
    def test_paper_section54_numbers(self):
        """h2h 3.79 ms, h2d 5.34 ms, d2d 0.23 ms for 5K-token states."""
        payload = layer_kv_payload_bytes(LLAMA7B, 5000)
        assert copy_latency(payload, Route.HOST_TO_HOST) == pytest.approx(3.79e-3, rel=0.1)
        assert copy_latency(payload, Route.HOST_TO_DEVICE) == pytest.approx(5.34e-3, rel=0.1)
        assert copy_latency(payload, Route.DEVICE_TO_DEVICE) == pytest.approx(0.23e-3, rel=0.1)

    def test_route_selection(self):
        assert module_transfer_route(INTEL_I9_13900K, "cpu") == Route.HOST_TO_HOST
        assert module_transfer_route(RTX_4090, "gpu") == Route.DEVICE_TO_DEVICE
        assert module_transfer_route(RTX_4090, "cpu") == Route.HOST_TO_DEVICE


class TestMemoryAccounting:
    def test_table2_values(self):
        """Table 2, MB/token at fp16 — every model, paper's rounding."""
        expected = {
            "bert-base": 0.04,  # paper prints 0.03 (truncation); exact is 0.0352
            "falcon-1b": 0.19,
            "llama2-7b": 0.50,
            "llama2-13b": 0.78,
            "mpt-30b": 1.31,
            "falcon-40b": 1.88,
            "llama2-70b": 2.50,
            "falcon-180b": 4.53,
        }
        for name, value in expected.items():
            assert mb_per_token(paper_config(name)) == pytest.approx(value, abs=0.01)

    def test_accountant_tracks_and_enforces(self):
        acc = MemoryAccountant(capacity_bytes=100)
        acc.allocate("a", 60)
        assert acc.used_bytes == 60 and acc.free_bytes == 40
        with pytest.raises(CapacityError):
            acc.allocate("b", 50)
        acc.release("a")
        acc.allocate("b", 100)

    def test_duplicate_tag_rejected(self):
        acc = MemoryAccountant()
        acc.allocate("x", 10)
        with pytest.raises(ValueError):
            acc.allocate("x", 10)

    def test_release_unknown_tag(self):
        with pytest.raises(KeyError):
            MemoryAccountant().release("ghost")

    def test_unbounded_accountant(self):
        acc = MemoryAccountant()
        acc.allocate("big", 10**15)
        assert acc.free_bytes is None
