"""Two-phase shared-prefix batched attention (ChunkAttention).

Three layers of coverage for the shared-prefix decode path:

- Kernel properties: splitting a KV range at arbitrary chunk boundaries
  and recombining with :func:`merge_online_softmax` reproduces
  single-pass softmax attention against a float64 reference to tight
  tolerance — across GQA head groupings, additive (ALiBi-style) biases,
  empty chunks, and the stacked group axis, whose per-member slices are
  bit-identical to separate calls.
- Scheduler policy: how ``shared_attention`` "off"/"on"/"auto" turn
  stream-level grouping keys into a two-phase plan, including the auto
  thresholds and safety around duck-typed streams that know nothing of
  sharing.
- Serving contract: greedy decode through the continuous scheduler with
  the two-phase path engaged is byte-identical to the legacy single-pass
  path across all four positional families, and the share-factor metrics
  reach the Prometheus exposition.
"""

from __future__ import annotations

import asyncio
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.engine import PromptCache
from repro.llm.attention import ChunkPartial, chunk_phase, merge_online_softmax
from repro.pml.chat import PLAIN_TEMPLATE
from repro.server import ContinuousScheduler, LiveServer, ServeOptions
from repro.server.request import LiveRequest
from repro.server.scheduler import AUTO_MIN_SHARED_TOKENS, IterationOutcome


def run(coro):
    return asyncio.run(coro)


# -- kernel properties -----------------------------------------------------------


def dense_reference(q, k, v, n_rep, bias=None):
    """Single-pass softmax attention in float64 — the ground truth any
    chunking of the KV range must reproduce. Uses the kernel's own
    float32 scale so only the chunked reassociation is under test."""
    kk = np.repeat(k, n_rep, axis=-3).astype(np.float64)
    vv = np.repeat(v, n_rep, axis=-3).astype(np.float64)
    scores = q.astype(np.float64) @ np.swapaxes(kk, -2, -1)
    scores /= np.sqrt(np.float32(q.shape[-1]))
    if bias is not None:
        scores = scores + bias.astype(np.float64)
    weights = np.exp(scores - scores.max(axis=-1, keepdims=True))
    weights /= weights.sum(axis=-1, keepdims=True)
    return weights @ vv


def chunked(q, k, v, n_rep, bounds, bias=None):
    """Run chunk_phase per ``bounds`` interval and merge."""
    partials = [
        chunk_phase(
            q,
            k[:, a:b],
            v[:, a:b],
            n_rep,
            bias=None if bias is None else bias[..., a:b],
        )
        for a, b in zip(bounds, bounds[1:])
    ]
    return merge_online_softmax(*partials)


class TestMergeOnlineSoftmax:
    @given(
        seed=st.integers(0, 2**16),
        n_kv=st.integers(1, 3),
        n_rep=st.sampled_from([1, 2, 4]),
        head_dim=st.sampled_from([4, 8]),
        tq=st.integers(1, 3),
        tk=st.integers(1, 24),
        cuts=st.lists(st.integers(0, 24), max_size=4),
        q_scale=st.sampled_from([1.0, 8.0]),
    )
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_splits_match_single_pass(
        self, seed, n_kv, n_rep, head_dim, tq, tk, cuts, q_scale
    ):
        """The online-softmax identity, the kernel's whole correctness
        argument: any chunking of the keys — including empty chunks from
        duplicate or boundary cuts, GQA foldings, and large score
        magnitudes exercising the running-max shift — merges back to the
        single-pass result."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(n_kv * n_rep, tq, head_dim)).astype(np.float32)
        q *= np.float32(q_scale)
        k = rng.normal(size=(n_kv, tk, head_dim)).astype(np.float32)
        v = rng.normal(size=(n_kv, tk, head_dim)).astype(np.float32)
        bounds = [0, *sorted(min(c, tk) for c in cuts), tk]
        merged = chunked(q, k, v, n_rep, bounds)
        np.testing.assert_allclose(
            merged, dense_reference(q, k, v, n_rep), rtol=1e-4, atol=1e-5
        )

    @given(seed=st.integers(0, 2**16), split=st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_bias_splits_with_the_chunks(self, seed, split):
        """An additive bias (ALiBi) sliced per chunk is equivalent to
        biasing the single pass — the shared/private phases each see
        only their own key columns' bias."""
        rng = np.random.default_rng(seed)
        heads, tq, tk, hd = 4, 1, 12, 8
        q = rng.normal(size=(heads, tq, hd)).astype(np.float32)
        k = rng.normal(size=(heads, tk, hd)).astype(np.float32)
        v = rng.normal(size=(heads, tk, hd)).astype(np.float32)
        bias = rng.normal(size=(heads, tq, tk)).astype(np.float32)
        merged = chunked(q, k, v, 1, [0, split, tk], bias=bias)
        np.testing.assert_allclose(
            merged,
            dense_reference(q, k, v, 1, bias=bias),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_stacked_slices_match_per_member_calls(self):
        """The group stacking trick: one chunk_phase over a (S, ...)
        query stack yields, per member, bit-identical partials to S
        separate calls — NumPy iterates leading matmul axes slice by
        slice, so stacking changes dispatch count, not arithmetic."""
        rng = np.random.default_rng(3)
        stack, n_kv, n_rep, tq, hd, tk = 5, 2, 2, 1, 8, 17
        q_stack = rng.normal(size=(stack, n_kv * n_rep, tq, hd)).astype(np.float32)
        k = rng.normal(size=(n_kv, tk, hd)).astype(np.float32)
        v = rng.normal(size=(n_kv, tk, hd)).astype(np.float32)
        stacked = chunk_phase(q_stack, k, v, n_rep)
        for s in range(stack):
            single = chunk_phase(q_stack[s], k, v, n_rep)
            np.testing.assert_array_equal(stacked[s].m, single.m)
            np.testing.assert_array_equal(stacked[s].l, single.l)
            np.testing.assert_array_equal(stacked[s].acc, single.acc)

    def test_empty_chunk_merges_as_exact_identity(self):
        """The neutral partial (mask-floor max, zero sums) must not
        perturb a merge even in the last ulp."""
        rng = np.random.default_rng(7)
        q = rng.normal(size=(2, 1, 4)).astype(np.float32)
        k = rng.normal(size=(2, 9, 4)).astype(np.float32)
        v = rng.normal(size=(2, 9, 4)).astype(np.float32)
        full = chunk_phase(q, k, v, 1)
        empty = chunk_phase(q, k[:, :0], v[:, :0], 1)
        np.testing.assert_array_equal(
            merge_online_softmax(full),
            merge_online_softmax(empty, full, empty),
        )

    def test_merge_requires_a_partial(self):
        with pytest.raises(ValueError):
            merge_online_softmax()

    def test_partial_indexing_selects_one_member(self):
        part = ChunkPartial(
            m=np.arange(4.0).reshape(2, 2, 1, 1),
            l=np.ones((2, 2, 1, 1)),
            acc=np.zeros((2, 2, 1, 4)),
        )
        sliced = part[1]
        assert sliced.m.shape == (2, 1, 1)
        assert float(sliced.m[0, 0, 0]) == 2.0


# -- scheduler grouping policy ---------------------------------------------------


class _GroupedStream:
    """Duck-typed decoding stream carrying the grouping key."""

    def __init__(self, shared_group=None, shared_len=0, cache_tokens=30):
        self.shared_group = shared_group
        self.shared_len = shared_len
        self.cache = [None] * cache_tokens


class _FakeEngine:
    model = None


def plan(sched, streams):
    outcome = IterationOutcome()
    forward = [SimpleNamespace(stream=s) for s in streams]
    return sched._plan_shared_groups(forward, outcome), outcome


class TestSharedGroupPlanning:
    def make(self, mode):
        return ContinuousScheduler(_FakeEngine(), shared_attention=mode)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ContinuousScheduler(_FakeEngine(), shared_attention="maybe")

    def test_off_never_plans(self):
        base = object()
        groups, _ = plan(
            self.make("off"),
            [_GroupedStream(base, 20), _GroupedStream(base, 20)],
        )
        assert groups is None

    def test_on_groups_by_base_identity(self):
        a, b = object(), object()
        streams = [
            _GroupedStream(a, 20),
            _GroupedStream(b, 24),
            _GroupedStream(a, 20),
        ]
        groups, outcome = plan(self.make("on"), streams)
        assert sorted(groups) == [([0, 2], 20), ([1], 24)]
        assert sorted(outcome.shared_group_sizes) == [1, 2]
        assert outcome.shared_kv_tokens == 44
        # Each stream attends over its 30 cached tokens + this step's
        # append; grouped members subtract their shared chunk.
        assert outcome.private_kv_tokens == (31 - 20) * 2 + (31 - 24)

    def test_auto_needs_company_and_enough_shared_tokens(self):
        lone, shallow, good = object(), object(), object()
        streams = [
            _GroupedStream(lone, 40),  # group of one: skipped
            _GroupedStream(shallow, AUTO_MIN_SHARED_TOKENS - 1),
            _GroupedStream(shallow, AUTO_MIN_SHARED_TOKENS - 1),
            _GroupedStream(good, AUTO_MIN_SHARED_TOKENS),
            _GroupedStream(good, AUTO_MIN_SHARED_TOKENS),
        ]
        groups, outcome = plan(self.make("auto"), streams)
        assert groups == [([3, 4], AUTO_MIN_SHARED_TOKENS)]
        assert outcome.shared_group_sizes == [2]

    def test_streams_without_grouping_keys_plan_nothing(self):
        """Duck-typed doubles (and non-paged streams, whose key is None)
        must sail through: no plan, no kwarg on the forward."""
        groups, outcome = plan(
            self.make("on"),
            [SimpleNamespace(), SimpleNamespace()],
        )
        assert groups is None
        assert outcome.shared_group_sizes == []
        assert outcome.private_kv_tokens == 0


# -- serving byte-identity across families ---------------------------------------


SCHEMA = (
    '<schema name="trip">'
    '<module name="plan">plan a trip lasting three days focus on food '
    "the quick brown fox jumps over the lazy dog</module>"
    '<module name="city">paris museums cafes architecture louvre seine'
    "</module>"
    "</schema>"
)
# Four prompts sharing one module selection — their streams fork the
# same pre-spliced base, so they form one shared-attention group — with
# distinct suffixes so the private phases diverge immediately.
GROUP_PROMPTS = [
    '<prompt schema="trip"><plan/><city/> answer the question</prompt>',
    '<prompt schema="trip"><plan/><city/> miami beaches nightlife</prompt>',
    '<prompt schema="trip"><plan/><city/> the capital of atlantis</prompt>',
    '<prompt schema="trip"><plan/><city/> def main(): return</prompt>',
]


def make_pc(model, tok):
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(SCHEMA)
    return pc


def make_request(request_id, prompt, max_new_tokens=10):
    return LiveRequest(
        request_id=request_id,
        prompt=prompt,
        schema="trip",
        max_new_tokens=max_new_tokens,
        submitted_at=0.0,
    )


def drive(pc, mode, waves, max_new_tokens=10):
    """Run prompts through a scheduler to completion, admitting one
    wave per iteration; returns per-request outputs plus the aggregate
    share-factor accounting."""
    sched = ContinuousScheduler(pc, max_inflight=8, shared_attention=mode)
    waves = [list(w) for w in waves]
    results = {}
    stats = SimpleNamespace(sizes=[], shared=0, private=0, saved=0)
    n = 0
    while waves or sched.active:
        pending = []
        if waves:
            for prompt in waves.pop(0):
                pending.append(make_request(f"r{n}", prompt, max_new_tokens))
                n += 1
        outcome = sched.iterate(pending)
        assert not outcome.requeued
        stats.sizes.extend(outcome.shared_group_sizes)
        stats.shared += outcome.shared_kv_tokens
        stats.private += outcome.private_kv_tokens
        stats.saved += outcome.flops_saved
        for request, result, error, _at in outcome.finished:
            assert error is None, error
            results[request.request_id] = (tuple(result.output_ids), result.text)
    return results, stats


class TestServingByteIdentity:
    def test_two_phase_outputs_identical_to_single_pass(self, any_model, tok):
        """The acceptance contract, per positional family: decoded
        tokens and text with the shared path forced on (and under the
        auto policy) are byte-identical to the legacy kernel, and the
        groups demonstrably formed."""
        waves = [GROUP_PROMPTS]
        off, off_stats = drive(make_pc(any_model, tok), "off", waves)
        on, on_stats = drive(make_pc(any_model, tok), "on", waves)
        auto, auto_stats = drive(make_pc(any_model, tok), "auto", waves)
        assert on == off
        assert auto == off
        assert off_stats.sizes == []
        assert on_stats.sizes and max(on_stats.sizes) >= 2
        assert auto_stats.sizes and max(auto_stats.sizes) >= 2
        assert on_stats.shared > 0
        assert on_stats.private > 0
        assert on_stats.saved > 0

    def test_staggered_admission_still_identical(self, any_model, tok):
        """Members joining a group mid-flight (unequal private suffix
        lengths) must not perturb anyone's tokens."""
        waves = [GROUP_PROMPTS[:2], [], GROUP_PROMPTS[2:]]
        off, _ = drive(make_pc(any_model, tok), "off", waves)
        on, on_stats = drive(make_pc(any_model, tok), "on", waves)
        assert on == off
        assert on_stats.sizes and max(on_stats.sizes) >= 2

    def test_mixed_selections_group_separately(self, llama, tok):
        """Streams forked from different spliced bases never share a
        group, and their outputs still match the off path."""
        mixed = [
            '<prompt schema="trip"><plan/> answer the question</prompt>',
            '<prompt schema="trip"><plan/> miami beaches</prompt>',
            '<prompt schema="trip"><city/> the capital of atlantis</prompt>',
            '<prompt schema="trip"><city/> def main(): return</prompt>',
        ]
        off, _ = drive(make_pc(llama, tok), "off", [mixed])
        on, on_stats = drive(make_pc(llama, tok), "on", [mixed])
        assert on == off
        # Two bases in flight: groups of 2, never one group of 4.
        assert on_stats.sizes and max(on_stats.sizes) == 2


# -- metrics export --------------------------------------------------------------


class TestShareMetrics:
    def test_share_factor_metrics_exported(self, llama, tok):
        """decode_shared_group_size / *_kv_tokens_total /
        decode_flops_saved_total reach the snapshot and the Prometheus
        exposition when groups form."""
        pc = make_pc(llama, tok)
        options = ServeOptions(
            mode="continuous",
            queue_delay_budget_s=None,
            shared_attention="on",
        )

        async def main():
            async with LiveServer(pc, options) as server:
                requests = [
                    await server.submit(p, max_new_tokens=6)
                    for p in GROUP_PROMPTS
                ]
                await asyncio.gather(*(r.wait() for r in requests))
                return server.snapshot(), server.prometheus()

        snap, prom = run(main())
        group_size = snap["histograms"]["decode_shared_group_size"]
        assert group_size["count"] > 0
        assert snap["counters"]["decode_shared_kv_tokens_total"] > 0
        assert snap["counters"]["decode_private_kv_tokens_total"] > 0
        assert snap["gauges"]["decode_flops_saved_total"] > 0
        for name in (
            "decode_shared_group_size",
            "decode_shared_kv_tokens_total",
            "decode_private_kv_tokens_total",
            "decode_flops_saved_total",
        ):
            assert name in prom

    def test_off_mode_exports_nothing(self, llama, tok):
        pc = make_pc(llama, tok)
        options = ServeOptions(
            mode="continuous",
            queue_delay_budget_s=None,
            shared_attention="off",
        )

        async def main():
            async with LiveServer(pc, options) as server:
                requests = [
                    await server.submit(p, max_new_tokens=4)
                    for p in GROUP_PROMPTS[:2]
                ]
                await asyncio.gather(*(r.wait() for r in requests))
                return server.snapshot()

        snap = run(main())
        assert "decode_shared_group_size" not in snap["histograms"]
        assert "decode_shared_kv_tokens_total" not in snap["counters"]
