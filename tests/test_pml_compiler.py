"""Python-to-PML compiler (paper §3.2.4)."""

from __future__ import annotations

import pytest

from repro.pml import Param, Schema, ValidationError, prompt_function, resolve
from repro.pml.ast import ModuleNode, UnionNode
from repro.pml.compiler import emit


@prompt_function
def city_guide():
    """Shared city guidance."""
    emit("Cities have attractions. ")


@prompt_function
def travel(dest, budget, duration: Param(8)):
    """You are a travel planner."""
    if dest == "miami":
        emit("Miami: beaches, nightlife.")
    elif dest == "paris":
        emit("Paris: museums, cafes.")
    else:
        emit("Somewhere nice.")
    if budget:
        emit("Keep the budget low.")
    city_guide()
    emit("Plan a trip lasting ")
    emit(duration)


class TestCompilation:
    def test_if_elif_else_becomes_union(self):
        union = next(c for c in travel.schema.root.children if isinstance(c, UnionNode))
        assert [m.name for m in union.members] == [
            "dest-miami", "dest-paris", "dest-otherwise",
        ]

    def test_bare_if_becomes_module(self):
        assert "budget" in travel.schema.modules

    def test_call_becomes_nested_module(self):
        assert "city-guide" in travel.schema.modules

    def test_docstring_becomes_leading_text(self):
        pml = travel.to_pml()
        assert "You are a travel planner." in pml

    def test_param_gets_len_attribute(self):
        pml = travel.to_pml()
        assert '<param name="duration" len="8"/>' in pml

    def test_compiled_schema_is_valid_pml(self):
        schema = Schema.parse(travel.to_pml())
        assert "dest-miami" in schema.modules

    def test_function_name_underscores_become_hyphens(self):
        assert city_guide.name == "city-guide"


class TestBuildPrompt:
    def test_selects_matching_branch(self):
        prompt = travel.build_prompt(dest="paris", duration="3 days")
        assert "<dest-paris/>" in prompt
        assert "miami" not in prompt

    def test_else_branch_when_nothing_matches(self):
        prompt = travel.build_prompt(dest="tokyo")
        assert "<dest-otherwise/>" in prompt

    def test_boolean_module_included_when_true(self):
        assert "<budget/>" in travel.build_prompt(dest="miami", budget=True)
        assert "<budget/>" not in travel.build_prompt(dest="miami", budget=False)

    def test_parameter_value_supplied(self):
        prompt = travel.build_prompt(dest="miami", duration="3 days")
        assert 'duration="3 days"' in prompt

    def test_extra_text_escaped_and_appended(self):
        prompt = travel.build_prompt(dest="miami", extra_text="a < b")
        assert "a &lt; b" in prompt

    def test_built_prompt_resolves_against_compiled_schema(self):
        """The full loop: compile schema, build prompt, resolve — no
        mismatch errors, correct selections."""
        schema = Schema.parse(travel.to_pml())
        prompt = travel.build_prompt(dest="paris", budget=True, duration="2 days")
        resolved = resolve(prompt, schema)
        assert "dest-paris" in resolved.selected_names()
        assert "budget" in resolved.selected_names()
        assert "duration-slot" in resolved.selected_names()

    def test_calling_decorated_function_directly_fails(self):
        with pytest.raises(RuntimeError):
            emit("outside a prompt program")


class TestCompilerRejections:
    def test_loops_rejected(self):
        with pytest.raises(ValidationError, match="For"):

            @prompt_function
            def bad():
                for _ in range(3):
                    emit("no loops")

    def test_non_literal_emit_rejected(self):
        with pytest.raises(ValidationError):

            @prompt_function
            def bad2(x):
                emit(x)  # x is not Param-annotated

    def test_unknown_call_rejected(self):
        with pytest.raises(ValidationError, match="unsupported call"):

            @prompt_function
            def bad3():
                print("hello")
