"""KV compression codecs: fidelity, byte accounting, engine integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.compress import (
    CODECS,
    Fp16Codec,
    IdentityCodec,
    Int8Codec,
    codec,
)
from repro.cache.engine import PromptCache
from repro.llm.kv import ModuleKV
from repro.pml import PLAIN_TEMPLATE

RNG = np.random.default_rng(31)


def make_kv(tokens=12, layers=2, heads=2, head_dim=8) -> ModuleKV:
    shape = (heads, tokens, head_dim)
    return ModuleKV(
        keys=[RNG.normal(size=shape).astype(np.float32) for _ in range(layers)],
        values=[RNG.normal(size=shape).astype(np.float32) for _ in range(layers)],
        positions=np.arange(tokens),
    )


class TestCodecs:
    def test_identity_passthrough(self):
        kv = make_kv()
        assert IdentityCodec().decode(IdentityCodec().encode(kv)) is kv

    def test_fp16_halves_storage(self):
        kv = make_kv()
        stored = Fp16Codec().encode(kv)
        # Tensor bytes halve; positions stay int64.
        tensor_bytes = sum(k.nbytes + v.nbytes for k, v in zip(kv.keys, kv.values))
        assert stored.nbytes() == tensor_bytes // 2 + kv.positions.nbytes

    def test_fp16_round_trip_error_small(self):
        kv = make_kv()
        out = Fp16Codec().decode(Fp16Codec().encode(kv))
        np.testing.assert_allclose(out.keys[0], kv.keys[0], atol=2e-3)
        np.testing.assert_array_equal(out.positions, kv.positions)

    def test_int8_quarter_storage(self):
        kv = make_kv(tokens=64, head_dim=64)
        stored = Int8Codec().encode(kv)
        tensor_bytes = sum(k.nbytes + v.nbytes for k, v in zip(kv.keys, kv.values))
        # int8 tensors = 1/4 of fp32; scales add (heads*tokens) fp32 per tensor.
        assert stored.nbytes() < 0.30 * tensor_bytes + kv.positions.nbytes

    def test_int8_round_trip_error_bounded(self):
        kv = make_kv()
        out = Int8Codec().decode(Int8Codec().encode(kv))
        for layer in range(len(kv.keys)):
            scale = np.abs(kv.keys[layer]).max()
            assert np.max(np.abs(out.keys[layer] - kv.keys[layer])) < scale / 100
        np.testing.assert_array_equal(out.positions, kv.positions)

    def test_int8_handles_zero_tensor(self):
        kv = make_kv()
        kv.keys[0][:] = 0.0
        out = Int8Codec().decode(Int8Codec().encode(kv))
        np.testing.assert_array_equal(out.keys[0], 0.0)

    def test_registry(self):
        assert set(CODECS) == {"identity", "fp16", "int8"}
        assert codec("int8").name == "int8"
        with pytest.raises(KeyError):
            codec("int4")


SCHEMA = (
    '<schema name="z"><module name="m">the quick brown fox jumps over the '
    "lazy dog again</module></schema>"
)


class TestEngineIntegration:
    @pytest.mark.parametrize("name", ["identity", "fp16", "int8"])
    def test_serving_works_under_every_codec(self, llama, tok, name):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec=name)
        pc.register_schema(SCHEMA)
        result = pc.serve('<prompt schema="z"><m/> what ?</prompt>', max_new_tokens=4)
        assert len(result.output_ids) == 4

    def test_fp16_output_matches_identity(self, llama, tok):
        """fp16 rounding is far below greedy decision boundaries here."""
        outs = {}
        for name in ("identity", "fp16"):
            pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec=name)
            pc.register_schema(SCHEMA)
            outs[name] = pc.serve(
                '<prompt schema="z"><m/> what ?</prompt>', max_new_tokens=6
            ).output_ids
        assert outs["identity"] == outs["fp16"]

    def test_compressed_storage_smaller(self, llama, tok):
        sizes = {}
        for name in ("identity", "int8"):
            pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec=name)
            pc.register_schema(SCHEMA)
            sizes[name] = pc.store.total_bytes()
        assert sizes["int8"] < 0.35 * sizes["identity"]

    def test_codec_instance_accepted(self, llama, tok):
        pc = PromptCache(llama, tok, template=PLAIN_TEMPLATE, kv_codec=Fp16Codec())
        assert pc.kv_codec.name == "fp16"
