"""CLI: every subcommand drives the library end to end."""

from __future__ import annotations

import pytest

from repro.cli import main

SCHEMA = """
<schema name="demo">
intro text for the assistant .
<module name="doc">atlantis has capital coral .</module>
</schema>
"""


@pytest.fixture()
def schema_file(tmp_path):
    path = tmp_path / "demo.pml"
    path.write_text(SCHEMA)
    return path


class TestInspect:
    def test_prints_layout(self, schema_file, capsys):
        assert main(["inspect", str(schema_file)]) == 0
        out = capsys.readouterr().out
        assert "schema 'demo'" in out
        assert "doc" in out
        assert "lint" in out

    def test_lint_flags_problems(self, tmp_path, capsys):
        path = tmp_path / "bad.pml"
        path.write_text(
            '<schema name="bad"><module name="t">x</module>'
            '<union><module name="solo">alone</module></union></schema>'
        )
        main(["inspect", str(path)])
        out = capsys.readouterr().out
        assert "single-member-union" in out
        assert "tiny-module" in out


class TestServe:
    def test_serve_inline_prompt(self, schema_file, capsys):
        code = main([
            "serve", str(schema_file),
            '<prompt schema="demo"><doc/> hello</prompt>',
            "--size", "tiny", "--max-new-tokens", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "TTFT" in out and "output:" in out

    def test_serve_with_compare(self, schema_file, capsys):
        main([
            "serve", str(schema_file),
            '<prompt schema="demo"><doc/> hello</prompt>',
            "--size", "tiny", "--max-new-tokens", "2", "--compare",
        ])
        assert "baseline TTFT" in capsys.readouterr().out

    def test_prompt_from_file(self, schema_file, tmp_path, capsys):
        prompt_file = tmp_path / "p.pml"
        prompt_file.write_text('<prompt schema="demo"><doc/> q</prompt>')
        main(["serve", str(schema_file), str(prompt_file), "--size", "tiny",
              "--max-new-tokens", "2"])
        assert "output:" in capsys.readouterr().out


class TestOthers:
    def test_tokenize(self, capsys):
        assert main(["tokenize", "atlantis has capital"]) == 0
        out = capsys.readouterr().out
        assert "tokens:" in out

    def test_ttft(self, capsys):
        assert main([
            "ttft", "--model", "llama2-7b", "--device", "rtx-4090",
            "--tokens", "3072", "--uncached", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "narrativeqa" in out and "summarization" in out

    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "rtx-4090" in out and "i9-13900k" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServeLive:
    def test_summary_output(self, capsys):
        assert main([
            "serve-live", "--rate", "30", "--duration", "0.5", "--seed", "1",
            "--schemas", "2", "--module-tokens", "24",
        ]) == 0
        out = capsys.readouterr().out
        assert "completed" in out and "TTFT p50" in out

    def test_prometheus_output(self, capsys):
        assert main([
            "serve-live", "--rate", "20", "--duration", "0.4", "--seed", "1",
            "--schemas", "2", "--module-tokens", "24", "--format", "prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "server_ttft_seconds_quantile" in out
        assert "# TYPE server_requests_total counter" in out


class TestWarm:
    def test_warm_schema_file_and_snapshot(self, schema_file, tmp_path, capsys):
        out_dir = tmp_path / "snap"
        assert main([
            "warm", str(schema_file), "--workers", "1", "--out", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "warmed 1 schema(s)" in out
        assert "snapshot:" in out and "--attach-snapshot" in out
        assert (out_dir / "index.json").exists()
        assert list(out_dir.glob("*.keys.npy"))

    def test_warm_synthetic_prom_metrics(self, capsys):
        assert main([
            "warm", "--synthetic", "2", "--module-tokens", "24",
            "--workers", "1", "--format", "prom",
        ]) == 0
        out = capsys.readouterr().out
        assert "schema_warmup_seconds" in out
        assert "encode_jobs_total" in out

    def test_warm_nothing_to_do_errors(self, capsys):
        assert main(["warm"]) == 2
        assert "nothing to warm" in capsys.readouterr().err

    def test_warmed_snapshot_attaches_into_cluster(self, schema_file, tmp_path,
                                                   capsys):
        out_dir = tmp_path / "snap"
        main(["warm", "--synthetic", "1", "--module-tokens", "24",
              "--workers", "1", "--out", str(out_dir)])
        capsys.readouterr()
        assert main([
            "serve-cluster", "--workers", "2", "--schemas", "1",
            "--module-tokens", "24", "--rate", "20", "--duration", "0.4",
            "--attach-snapshot", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "mapped/worker" in out


class TestLoadgen:
    def test_trace_summary(self, capsys):
        assert main(["loadgen", "--rate", "2.0", "--duration", "20",
                     "--schemas", "3", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out and "inter-arrival" in out

    def test_jsonl(self, capsys):
        import json

        assert main(["loadgen", "--rate", "1.0", "--duration", "10",
                     "--schemas", "2", "--seed", "4", "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert {"arrival_s", "schema"} <= set(first)
