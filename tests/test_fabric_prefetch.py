"""Predictive prefetch: demand mining, byte budget, planning, scheduling.

The prefetcher's contract: pull a module up a tier *before* its next
predicted arrival, never exceed the bytes/s budget, never displace
resident entries, and only run on scheduler iterations with spare
prefill capacity (so prefetch cannot starve decode).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.persist import save_store
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.fabric import (
    ByteBudget,
    FabricStore,
    PlacementEngine,
    PredictivePrefetcher,
)
from repro.llm.kv import ModuleKV
from repro.serving.traces import SchemaProfile, schema_interarrivals, synthesize_trace


def _module_kv(seed: int, T: int = 6) -> ModuleKV:
    rng = np.random.default_rng(seed)
    shape = (3, 2, T, 4)
    return ModuleKV.from_arenas(
        rng.standard_normal(shape).astype(np.float32),
        rng.standard_normal(shape).astype(np.float32),
        np.arange(T, dtype=np.int64),
    )


class TestByteBudget:
    def test_burst_then_refill(self):
        budget = ByteBudget(bytes_per_s=100.0, burst_bytes=100.0)
        assert budget.take(80, now=0.0)
        assert not budget.take(80, now=0.0)  # only 20 left
        assert budget.denied == 1
        assert budget.take(80, now=1.0)  # refilled 100, capped at burst
        assert budget.granted_bytes == 160

    def test_refill_capped_at_burst(self):
        budget = ByteBudget(bytes_per_s=100.0, burst_bytes=50.0)
        budget.take(50, now=0.0)
        assert budget.available(now=100.0) == 50.0  # not 10_000

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError, match="positive"):
            ByteBudget(bytes_per_s=0.0)


class TestTraceMining:
    def test_schema_interarrivals_means_per_schema(self):
        profiles = [
            SchemaProfile(name="hot", module_tokens=32, uncached_mean=8,
                          decode_mean=4, weight=4.0),
            SchemaProfile(name="cold", module_tokens=32, uncached_mean=8,
                          decode_mean=4, weight=0.5),
        ]
        trace = synthesize_trace(profiles, 50.0, 4.0, seed=7)
        gaps = schema_interarrivals(trace)
        assert set(gaps) <= {"hot", "cold"}
        assert all(g > 0 for g in gaps.values())
        # The popular schema arrives more often: smaller mean gap.
        assert gaps["hot"] < gaps["cold"]

    def test_singleton_schemas_omitted(self):
        profiles = [SchemaProfile(name="once", module_tokens=32,
                                  uncached_mean=8, decode_mean=4)]
        trace = synthesize_trace(profiles, 1.0, 0.5, seed=0)
        if len(trace) <= 1:
            assert schema_interarrivals(trace) == {}

    def test_seed_from_trace_installs_priors(self):
        profiles = [SchemaProfile(name="s", module_tokens=32,
                                  uncached_mean=8, decode_mean=4)]
        trace = synthesize_trace(profiles, 20.0, 2.0, seed=3)
        prefetcher = PredictivePrefetcher(PlacementEngine())
        prefetcher.seed_from_trace(trace)
        assert prefetcher.schema_priors["s"] == pytest.approx(
            schema_interarrivals(trace)["s"]
        )


class TestPlanning:
    def _prefetcher(self, **kwargs):
        placement = PlacementEngine(horizon_s=2.0)
        return placement, PredictivePrefetcher(placement, **kwargs)

    def test_due_key_planned_within_lead_window(self):
        placement, prefetcher = self._prefetcher(bytes_per_s=1e9)
        key = CacheKey("s", "m")
        placement.record_demand(key, 0.0)
        placement.record_demand(key, 5.0)  # gap 5s
        # 1s before the predicted arrival at t=10: inside the 2s lead.
        actions = prefetcher.plan({key: ("snapshot", 1024)}, now=9.0)
        assert [a.key for a in actions] == [key]
        # Far ahead of the predicted arrival: not due yet.
        assert prefetcher.plan({key: ("snapshot", 1024)}, now=5.5) == []

    def test_stale_pattern_not_extrapolated(self):
        placement, prefetcher = self._prefetcher(bytes_per_s=1e9)
        key = CacheKey("s", "m")
        placement.record_demand(key, 0.0)
        placement.record_demand(key, 1.0)  # gap 1s
        # Dozens of silent gaps later: the cadence changed, skip it.
        assert prefetcher.plan({key: ("snapshot", 1024)}, now=60.0) == []
        assert prefetcher.skipped_cold == 1

    def test_schema_prior_covers_unseen_keys(self):
        placement, prefetcher = self._prefetcher(bytes_per_s=1e9)
        prefetcher.seed_interarrival("s", 1.0)
        key = CacheKey("s", "m")
        placement.record_demand(key, 10.0)  # one hit: no own estimate yet
        actions = prefetcher.plan({key: ("peer", 2048)}, now=10.5)
        assert [a.key for a in actions] == [key]
        assert actions[0].source == "peer"

    def test_budget_charges_most_demanded_first(self):
        placement, prefetcher = self._prefetcher(bytes_per_s=1000.0)
        fast, slow = CacheKey("s", "fast"), CacheKey("s", "slow")
        # Both freshly seen at t=8; fast repeats every 0.5s, slow every 1.5s.
        for i in range(5):
            placement.record_demand(fast, 6.0 + 0.5 * i)
            placement.record_demand(slow, 2.0 + 1.5 * i)
        now = 8.0
        candidates = {slow: ("snapshot", 800), fast: ("snapshot", 800)}
        actions = prefetcher.plan(candidates, now)
        # Budget fits one pull: the shorter-gap key wins, dict order loses.
        assert [a.key for a in actions] == [fast]
        assert prefetcher.skipped_budget == 1
        assert prefetcher.budget.denied == 1


class TestStoreMaintenance:
    def test_snapshot_prefetch_lands_in_dram(self, tmp_path):
        seed = ModuleCacheStore()
        key = CacheKey("s", "m")
        seed.put(key, _module_kv(1))
        save_store(seed, tmp_path)

        t = [0.0]
        store = FabricStore(snapshot_dir=tmp_path, clock=lambda: t[0])
        # Build a 1s cadence without leaving the entry resident.
        for i in range(4):
            t[0] = float(i)
            store.placement.record_demand(key, t[0])
        t[0] = 3.5  # next arrival predicted at 4.0, inside the lead
        report = store.maintenance()
        assert report["prefetched"] == 1
        # Prefetches land in the DRAM tier, not the fast tier: predictions
        # must never evict resident demand-fetched entries.
        assert store.cpu.peek(key) is not None
        assert store.gpu.peek(key) is None
        # Now the demand fetch is a cheap DRAM hit, no page-in needed.
        result = store.fetch(key)
        assert result is not None and result.source == "cpu"

    def test_peer_prefetch_issued_through_hook(self):
        issued = []
        store = FabricStore(peer_prefetch=lambda key: issued.append(key) or True)
        key = CacheKey("s", "m")
        # Peer candidates need a size hint, which only residency leaves
        # behind: install once, evict by hand, then predict.
        store.put(key, _module_kv(2))
        store.fetch(key)
        store.gpu.remove(key)
        t0 = store.clock()
        for i in range(3):
            store.placement.record_demand(key, t0 + float(i))
        report = store.maintenance(now=t0 + 2.5)
        assert report["peer_issued"] == 1
        assert issued == [key]

    def test_maintenance_without_candidates_is_quiet(self):
        store = FabricStore()
        report = store.maintenance()
        assert report == {"swept": 0, "prefetched": 0, "peer_issued": 0}
        assert store.fabric_snapshot()["maintenance_runs"] == 1


class TestSchedulerHook:
    class _Stream:
        """Minimal duck-typed stream: prefills `n` tokens then finishes."""

        def __init__(self, n):
            self.prefill_remaining = n
            self.decoding = False
            self.done = False
            self.output_ids = []
            self.max_new_tokens = 0

        def prefill_step(self, budget):
            consumed = min(budget, self.prefill_remaining)
            self.prefill_remaining -= consumed
            if self.prefill_remaining == 0:
                self.done = True
            return consumed

        def finish(self):
            return "done"

        def abort(self):
            pass

    def _scheduler(self, maintenance, prefill_tokens, chunk=8):
        from repro.server.request import LiveRequest
        from repro.server.scheduler import ContinuousScheduler

        stream = self._Stream(prefill_tokens)

        class _PC:
            schemas = {}

            def open_stream(self, prompt, max_new_tokens=0):
                return stream

        scheduler = ContinuousScheduler(
            _PC(), prefill_chunk_tokens=chunk, maintenance=maintenance
        )
        request = LiveRequest(request_id="r1", prompt="p", schema="s",
                              max_new_tokens=0, submitted_at=0.0)
        return scheduler, request

    def test_runs_only_with_spare_prefill_capacity(self):
        ticks = []
        scheduler, request = self._scheduler(
            lambda: ticks.append(1), prefill_tokens=20, chunk=8
        )
        scheduler.iterate([request])  # full chunk consumed: no maintenance
        assert ticks == []
        scheduler.iterate([])  # full chunk again (12 -> 4 remaining... )
        scheduler.iterate([])  # 4 < 8: spare capacity, maintenance runs
        assert len(ticks) == 1
        scheduler.iterate([])  # idle: spare capacity every time now
        assert len(ticks) == 2
        assert scheduler.maintenance_runs == 2

    def test_no_hook_no_overhead(self):
        scheduler, request = self._scheduler(None, prefill_tokens=4)
        scheduler.iterate([request])
        assert scheduler.maintenance_runs == 0
