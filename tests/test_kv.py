"""KV containers: buffered growth, concat semantics, byte accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.llm.config import tiny_config
from repro.llm.kv import (
    KVCache,
    LayerKV,
    ModuleKV,
    allocation_count,
    buffered_concat,
    naive_concat,
    reset_allocation_count,
)

RNG = np.random.default_rng(5)


def make_kv(heads=2, head_dim=4):
    return LayerKV(heads, head_dim, capacity=4)


def rand_block(heads, tokens, head_dim):
    return RNG.normal(size=(heads, tokens, head_dim)).astype(np.float32)


class TestLayerKV:
    def test_append_and_views(self):
        kv = make_kv()
        k = rand_block(2, 3, 4)
        v = rand_block(2, 3, 4)
        kv.append(k, v, np.array([0, 1, 2]))
        assert len(kv) == 3
        np.testing.assert_array_equal(kv.keys, k)
        np.testing.assert_array_equal(kv.values, v)
        np.testing.assert_array_equal(kv.positions, [0, 1, 2])

    def test_growth_preserves_contents(self):
        kv = make_kv()
        first_k, first_v = rand_block(2, 4, 4), rand_block(2, 4, 4)
        kv.append(first_k, first_v, np.arange(4))
        kv.append(rand_block(2, 10, 4), rand_block(2, 10, 4), np.arange(4, 14))
        assert len(kv) == 14
        np.testing.assert_array_equal(kv.keys[:, :4], first_k)

    def test_mismatched_lengths_rejected(self):
        kv = make_kv()
        with pytest.raises(ValueError):
            kv.append(rand_block(2, 3, 4), rand_block(2, 2, 4), np.arange(3))

    def test_positions_can_be_gapped(self):
        kv = make_kv()
        gapped = np.array([7, 100, 5000])
        kv.append(rand_block(2, 3, 4), rand_block(2, 3, 4), gapped)
        np.testing.assert_array_equal(kv.positions, gapped)

    def test_copy_is_independent(self):
        kv = make_kv()
        kv.append(rand_block(2, 2, 4), rand_block(2, 2, 4), np.arange(2))
        dup = kv.copy()
        dup.append(rand_block(2, 1, 4), rand_block(2, 1, 4), np.array([2]))
        assert len(kv) == 2 and len(dup) == 3

    def test_from_arrays(self):
        k, v = rand_block(2, 5, 4), rand_block(2, 5, 4)
        kv = LayerKV.from_arrays(k, v, np.arange(5))
        np.testing.assert_array_equal(kv.keys, k)

    def test_nbytes_counts_live_entries_only(self):
        kv = LayerKV(2, 4, capacity=100)
        kv.append(rand_block(2, 3, 4), rand_block(2, 3, 4), np.arange(3))
        # 2 tensors * 2 heads * 3 tokens * 4 dims * 4 bytes + positions
        assert kv.nbytes() == 2 * 2 * 3 * 4 * 4 + 3 * 8

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=7), min_size=1, max_size=6))
    def test_append_sequence_property(self, chunk_sizes):
        kv = make_kv()
        total = 0
        for size in chunk_sizes:
            kv.append(
                rand_block(2, size, 4), rand_block(2, size, 4),
                np.arange(total, total + size),
            )
            total += size
        assert len(kv) == total
        np.testing.assert_array_equal(kv.positions, np.arange(total))


class TestKVCache:
    def test_empty_from_config(self):
        cache = KVCache.empty(tiny_config("llama"))
        assert len(cache.layers) == 2
        assert len(cache) == 0

    def test_length_tracks_layer_zero(self):
        cache = KVCache.empty(tiny_config("llama"))
        for layer in cache.layers:
            layer.append(rand_block(4, 3, 16), rand_block(4, 3, 16), np.arange(3))
        assert len(cache) == 3

    def test_copy_deep(self):
        cache = KVCache.empty(tiny_config("llama"))
        dup = cache.copy()
        dup.layers[0].append(rand_block(4, 1, 16), rand_block(4, 1, 16), np.array([0]))
        assert len(cache) == 0 and len(dup) == 1


class TestBufferedConcat:
    def test_matches_numpy_concatenate(self):
        arrays = [rand_block(2, n, 4) for n in (3, 1, 5)]
        np.testing.assert_array_equal(
            buffered_concat(arrays, axis=1), np.concatenate(arrays, axis=1)
        )

    def test_single_allocation(self):
        arrays = [rand_block(2, n, 4) for n in (2, 2, 2, 2)]
        reset_allocation_count()
        buffered_concat(arrays, axis=1)
        assert allocation_count() == 1

    def test_naive_concat_allocates_per_pair(self):
        arrays = [rand_block(2, n, 4) for n in (2, 2, 2, 2)]
        reset_allocation_count()
        out = naive_concat(arrays, axis=1)
        assert allocation_count() == len(arrays) - 1
        np.testing.assert_array_equal(out, np.concatenate(arrays, axis=1))

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            buffered_concat([])

    def test_axis_zero(self):
        arrays = [rand_block(2, 3, 4), rand_block(1, 3, 4)]
        out = buffered_concat(arrays, axis=0)
        assert out.shape == (3, 3, 4)


class TestModuleKV:
    def make(self, tokens=6):
        return ModuleKV(
            keys=[rand_block(2, tokens, 4) for _ in range(3)],
            values=[rand_block(2, tokens, 4) for _ in range(3)],
            positions=np.arange(10, 10 + tokens),
        )

    def test_len(self):
        assert len(self.make(6)) == 6

    def test_slice(self):
        kv = self.make(6)
        part = kv.slice(2, 5)
        assert len(part) == 3
        np.testing.assert_array_equal(part.positions, [12, 13, 14])
        np.testing.assert_array_equal(part.keys[0], kv.keys[0][:, 2:5, :])

    def test_nbytes(self):
        kv = self.make(6)
        expected = 3 * 2 * (2 * 6 * 4 * 4) + 6 * 8
        assert kv.nbytes() == expected


class TestConcatProperty:
    """Paper §4.2: the buffered operator must be a drop-in replacement —
    bit-for-bit equal to both pairwise and one-shot concatenation."""

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=6),
        heads=st.integers(min_value=1, max_value=4),
        head_dim=st.integers(min_value=1, max_value=8),
        axis=st.sampled_from([0, 1, 2]),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_three_concats_bit_equal(self, sizes, heads, head_dim, axis, seed):
        rng = np.random.default_rng(seed)
        arrays = []
        for n in sizes:
            shape = [heads, 5, head_dim]
            shape[axis] = n
            arrays.append(rng.normal(size=shape).astype(np.float32))
        reference = np.concatenate(arrays, axis=axis)
        buffered = buffered_concat(arrays, axis=axis)
        naive = naive_concat(arrays, axis=axis)
        assert buffered.tobytes() == reference.tobytes()
        assert naive.tobytes() == reference.tobytes()


class TestLayerKVAdopt:
    def test_adopt_shares_buffers_without_copy(self):
        keys = rand_block(2, 8, 4)
        values = rand_block(2, 8, 4)
        positions = np.arange(8)
        kv = LayerKV.adopt(keys, values, positions, length=5)
        assert len(kv) == 5
        assert kv.keys.base is keys  # view, not a copy
        np.testing.assert_array_equal(kv.keys, keys[:, :5, :])

    def test_adopt_appends_into_spare_capacity(self):
        keys = rand_block(2, 8, 4)
        values = rand_block(2, 8, 4)
        kv = LayerKV.adopt(keys, values, np.arange(8), length=5)
        reset_allocation_count()
        kv.append(rand_block(2, 2, 4), rand_block(2, 2, 4), np.array([5, 6]))
        assert allocation_count() == 0  # wrote in place
        assert len(kv) == 7

    def test_adopt_rejects_bad_length(self):
        keys = rand_block(2, 4, 4)
        with pytest.raises(ValueError):
            LayerKV.adopt(keys, keys.copy(), np.arange(4), length=9)


class TestModuleKVArena:
    def make_arena(self, layers=3, tokens=6):
        rng = np.random.default_rng(7)
        shape = (layers, 2, tokens, 4)
        return ModuleKV.from_arenas(
            rng.normal(size=shape).astype(np.float32),
            rng.normal(size=shape).astype(np.float32),
            np.arange(10, 10 + tokens),
        )

    def test_from_arenas_layers_are_views(self):
        kv = self.make_arena()
        assert kv.is_arena
        assert kv.keys[1].base is kv.key_arena
        np.testing.assert_array_equal(kv.keys[1], kv.key_arena[1])

    def test_slice_stays_arena_backed(self):
        kv = self.make_arena()
        part = kv.slice(2, 5)
        assert part.is_arena
        np.testing.assert_array_equal(part.keys[0], kv.keys[0][:, 2:5, :])

    def test_ensure_arena_stacks_per_layer_lists(self):
        flat = ModuleKV(
            keys=[rand_block(2, 6, 4) for _ in range(3)],
            values=[rand_block(2, 6, 4) for _ in range(3)],
            positions=np.arange(6),
        )
        assert not flat.is_arena
        arena = flat.ensure_arena()
        assert arena.is_arena
        for i in range(3):
            np.testing.assert_array_equal(arena.keys[i], flat.keys[i])
