"""Seeded load generator: workload materialization and loop regimes."""

from __future__ import annotations

import asyncio
import time

from repro.cache.engine import BatchServeResult, ServeResult
from repro.cache.storage import ModuleCacheStore
from repro.server import (
    LiveServer,
    ServeOptions,
    build_workload,
    run_closed_loop,
    run_open_loop,
)
from repro.serving import SchemaProfile, synthesize_trace

PROFILES = [
    SchemaProfile("a", module_tokens=30, uncached_mean=6, decode_mean=4, weight=2.0),
    SchemaProfile("b", module_tokens=20, uncached_mean=4, decode_mean=4, weight=1.0),
]


def run(coro):
    return asyncio.run(coro)


class StubEngine:
    def __init__(self, service_s: float = 0.0) -> None:
        self.schemas = {p.name: object() for p in PROFILES}
        self.store = ModuleCacheStore()
        self.service_s = service_s

    def serve_batch(self, prompts, max_new_tokens=16, **kwargs):
        if self.service_s:
            time.sleep(self.service_s)
        results = [
            ServeResult(
                output_ids=[1] * max_new_tokens,
                text="ok",
                prompt_tokens=10,
                cached_tokens=8,
                uncached_tokens=2,
                ttft_s=0.001,
                splice_s=0.0005,
                suffix_s=0.0005,
                step_times_s=[0.0005] * max_new_tokens,
            )
            for _ in prompts
        ]
        return BatchServeResult(
            results=results, physical_bytes=0, duplicated_bytes=0, shared_groups=1
        )


class TestWorkload:
    def test_build_is_deterministic(self, tok):
        w1 = build_workload(PROFILES, tok, seed=3)
        w2 = build_workload(PROFILES, tok, seed=3)
        assert w1.schema_sources == w2.schema_sources
        assert build_workload(PROFILES, tok, seed=4).schema_sources != w1.schema_sources

    def test_module_sized_to_profile(self, tok):
        workload = build_workload(PROFILES, tok, seed=0)
        for profile in PROFILES:
            source = workload.schema_sources[profile.name]
            doc = source.split(">", 2)[2].rsplit("</module", 1)[0]
            assert len(tok.encode(doc)) >= profile.module_tokens

    def test_prompt_unique_per_request_and_stable(self, tok):
        workload = build_workload(PROFILES, tok, seed=0)
        p1 = workload.prompt_for("a", 1, uncached_tokens=6)
        p2 = workload.prompt_for("a", 2, uncached_tokens=6)
        assert p1 != p2
        assert workload.prompt_for("a", 1, uncached_tokens=6) == p1
        assert p1.startswith('<prompt schema="a">')


class TestOpenLoop:
    def test_all_complete_at_low_rate(self, tok):
        workload = build_workload(PROFILES, tok, seed=0)
        trace = synthesize_trace(PROFILES, rate_rps=50.0, duration_s=0.5, seed=0)

        async def main():
            async with LiveServer(
                StubEngine(), ServeOptions(queue_delay_budget_s=None)
            ) as server:
                return await run_open_loop(
                    server, workload, trace, time_scale=0.0
                )

        report = run(main())
        assert report.offered == len(trace)
        assert report.completed == report.submitted == len(trace)
        assert report.rejected == 0
        assert len(report.records) == report.submitted
        # stub serves 8 cached / 2 uncached tokens per request
        assert report.cached_token_fraction == 0.8
        assert report.throughput_rps > 0

    def test_sheds_when_arrivals_outrun_service(self, tok):
        workload = build_workload(PROFILES, tok, seed=0)
        trace = synthesize_trace(PROFILES, rate_rps=100.0, duration_s=0.5, seed=0)

        async def main():
            options = ServeOptions(
                max_queue_depth=2, max_batch=1, queue_delay_budget_s=None,
                batch_max_wait_s=0.0,
            )
            async with LiveServer(StubEngine(service_s=0.02), options) as server:
                return await run_open_loop(
                    server, workload, trace, time_scale=0.0
                )

        report = run(main())
        assert report.rejected > 0
        assert report.completed > 0
        assert report.completed + report.rejected + report.expired == len(trace)

    def test_deadlines_expire_in_open_loop(self, tok):
        workload = build_workload(PROFILES, tok, seed=0)
        trace = synthesize_trace(PROFILES, rate_rps=40.0, duration_s=0.5, seed=0)

        async def main():
            options = ServeOptions(
                max_queue_depth=1000, max_batch=1, queue_delay_budget_s=None,
                batch_max_wait_s=0.0,
            )
            async with LiveServer(StubEngine(service_s=0.05), options) as server:
                return await run_open_loop(
                    server, workload, trace, time_scale=0.0, deadline_s=0.01
                )

        report = run(main())
        assert report.expired > 0
        assert report.completed + report.expired + report.failed == report.submitted


class TestClosedLoop:
    def test_clients_complete_their_quota(self, tok):
        workload = build_workload(PROFILES, tok, seed=0)

        async def main():
            async with LiveServer(
                StubEngine(), ServeOptions(queue_delay_budget_s=None)
            ) as server:
                return await run_closed_loop(
                    server, workload, clients=3, requests_per_client=4, seed=1
                )

        report = run(main())
        assert report.completed == 12
        assert report.failed == 0
        assert len(report.records) == 12
