"""Fleet scheduler: routing policies and cache-affinity behaviour."""

from __future__ import annotations

import pytest

from repro.hw.device import RTX_4090
from repro.llm.config import paper_config
from repro.serving.scheduler import FleetScheduler, POLICIES, compare_policies
from repro.serving.simulator import SimConfig
from repro.serving.traces import SchemaProfile, TraceRequest, synthesize_trace

LLAMA7B = paper_config("llama2-7b")


def config(mode="prompt-cache"):
    return SimConfig(model=LLAMA7B, device=RTX_4090, mode=mode,
                     gpu_capacity_bytes=20 * 10**9)


def request(i, arrival, schema):
    return TraceRequest(
        request_id=i, arrival_s=arrival, schema=schema,
        cached_tokens=3000, uncached_tokens=100, decode_tokens=4,
    )


class TestRouting:
    def test_round_robin_cycles(self):
        scheduler = FleetScheduler(config(), n_servers=3, policy="round-robin")
        trace = [request(i, float(i) * 100, "s0") for i in range(6)]
        report = scheduler.run(trace)
        per_server = [len(s.outcomes) for s in report.servers]
        assert per_server == [2, 2, 2]

    def test_least_loaded_balances(self):
        scheduler = FleetScheduler(config(), n_servers=2, policy="least-loaded")
        trace = [request(i, 0.0, f"s{i}") for i in range(4)]  # all at once
        report = scheduler.run(trace)
        per_server = [len(s.outcomes) for s in report.servers]
        assert per_server == [2, 2]

    def test_affinity_pins_schema_to_home(self):
        scheduler = FleetScheduler(config(), n_servers=4, policy="affinity")
        trace = [request(i, float(i) * 100, "hot-schema") for i in range(5)]
        report = scheduler.run(trace)
        non_empty = [s for s in report.servers if s.outcomes]
        assert len(non_empty) == 1  # no queueing -> everything at home

    def test_affinity_spills_under_pressure(self):
        scheduler = FleetScheduler(
            config(), n_servers=2, policy="affinity", spill_queue_s=0.5
        )
        # A burst at t=0: the home queue exceeds the spill threshold.
        trace = [request(i, 0.0, "hot-schema") for i in range(6)]
        report = scheduler.run(trace)
        non_empty = [s for s in report.servers if s.outcomes]
        assert len(non_empty) == 2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            FleetScheduler(config(), n_servers=2, policy="random")


class TestAffinityEncodes:
    def test_affinity_encodes_once_per_schema(self):
        profiles = [SchemaProfile(f"s{i}", 3000, 100, 4, 1.0) for i in range(8)]
        trace = synthesize_trace(profiles, 1.0, 100, seed=0)
        reports = compare_policies(trace, config(), n_servers=4)
        schemas_seen = len({r.schema for r in trace})
        assert reports["affinity"].total_encodes == schemas_seen
        # Oblivious policies re-encode on multiple servers.
        assert reports["round-robin"].total_encodes > 1.5 * schemas_seen
        assert reports["least-loaded"].total_encodes > 1.5 * schemas_seen

    def test_baseline_mode_indifferent_to_policy(self):
        profiles = [SchemaProfile(f"s{i}", 2000, 100, 4, 1.0) for i in range(4)]
        trace = synthesize_trace(profiles, 0.5, 60, seed=1)
        reports = compare_policies(trace, config(mode="baseline"), n_servers=2)
        for report in reports.values():
            assert report.total_encodes == 0

    def test_fleet_report_metrics(self):
        trace = [request(i, float(i), "s0") for i in range(5)]
        report = FleetScheduler(config(), n_servers=2).run(trace)
        assert report.mean_ttft_s > 0
        assert report.ttft_percentile(50) <= report.ttft_percentile(95)
