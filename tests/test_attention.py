"""Attention kernel: position-derived causality, GQA, masking equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm.attention import (
    attention_scores,
    causal_position_mask,
    merge_heads,
    repeat_kv,
    split_heads,
)
from repro.llm.positional.alibi import AlibiBias

RNG = np.random.default_rng(9)


class TestHeadReshaping:
    def test_split_merge_round_trip(self):
        x = RNG.normal(size=(5, 12)).astype(np.float32)
        assert np.array_equal(merge_heads(split_heads(x, 3)), x)

    def test_split_shape(self):
        x = RNG.normal(size=(7, 8)).astype(np.float32)
        assert split_heads(x, 2).shape == (2, 7, 4)

    def test_repeat_kv_identity(self):
        x = RNG.normal(size=(2, 3, 4)).astype(np.float32)
        assert repeat_kv(x, 1) is x

    def test_repeat_kv_expands_heads(self):
        x = RNG.normal(size=(2, 3, 4)).astype(np.float32)
        out = repeat_kv(x, 3)
        assert out.shape == (6, 3, 4)
        np.testing.assert_array_equal(out[0], out[1])
        np.testing.assert_array_equal(out[0], x[0])
        np.testing.assert_array_equal(out[3], x[1])


class TestCausalMask:
    def test_contiguous_positions_lower_triangular(self):
        mask = causal_position_mask(np.arange(4), np.arange(4))
        np.testing.assert_array_equal(mask, np.tril(np.ones((4, 4), dtype=bool)))

    def test_gapped_positions(self):
        # Query at position 100 sees keys at 5 and 50, not the one at 200.
        mask = causal_position_mask(np.array([100]), np.array([5, 50, 200]))
        np.testing.assert_array_equal(mask[0], [True, True, False])

    def test_suffix_sees_all_cached_modules(self):
        """Prompt Cache's core case: an uncached suffix token positioned
        after every module attends to all of them despite position gaps."""
        module_positions = np.array([0, 1, 2, 50, 51, 52, 90, 91])
        suffix = np.array([200])
        assert causal_position_mask(suffix, module_positions).all()

    def test_module_isolation_during_encoding(self):
        """A module's tokens never see positions after them — module B's
        range is invisible to module A even within one hypothetical pass."""
        a_positions = np.array([0, 1, 2])
        b_positions = np.array([10, 11])
        mask = causal_position_mask(a_positions, b_positions)
        assert not mask.any()


class TestAttentionScores:
    def test_masked_entries_are_large_negative(self):
        q = RNG.normal(size=(1, 2, 4)).astype(np.float32)
        k = RNG.normal(size=(1, 3, 4)).astype(np.float32)
        scores = attention_scores(q, k, np.array([0, 1]), np.array([0, 1, 2]))
        assert scores[0, 0, 1] <= -1e8  # future key masked
        assert scores[0, 0, 2] <= -1e8
        assert scores[0, 1, 2] <= -1e8

    def test_scaling_by_sqrt_head_dim(self):
        q = np.ones((1, 1, 16), dtype=np.float32)
        k = np.ones((1, 1, 16), dtype=np.float32)
        scores = attention_scores(q, k, np.array([0]), np.array([0]))
        assert scores[0, 0, 0] == pytest.approx(16 / 4.0)

    def test_alibi_bias_is_added(self):
        q = RNG.normal(size=(2, 1, 4)).astype(np.float32)
        k = RNG.normal(size=(2, 3, 4)).astype(np.float32)
        qpos, kpos = np.array([10]), np.array([0, 5, 10])
        alibi = AlibiBias(2, 64)
        plain = attention_scores(q, k, qpos, kpos)
        biased = attention_scores(q, k, qpos, kpos, alibi=alibi)
        np.testing.assert_allclose(
            biased - plain, alibi.bias(qpos, kpos), atol=1e-5
        )


class TestGroupedBroadcastPaths:
    """The GQA broadcast matmul must match the np.repeat expansion exactly:
    each 2-D GEMM slice sees identical operands, so results are bit-equal."""

    def scores_via_repeat(self, q, k, n_rep):
        head_dim = q.shape[-1]
        expanded = repeat_kv(k, n_rep)
        return q @ expanded.transpose(0, 2, 1) / np.sqrt(np.float32(head_dim))

    @pytest.mark.parametrize("n_rep", [2, 4])
    @pytest.mark.parametrize("tq,tk", [(1, 7), (5, 5), (9, 23)])
    def test_grouped_scores_bit_equal_to_repeat(self, n_rep, tq, tk):
        from repro.llm.attention import grouped_scores

        n_kv, head_dim = 3, 8
        q = RNG.normal(size=(n_kv * n_rep, tq, head_dim)).astype(np.float32)
        k = RNG.normal(size=(n_kv, tk, head_dim)).astype(np.float32)
        got = grouped_scores(q, k, n_rep)
        want = self.scores_via_repeat(q, k, n_rep)
        assert got.tobytes() == want.tobytes()

    @pytest.mark.parametrize("n_rep", [2, 4])
    def test_grouped_context_bit_equal_to_repeat(self, n_rep):
        from repro.llm.attention import grouped_context

        n_kv, tq, tk, head_dim = 3, 5, 11, 8
        weights = RNG.normal(size=(n_kv * n_rep, tq, tk)).astype(np.float32)
        v = RNG.normal(size=(n_kv, tk, head_dim)).astype(np.float32)
        got = grouped_context(weights, v, n_rep)
        want = weights @ repeat_kv(v, n_rep)
        assert got.tobytes() == want.tobytes()

    def test_n_rep_one_passthrough(self):
        from repro.llm.attention import grouped_context, grouped_scores

        q = RNG.normal(size=(4, 3, 8)).astype(np.float32)
        k = RNG.normal(size=(4, 6, 8)).astype(np.float32)
        got = grouped_scores(q, k, 1)
        want = q @ k.transpose(0, 2, 1) / np.sqrt(np.float32(8))
        assert got.tobytes() == want.tobytes()
        w = RNG.normal(size=(4, 3, 6)).astype(np.float32)
        v = RNG.normal(size=(4, 6, 8)).astype(np.float32)
        assert grouped_context(w, v, 1).tobytes() == (w @ v).tobytes()


class TestDecodeMaskSkip:
    """A single query token at/after every cached key needs no mask; the
    fast path must be invisible (np.where with an all-True mask is the
    identity)."""

    def test_all_true_mask_is_identity(self):
        scores = RNG.normal(size=(2, 1, 9)).astype(np.float32)
        allowed = causal_position_mask(np.array([20]), np.arange(9))
        assert allowed.all()
        masked = np.where(allowed[None, :, :], scores, np.float32(-1e9))
        assert masked.tobytes() == scores.tobytes()

    def test_gapped_future_key_still_masked(self):
        # A cached key *after* the query position must not be attendable,
        # so the fast-path condition (all keys <= query) is required.
        allowed = causal_position_mask(np.array([5]), np.array([1, 2, 9]))
        assert not allowed.all()
