"""Whole-model forward pass and generation-regime equivalences (Fig 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.llm import (
    build_model,
    generate,
    generate_no_cache,
    init_params,
    load_params,
    param_count,
    prefill,
    save_params,
    tiny_config,
)
from repro.llm.config import ModelConfig, paper_config, small_config
from repro.llm.sampling import GreedySampler, TemperatureSampler

PROMPT = [5, 9, 12, 300, 41, 17, 23]


class TestConfig:
    def test_rejects_unknown_architecture(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="x", architecture="rnn", vocab_size=10, d_model=8,
                n_layers=1, n_heads=2, n_kv_heads=2, d_ff=16, max_position=8,
                positional="rope", norm="rmsnorm", mlp="swiglu",
                parallel_block=False,
            )

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="x", architecture="llama", vocab_size=10, d_model=10,
                n_layers=1, n_heads=3, n_kv_heads=3, d_ff=16, max_position=8,
                positional="rope", norm="rmsnorm", mlp="swiglu",
                parallel_block=False,
            )

    def test_kv_bytes_per_token_llama7b(self):
        # Table 2 anchor: Llama2-7B caches 0.5 MiB per token at fp16.
        assert paper_config("llama2-7b").kv_bytes_per_token() == 2 * 32 * 4096 * 2

    def test_paper_catalog_head_dims(self):
        for cfg in (paper_config(n) for n in ("llama2-70b", "falcon-180b", "mpt-30b")):
            assert cfg.d_model == cfg.n_heads * cfg.head_dim

    def test_unknown_paper_model(self):
        with pytest.raises(KeyError):
            paper_config("gpt-5")

    def test_with_vocab(self):
        cfg = tiny_config("llama").with_vocab(999)
        assert cfg.vocab_size == 999


class TestForward:
    def test_logit_shape(self, any_model):
        cache = any_model.new_cache()
        logits = any_model.forward(np.array(PROMPT), np.arange(len(PROMPT)), cache)
        assert logits.shape == (len(PROMPT), any_model.config.vocab_size)
        assert len(cache) == len(PROMPT)

    def test_deterministic(self, any_model):
        a = any_model.forward(np.array(PROMPT), np.arange(len(PROMPT)), any_model.new_cache())
        b = any_model.forward(np.array(PROMPT), np.arange(len(PROMPT)), any_model.new_cache())
        np.testing.assert_array_equal(a, b)

    def test_chunked_prefill_matches_single_pass(self, any_model):
        """Feeding a prompt in two chunks through the KV cache must produce
        the same final logits as one pass — incremental prefill correctness."""
        ids = np.array(PROMPT)
        single = any_model.forward(ids, np.arange(len(ids)), any_model.new_cache())
        cache = any_model.new_cache()
        any_model.forward(ids[:3], np.arange(3), cache)
        chunked = any_model.forward(ids[3:], np.arange(3, len(ids)), cache)
        np.testing.assert_allclose(single[-1], chunked[-1], atol=1e-4)

    def test_shape_mismatch_rejected(self, llama):
        with pytest.raises(ValueError):
            llama.forward(np.array([1, 2, 3]), np.array([0, 1]), llama.new_cache())

    def test_causality_future_tokens_do_not_affect_past(self, any_model):
        """Logits at position i must not change when tokens after i change."""
        base = np.array(PROMPT)
        altered = base.copy()
        altered[-1] = (altered[-1] + 1) % any_model.config.vocab_size
        la = any_model.forward(base, np.arange(len(base)), any_model.new_cache())
        lb = any_model.forward(altered, np.arange(len(base)), any_model.new_cache())
        np.testing.assert_allclose(la[:-1], lb[:-1], atol=1e-5)


class TestGenerationRegimes:
    def test_kv_cache_matches_full_recompute(self, any_model):
        """Fig 1a vs 1b: greedy outputs must be identical."""
        with_cache = generate(any_model, PROMPT, max_new_tokens=6)
        without = generate_no_cache(any_model, PROMPT, max_new_tokens=6)
        assert with_cache.output_ids == without.output_ids

    def test_stop_ids_halt_generation(self, llama):
        probe = generate(llama, PROMPT, max_new_tokens=8)
        first = probe.output_ids[0]
        stopped = generate(llama, PROMPT, max_new_tokens=8, stop_ids={first})
        assert stopped.output_ids == [first]

    def test_result_latency_fields(self, llama):
        result = generate(llama, PROMPT, max_new_tokens=4)
        assert result.ttft_s > 0
        assert len(result.step_times_s) == 3  # first token excluded
        assert result.ttst_s > 0

    def test_prefill_returns_last_logits(self, llama):
        cache = llama.new_cache()
        logits = prefill(llama, np.array(PROMPT), cache)
        assert logits.shape == (llama.config.vocab_size,)

    def test_temperature_sampler_reproducible(self, llama):
        a = generate(llama, PROMPT, max_new_tokens=5, sampler=TemperatureSampler(0.8, seed=3))
        b = generate(llama, PROMPT, max_new_tokens=5, sampler=TemperatureSampler(0.8, seed=3))
        assert a.output_ids == b.output_ids

    def test_greedy_is_argmax(self):
        logits = np.array([0.1, 5.0, -2.0], dtype=np.float32)
        assert GreedySampler()(logits) == 1

    def test_top_k_restricts_support(self):
        sampler = TemperatureSampler(temperature=1.0, top_k=1, seed=0)
        logits = np.array([0.0, 10.0, 0.0], dtype=np.float32)
        assert all(sampler(logits) == 1 for _ in range(5))

    def test_top_p_keeps_most_likely(self):
        sampler = TemperatureSampler(temperature=1.0, top_p=0.01, seed=0)
        logits = np.array([0.0, 10.0, 0.0], dtype=np.float32)
        assert sampler(logits) == 1

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            TemperatureSampler(temperature=0.0)


class TestWeights:
    def test_seeded_init_reproducible(self):
        cfg = tiny_config("llama")
        a = init_params(cfg, seed=1)
        b = init_params(cfg, seed=1)
        assert all(np.array_equal(a[k], b[k]) for k in a)

    def test_different_seeds_differ(self):
        cfg = tiny_config("llama")
        a = init_params(cfg, seed=1)
        b = init_params(cfg, seed=2)
        assert not np.array_equal(a["embed.weight"], b["embed.weight"])

    def test_save_load_round_trip(self, tmp_path):
        cfg = tiny_config("mpt")
        params = init_params(cfg, seed=0)
        path = tmp_path / "weights.npz"
        save_params(params, path)
        loaded = load_params(path)
        assert set(loaded) == set(params)
        assert all(np.array_equal(loaded[k], params[k]) for k in params)

    def test_param_count_positive_and_scales(self):
        small = param_count(init_params(tiny_config("llama"), seed=0))
        bigger = param_count(init_params(small_config("llama", vocab_size=512), seed=0))
        assert 0 < small < bigger

    def test_gpt2_has_biases_and_pos_table(self):
        params = init_params(tiny_config("gpt2"), seed=0)
        assert "pos.weight" in params
        assert "layers.0.attn.bq" in params

    def test_llama_has_no_biases(self):
        params = init_params(tiny_config("llama"), seed=0)
        assert "layers.0.attn.bq" not in params
        assert "layers.0.mlp.gate" in params

    def test_falcon_parallel_block_has_single_norm(self):
        params = init_params(tiny_config("falcon"), seed=0)
        assert "layers.0.attn_norm.weight" in params
        assert "layers.0.mlp_norm.weight" not in params
