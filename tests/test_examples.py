"""Examples stay runnable: import each script and drive its main().

Examples use the `small` model shape; to keep the suite fast only the
quicker ones run here (code_generation's full baseline takes ~15 s and is
covered by the Fig 6 benchmark instead).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "parameterized_prompts", "chat_session", "tiered_serving",
     "serving_load", "live_serving"],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_every_example_has_docstring_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name
        assert "def main()" in source, path.name
        assert '__name__ == "__main__"' in source, path.name


def test_personalization_example_schema_valid():
    from repro.pml import Schema

    module = load_example("personalization")
    schema = Schema.parse(module.build_schema())
    assert len(schema.modules) == 30  # 6 categories x 5 traits


def test_code_generation_example_schema_valid():
    from repro.pml import Schema

    module = load_example("code_generation")
    schema = Schema.parse(module.build_schema())
    assert len(schema.modules) == 4
