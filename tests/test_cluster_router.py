"""Cluster integration: affinity routing, peer fetch, failover, drain.

These tests run real engines (tiny llama) on real loopback sockets; the
cluster's workers share read-only model weights, so any two workers —
and a standalone :class:`PromptCache` — must produce byte-identical
outputs for the same prompt.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.engine import PromptCache
from repro.cache.storage import CacheKey
from repro.cluster import ClusterRouter, ClusterWorker, DEAD, NoWorkerAvailable
from repro.cluster.health import HeartbeatMonitor
from repro.cluster.router import module_tags, routing_key
from repro.pml.parser import parse_prompt
from repro.server.runtime import ServeOptions

SCHEMA_A = (
    '<schema name="alpha"><module name="ctx">the quick brown fox jumps'
    "</module></schema>"
)
SCHEMA_B = (
    '<schema name="beta"><module name="ctx">miami beaches nightlife surf'
    "</module></schema>"
)


def prompt(schema: str, i: int) -> str:
    return f'<prompt schema="{schema}"><ctx/> q{i}</prompt>'


def run(coro):
    return asyncio.run(coro)


def make_cluster(llama, tok, n=2, fabric=False, **router_kwargs):
    options = ServeOptions(
        batch_max_wait_s=0.005, queue_delay_budget_s=None, max_batch=4
    )
    workers = [
        ClusterWorker(
            f"w{i}", llama, tok, options=options, heartbeat_interval_s=0.02,
            fabric=fabric,
        )
        for i in range(n)
    ]
    router_kwargs.setdefault(
        "monitor", HeartbeatMonitor(heartbeat_interval_s=0.02, miss_limit=4)
    )
    router_kwargs.setdefault("watchdog_interval_s", 0.02)
    router = ClusterRouter(workers, **router_kwargs)
    router.register_schema(SCHEMA_A)
    router.register_schema(SCHEMA_B)
    return router


class TestRoutingKey:
    def test_key_is_schema_plus_sorted_imports(self):
        node = parse_prompt(
            '<prompt schema="s"><b/><a/> tail text</prompt>'
        )
        assert routing_key(node) == "s|a,b"

    def test_nested_imports_counted(self):
        node = parse_prompt('<prompt schema="s"><outer><inner/></outer></prompt>')
        assert routing_key(node) == "s|inner,outer"

    def test_text_does_not_change_key(self):
        a = routing_key(parse_prompt('<prompt schema="s"><m/> one</prompt>'))
        b = routing_key(parse_prompt('<prompt schema="s"><m/> two</prompt>'))
        assert a == b

    def test_module_tags_are_schema_qualified(self):
        node = parse_prompt('<prompt schema="s"><b/><a/> tail</prompt>')
        assert module_tags(node) == frozenset({"s/a/solo", "s/b/solo"})

    def test_module_tags_match_store_keys(self):
        # The tags the router matches against residency advertisements
        # must be exactly what a worker's store advertises for the same
        # modules, or residency routing silently never fires.
        node = parse_prompt('<prompt schema="alpha"><ctx/> q</prompt>')
        assert module_tags(node) == {CacheKey("alpha", "ctx").tag()}


class TestAffinityAndPlane:
    def test_same_key_lands_on_same_worker(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                for i in range(4):
                    await router.serve(prompt("alpha", i), max_new_tokens=2)
                return router.snapshot()

        snap = run(scenario())
        placed = {
            series: value
            for series, value in snap["router"]["counters"].items()
            if series.startswith("cluster_requests_total")
        }
        # All four requests share one routing key → exactly one worker.
        assert sorted(placed.values()) == [4.0]

    def test_spilled_worker_fetches_from_peer(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                home_name = router.ring.node_for(router.route_key(prompt("alpha", 0)))
                home = router.workers[home_name]
                (other,) = [w for w in router.workers.values() if w is not home]
                # Warm the home worker: it pays the encode.
                await router.serve(prompt("alpha", 0), max_new_tokens=2)
                # Simulate spill: drive the *other* worker directly with
                # the same schema. Its store is cold — every module need
                # is cross-worker and must be satisfied by peer fetch.
                results = []
                for i in range(5):
                    results.append(
                        await other.server.serve(prompt("alpha", i), max_new_tokens=2)
                    )
                reference = await home.server.serve(prompt("alpha", 0), max_new_tokens=2)
                return other, results, reference

        other, results, reference = run(scenario())
        counters = other.metrics.snapshot()["counters"]
        hits = counters.get('cluster_peer_fetch_total{outcome="hit"}', 0)
        misses = counters.get('cluster_peer_fetch_total{outcome="miss"}', 0)
        # Acceptance: ≥ 80% of cross-worker module needs satisfied by
        # peer fetch (here: all of them — home holds every module).
        assert hits >= 1
        assert hits / max(1, hits + misses) >= 0.8
        assert counters["cluster_reencode_avoided_tokens_total"] > 0
        # Peer-fetched KV serves byte-identically.
        assert results[0].output_ids == reference.output_ids

    def test_peer_fetched_output_matches_single_engine(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                outs = []
                for i in range(3):
                    outs.append(await router.serve(prompt("beta", i), max_new_tokens=4))
                # Same prompts again, forced through the non-home worker
                # so its answer rides on peer-fetched module KV.
                home = router.ring.node_for(router.route_key(prompt("beta", 0)))
                (other,) = [
                    w for n, w in router.workers.items() if n != home
                ]
                spilled = [
                    await other.server.serve(prompt("beta", i), max_new_tokens=4)
                    for i in range(3)
                ]
                return outs, spilled

        outs, spilled = run(scenario())
        pc = PromptCache(llama, tok)
        pc.register_schema(SCHEMA_B)
        for i, (routed, spill) in enumerate(zip(outs, spilled)):
            reference = pc.serve(prompt("beta", i), max_new_tokens=4)
            assert routed.output_ids == reference.output_ids
            assert spill.output_ids == reference.output_ids

    def test_snapshot_aggregates(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                await router.serve(prompt("alpha", 0), max_new_tokens=2)
                await router.serve(prompt("beta", 0), max_new_tokens=2)
                snap = router.snapshot()
                prom = router.prometheus()
            return snap, prom

        snap, prom = run(scenario())
        gauges = snap["router"]["gauges"]
        assert 'cluster_worker_queue_depth{worker="w0"}' in gauges
        assert gauges['server_requests_total{outcome="completed"}'] == 2.0
        assert "cluster_worker_queue_depth" in prom
        assert set(snap["health"]) == {"w0", "w1"}
        assert sum(snap["ring"].values()) == pytest.approx(1.0)


class TestFailureHandling:
    def test_kill_one_worker_loses_no_accepted_requests(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                victim = router.ring.node_for(router.route_key(prompt("alpha", 0)))
                tasks = [
                    asyncio.create_task(
                        router.serve(prompt("alpha", i), max_new_tokens=2)
                    )
                    for i in range(8)
                ]
                # Let the submits land on the victim's queue, then pull
                # the rug while most are still queued.
                await asyncio.sleep(0.01)
                await router.kill_worker(victim)
                results = await asyncio.gather(*tasks)
                snap = router.snapshot()
            return victim, results, snap

        victim, results, snap = run(scenario())
        # Zero lost accepted requests: every waiter got a real result.
        assert len(results) == 8
        assert all(r.output_ids for r in results)
        # Deterministic engines → failover answers match a single engine.
        pc = PromptCache(llama, tok)
        pc.register_schema(SCHEMA_A)
        for i, result in enumerate(results):
            reference = pc.serve(prompt("alpha", i), max_new_tokens=2)
            assert result.output_ids == reference.output_ids
        assert snap["health"][victim]["state"] == DEAD
        counters = snap["router"]["counters"]
        assert counters.get("cluster_rebalance_total", 0) == 1

    def test_watchdog_detects_silent_worker(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                victim = router.workers["w1"]
                # Silence the heartbeat without stopping the worker — the
                # failure mode where a process hangs rather than exits.
                victim._heartbeat_task.cancel()
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if router.monitor.state("w1") == DEAD:
                        break
                state = router.monitor.state("w1")
                in_ring = "w1" in router.ring
                # The cluster still serves from the survivor.
                result = await router.serve(prompt("alpha", 0), max_new_tokens=2)
            return state, in_ring, result

        state, in_ring, result = run(scenario())
        assert state == DEAD
        assert not in_ring
        assert result.output_ids

    def test_all_workers_dead_raises(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                await router.kill_worker("w0")
                await router.kill_worker("w1")
                with pytest.raises(NoWorkerAvailable):
                    await router.serve(prompt("alpha", 0), max_new_tokens=2)

        run(scenario())

    def test_dead_worker_beat_does_not_resurrect(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                await router.kill_worker("w0")
                router.monitor.beat("w0", "up", 0)
                return router.monitor.state("w0")

        assert run(scenario()) == DEAD


class TestDrain:
    def test_graceful_stop_completes_accepted_work(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            await router.start()
            tasks = [
                asyncio.create_task(router.serve(prompt("beta", i), max_new_tokens=2))
                for i in range(6)
            ]
            await asyncio.sleep(0.01)
            await router.stop(drain=True)
            results = await asyncio.gather(*tasks)
            return results

        results = run(scenario())
        assert len(results) == 6
        assert all(r.output_ids for r in results)


class TestRawAffinity:
    """Discovered-prefix affinity for schema-free raw text."""

    def make_discovering_cluster(self, llama, tok, n=2):
        from repro.reuse import DiscoveryConfig

        options = ServeOptions(
            batch_max_wait_s=0.005, queue_delay_budget_s=None, max_batch=4
        )
        workers = [
            ClusterWorker(
                f"w{i}", llama, tok, options=options,
                heartbeat_interval_s=0.02,
                discovery=DiscoveryConfig(min_hits=2, min_tokens=8),
            )
            for i in range(n)
        ]
        return ClusterRouter(
            workers,
            monitor=HeartbeatMonitor(heartbeat_interval_s=0.02, miss_limit=4),
            watchdog_interval_s=0.02,
        )

    def test_shared_prefix_routes_to_one_worker(self, llama, tok):
        # Longer than raw_affinity_tokens, so the fallback prefix bucket
        # sees only shared tokens.
        shared = "the quick brown fox jumps over the lazy dog " * 4

        async def scenario():
            router = self.make_discovering_cluster(llama, tok)
            async with router:
                keys = {
                    router.route_key_text(shared + f"user {i}") for i in range(4)
                }
                # Mining pass: the key may migrate once, when promotion
                # extends the affinity prefix beyond the fallback bucket.
                for i in range(4):
                    await router.serve_text(shared + f"user {i}", max_new_tokens=2)
                before = router.snapshot()
                stable = {
                    router.route_key_text(shared + f"user {i}") for i in range(4, 8)
                }
                for i in range(4, 8):
                    await router.serve_text(shared + f"user {i}", max_new_tokens=2)
                return keys, stable, before, router.snapshot()

        keys, stable, before, after = run(scenario())

        def placements(snap):
            return {
                series: value
                for series, value in snap["router"]["counters"].items()
                if series.startswith("cluster_requests_total")
            }

        # Same token prefix → same ring key, before and after discovery.
        assert len(keys) == 1
        assert len(stable) == 1
        # Post-promotion traffic all lands on one worker.
        deltas = {
            series: after_v - placements(before).get(series, 0.0)
            for series, after_v in placements(after).items()
        }
        assert sorted(v for v in deltas.values() if v > 0) == [4.0]

    def test_discovered_match_makes_key_suffix_free(self, llama, tok):
        # Short prompts: the whole text fits inside the fallback bucket,
        # so pre-discovery keys depend on the unique suffix.
        shared = "the quick brown fox jumps over the lazy dog " * 2

        async def scenario():
            router = self.make_discovering_cluster(llama, tok, n=1)
            async with router:
                before_x = router.route_key_text(shared + "user x")
                before_y = router.route_key_text(shared + "user y")
                for i in range(3):  # promote the shared prefix on w0
                    await router.serve_text(shared + f"user {i}", max_new_tokens=2)
                worker = router.workers["w0"]
                assert worker.pc.discovery.stats.promotions >= 1
                after_x = router.route_key_text(shared + "user x")
                after_y = router.route_key_text(shared + "user y")
                return before_x, before_y, after_x, after_y

        before_x, before_y, after_x, after_y = run(scenario())
        assert before_x.startswith("__raw__|")
        # Pre-discovery the suffix leaks into the bucket; once the miner
        # promotes, the key is exactly the discovered prefix — identical
        # across users, so their requests co-locate.
        assert before_x != before_y
        assert after_x == after_y

    def test_raw_output_matches_standalone_engine(self, llama, tok):
        shared = "paris museums cafes architecture " * 2
        texts = [shared + f"user {i}" for i in range(3)]

        async def scenario():
            router = self.make_discovering_cluster(llama, tok)
            async with router:
                return [
                    await router.serve_text(text, max_new_tokens=3)
                    for text in texts
                ] + [await router.serve_text(texts[0], max_new_tokens=3)]

        results = run(scenario())
        solo = PromptCache(llama, tok)
        for text, result in zip(texts + [texts[0]], results):
            expected = solo.serve_text(text, max_new_tokens=3, observe=False)
            assert result.output_ids == expected.output_ids

    def test_dead_workers_excluded_from_raw_routing(self, llama, tok):
        async def scenario():
            router = self.make_discovering_cluster(llama, tok)
            async with router:
                await router.kill_worker("w0")
                return await router.serve_text(
                    "answer the question using the documents", max_new_tokens=2
                )

        result = run(scenario())
        assert result.output_ids


class TestResidencyRouting:
    """Residency beats the ring: route to workers already holding the KV."""

    async def _warm_other(self, router, schema="alpha"):
        """Warm the non-home worker directly and wait until its heartbeat
        advertises the module, returning (home_name, other_name)."""
        home = router.ring.node_for(router.route_key(prompt(schema, 0)))
        (other,) = [n for n in router.workers if n != home]
        await router.workers[other].server.serve(
            prompt(schema, 0), max_new_tokens=2
        )
        tag = CacheKey(schema, "ctx").tag()
        for _ in range(100):
            await asyncio.sleep(0.02)
            if tag in router.monitor.workers[other].resident:
                return home, other
        raise AssertionError(f"{other} never advertised {tag}")

    def test_resident_worker_beats_ring_home(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                home, other = await self._warm_other(router)
                result = await router.serve(prompt("alpha", 1), max_new_tokens=2)
                return home, other, result, router.snapshot()

        home, other, result, snap = run(scenario())
        counters = snap["router"]["counters"]
        # The ring prefers `home`, but `other` already holds alpha/ctx —
        # residency wins, saving a peer fetch or re-encode.
        assert counters[f'cluster_requests_total{{worker="{other}"}}'] == 1.0
        assert f'cluster_requests_total{{worker="{home}"}}' not in counters
        assert counters["cluster_residency_routed_total"] >= 1
        assert counters["cluster_residency_over_ring_total"] >= 1
        # Residency placement serves byte-identically to a single engine.
        pc = PromptCache(llama, tok)
        pc.register_schema(SCHEMA_A)
        reference = pc.serve(prompt("alpha", 1), max_new_tokens=2)
        assert result.output_ids == reference.output_ids

    def test_health_snapshot_reports_residency(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                home, other = await self._warm_other(router)
                return other, router.snapshot()

        other, snap = run(scenario())
        assert snap["health"][other]["resident"] >= 1

    def test_fallback_to_ring_when_resident_worker_dead(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                home, other = await self._warm_other(router)
                await router.kill_worker(other)
                # The only resident worker is gone: the router must fall
                # back to consistent-hash placement on the survivor.
                result = await router.serve(prompt("alpha", 1), max_new_tokens=2)
                return home, result, router.snapshot()

        home, result, snap = run(scenario())
        counters = snap["router"]["counters"]
        assert counters[f'cluster_requests_total{{worker="{home}"}}'] == 1.0
        assert counters.get("cluster_residency_routed_total", 0) == 0
        pc = PromptCache(llama, tok)
        pc.register_schema(SCHEMA_A)
        reference = pc.serve(prompt("alpha", 1), max_new_tokens=2)
        assert result.output_ids == reference.output_ids

    def test_failover_from_resident_worker_loses_nothing(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok)
            async with router:
                home, other = await self._warm_other(router)
                tasks = [
                    asyncio.create_task(
                        router.serve(prompt("alpha", i), max_new_tokens=2)
                    )
                    for i in range(6)
                ]
                # Requests pile onto the resident worker; kill it while
                # most are still queued — failover must drain zero-loss.
                await asyncio.sleep(0.01)
                await router.kill_worker(other)
                results = await asyncio.gather(*tasks)
                return results

        results = run(scenario())
        assert len(results) == 6
        assert all(r.output_ids for r in results)
        pc = PromptCache(llama, tok)
        pc.register_schema(SCHEMA_A)
        for i, result in enumerate(results):
            reference = pc.serve(prompt("alpha", i), max_new_tokens=2)
            assert result.output_ids == reference.output_ids


class TestFabricCluster:
    """Workers running the five-tier FabricStore inside the cluster plane."""

    def test_fabric_workers_serve_identically(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok, fabric=True)
            async with router:
                outs = [
                    await router.serve(prompt("beta", i), max_new_tokens=3)
                    for i in range(3)
                ]
                for _ in range(100):  # wait out one heartbeat interval
                    await asyncio.sleep(0.02)
                    if any(
                        h.resident for h in router.monitor.workers.values()
                    ):
                        break
                return outs, router.snapshot()

        outs, snap = run(scenario())
        pc = PromptCache(llama, tok)
        pc.register_schema(SCHEMA_B)
        for i, result in enumerate(outs):
            reference = pc.serve(prompt("beta", i), max_new_tokens=3)
            assert result.output_ids == reference.output_ids
        # The serving worker advertises its fabric residency upstream.
        assert any(h["resident"] >= 1 for h in snap["health"].values())

    def test_peer_prefetch_installs_into_dram_tier(self, llama, tok):
        async def scenario():
            router = make_cluster(llama, tok, fabric=True)
            async with router:
                # Warm the home worker through the router, then issue a
                # predictive pull on the other: the fabric's peer hook
                # rides the same plane as demand fetch, fire-and-forget.
                await router.serve(prompt("alpha", 0), max_new_tokens=2)
                home = router.ring.node_for(router.route_key(prompt("alpha", 0)))
                (other,) = [
                    w for n, w in router.workers.items() if n != home
                ]
                key = CacheKey("alpha", "ctx")
                assert other.store.peer_prefetch(key)
                for _ in range(100):
                    await asyncio.sleep(0.02)
                    if other.store.cpu.peek(key) is not None:
                        break
                return other, key

        other, key = run(scenario())
        # Landed in DRAM (never the fast tier: predictions must not evict
        # resident entries), and the plane booked the prefetch.
        assert other.store.cpu.peek(key) is not None
        assert other.store.gpu.peek(key) is None
        counters = other.metrics.snapshot()["counters"]
        assert counters["cluster_peer_prefetch_total"] == 1
