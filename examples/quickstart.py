"""Quickstart: cache a document module once, reuse it across prompts.

Run:  python examples/quickstart.py

Walks the Fig 1c flow: register a schema (modules are encoded and cached),
then serve several prompts that splice the cached attention states and
prefill only their own new text. Compares TTFT against the ordinary
KV-cache baseline on the same content.
"""

from repro import PromptCache, build_model, small_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

SCHEMA = """
<schema name="city-trips">
you are a helpful travel planner . answer using the destination notes .
<module name="miami">
  destination notes for miami : the city has beaches , nightlife , art deco
  architecture , surf spots , cuban food and year round sunshine . visitors
  enjoy the boardwalk and the marina at sunset .
</module>
<module name="paris">
  destination notes for paris : the city has museums , cafes , gothic
  architecture , the louvre , the seine and excellent bakeries . visitors
  enjoy long walks between monuments .
</module>
</schema>
"""

PROMPTS = [
    '<prompt schema="city-trips"><miami/> plan one perfect day .</prompt>',
    '<prompt schema="city-trips"><miami/> what should i eat ?</prompt>',
    '<prompt schema="city-trips"><paris/><miami/> compare the two cities .</prompt>',
]


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)

    print("registering schema (encodes and caches every module) ...")
    pc.register_schema(SCHEMA)

    for prompt in PROMPTS:
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        print(
            f"\nprompt: {prompt[:70]}...\n"
            f"  cached tokens: {cached.cached_tokens:4d}   "
            f"uncached tokens: {cached.uncached_tokens}\n"
            f"  TTFT: baseline {1000 * baseline.ttft_s:7.1f} ms -> "
            f"cached {1000 * cached.ttft_s:6.1f} ms "
            f"({baseline.ttft_s / cached.ttft_s:.1f}x faster)"
        )


if __name__ == "__main__":
    main()
