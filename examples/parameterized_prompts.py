"""Parameterized prompts and the Python-to-PML compiler (paper §3.2.2/§3.2.4, Fig 8).

Run:  python examples/parameterized_prompts.py

Two ways to get the same travel-plan schema:

1. hand-written PML with <param> placeholders and <union> destinations;
2. a plain Python prompt program compiled by @prompt_function — if/elif
   chains become unions, Param-annotated arguments become <param> slots,
   and build_prompt() re-derives the prompt for any argument values.
"""

from repro import PromptCache, build_model, small_config
from repro.pml import Param, prompt_function
from repro.pml.chat import PLAIN_TEMPLATE
from repro.pml.compiler import emit
from repro.tokenizer import default_tokenizer


@prompt_function
def travel(dest, duration: Param(8)):
    """you are an expert travel planner . build an itinerary day by day ."""
    if dest == "miami":
        emit("destination miami : beaches , nightlife , art deco and surf spots . ")
    elif dest == "paris":
        emit("destination paris : museums , cafes , the louvre and the seine . ")
    emit("the trip should last ")
    emit(duration)


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)

    print("compiled schema:\n" + travel.to_pml() + "\n")
    pc.register_schema(travel.to_pml())

    for dest, duration in [("miami", "3 days"), ("paris", "2 weeks"), ("miami", "1 day")]:
        prompt = travel.build_prompt(
            dest=dest, duration=duration,
            extra_text=" highlight the best food stops .",
        )
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        print(
            f"{dest:6s} / {duration:7s}: TTFT {1000 * baseline.ttft_s:6.1f} ms -> "
            f"{1000 * cached.ttft_s:5.1f} ms ({baseline.ttft_s / cached.ttft_s:.1f}x)"
        )


if __name__ == "__main__":
    main()
