"""Two-tier module storage with capacity limits and eviction (paper §4.1).

Run:  python examples/tiered_serving.py

A constrained "GPU" tier (fits only a few modules) backed by a large
"CPU" tier: hot modules stay device-resident, cold ones spill to host
memory and pay the copy path on use. Prints hit rates and byte usage —
the serving-system behaviour the paper sketches as future work (§6).
"""

from repro import build_model, small_config
from repro.cache.engine import PromptCache
from repro.cache.storage import ModuleCacheStore
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

N_DOCS = 10


def build_schema() -> str:
    body = "".join(
        f'<module name="doc{i}">document {i} discusses topic {i} in useful '
        "detail with several paragraphs of background material and notes "
        "that make the module realistically sized . </module>"
        for i in range(N_DOCS)
    )
    return f'<schema name="library">{body}</schema>'


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)

    # Size the GPU tier to hold roughly 3 of the 10 documents.
    probe = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    probe.register_schema(build_schema())
    per_module = probe.store.gpu.used_bytes // (N_DOCS + 1)

    store = ModuleCacheStore(gpu_capacity_bytes=3 * per_module + 1024, policy="lru")
    pc = PromptCache(model, tok, store=store, template=PLAIN_TEMPLATE, default_tier="gpu")
    pc.register_schema(build_schema(), eager=False)

    # Zipf-ish access pattern: doc0 is hot, the tail is cold.
    accesses = [0, 1, 0, 2, 0, 3, 0, 4, 1, 0, 5, 0, 6, 1, 0, 7, 0, 8, 0, 9, 1, 0]
    for doc in accesses:
        pc.serve(f'<prompt schema="library"><doc{doc}/> summarize .</prompt>', max_new_tokens=2)

    print(f"GPU tier: {len(store.gpu.keys())} modules, {store.gpu.used_bytes/1e6:.1f} MB used")
    print(f"  hits {store.gpu.stats.hits}, misses {store.gpu.stats.misses} "
          f"(hit rate {100*store.gpu.stats.hit_rate:.0f}%), evictions {store.gpu.stats.evictions}")
    print(f"CPU tier: {len(store.cpu.keys())} modules, {store.cpu.used_bytes/1e6:.1f} MB used")
    hot = [k.module for k in store.gpu.keys()]
    print(f"device-resident after the run (LRU keeps the hot set): {hot}")


if __name__ == "__main__":
    main()
