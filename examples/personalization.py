"""Personalized recommendations via trait unions (paper §5.6.2, Fig 7).

Run:  python examples/personalization.py

Six trait categories, five traits each; each category is a <union> so its
members share one position range. Every user profile — one trait per
category — reuses the same 30 cached modules.
"""

import itertools

from repro import PromptCache, build_model, small_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

CATEGORIES = {
    "grade": ["freshman", "sophomore", "junior", "senior", "graduate"],
    "proficiency": ["novice", "beginner", "intermediate", "advanced", "expert"],
    "history": ["algebra", "geometry", "calculus", "statistics", "topology"],
    "style": ["visual", "auditory", "kinesthetic", "verbal", "logical"],
    "assessment": ["quiz", "essay", "project", "exam", "presentation"],
    "pace": ["slow", "steady", "brisk", "intensive", "self-paced"],
}


def build_schema() -> str:
    parts = ["<schema name='reader'>you recommend study material . the profile follows ."]
    for category, traits in CATEGORIES.items():
        members = "".join(
            f'<module name="{category}-{trait}">the reader {category} is {trait} '
            f"and material should match a {trait} {category} . </module>"
            for trait in traits
        )
        parts.append(f"<union>{members}</union>")
    parts.append("</schema>")
    return "".join(parts)


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(build_schema())

    # Three different profiles, all served from the same cached traits.
    profiles = [
        {cat: traits[i % len(traits)] for i, (cat, traits) in enumerate(CATEGORIES.items())},
        {cat: traits[0] for cat, traits in CATEGORIES.items()},
        {cat: traits[-1] for cat, traits in CATEGORIES.items()},
    ]
    for profile in profiles:
        imports = "".join(f"<{cat}-{trait}/>" for cat, trait in profile.items())
        prompt = f'<prompt schema="reader">{imports} recommend one study resource .</prompt>'
        cached = pc.serve(prompt, max_new_tokens=8)
        baseline = pc.baseline(prompt, max_new_tokens=8)
        label = ", ".join(profile.values())
        print(
            f"profile [{label}]\n"
            f"  TTFT {1000 * baseline.ttft_s:6.1f} ms -> {1000 * cached.ttft_s:5.1f} ms "
            f"({baseline.ttft_s / cached.ttft_s:.1f}x), "
            f"{cached.cached_tokens} cached / {cached.uncached_tokens} uncached tokens"
        )


if __name__ == "__main__":
    main()
