"""Multi-turn chat with persistent cached context.

Run:  python examples/chat_session.py

Opens a session whose system message and reference document are cached
prompt modules; every turn pays only for its own text. The per-turn prefill
cost stays flat while a naive client would re-send (and re-prefill) the
whole transcript each turn.
"""

from repro import PromptCache, build_model, small_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

SCHEMA = """
<schema name="support">
you are a patient support assistant for the harbor ferry service .
<module name="faq">
  ferry facts : the ferry crosses the bay every forty minutes from dawn to
  midnight . bicycles travel free . the last crossing waits for the night
  train . tickets are cheaper in bundles of ten .
</module>
</schema>
"""

TURNS = [
    "how often does the ferry run ?",
    "can i bring my bicycle ?",
    "is there a discount for commuters ?",
]


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(SCHEMA)

    session = pc.start_session('<prompt schema="support"><faq/></prompt>')
    print(f"session opened with {session.context_tokens} cached context tokens\n")
    for user_text in TURNS:
        turn = session.send(user_text, max_new_tokens=8)
        print(
            f"user: {user_text}\n"
            f"  -> prefilled {turn.uncached_tokens} tokens in "
            f"{1000 * turn.ttft_s:.1f} ms; context now "
            f"{session.context_tokens} tokens"
        )


if __name__ == "__main__":
    main()
