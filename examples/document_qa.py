"""Document QA over the synthetic LongBench-like suite, with real answers.

Run:  python examples/document_qa.py

Uses a *trained* mini model when cached weights exist (run
``python benchmarks/train_table1_models.py`` first for genuinely correct
answers); otherwise falls back to an untrained model and just demonstrates
the serving mechanics. Documents are cached prompt modules; the question
is uncached user text — exactly the paper's LongBench setup (§5.1).
"""

from pathlib import Path

from repro.cache.engine import PromptCache
from repro.datasets.metrics import score
from repro.datasets.suite import build_dataset
from repro.llm import build_model
from repro.llm.config import trained_config
from repro.llm.models import TransformerModel
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

WEIGHTS_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "weights"


def load_engine(tok):
    cfg = trained_config("llama2-7b-mini", vocab_size=tok.vocab_size)
    cached = sorted(WEIGHTS_DIR.glob("llama2-7b-mini-*.npz"))
    if cached:
        from repro.llm.weights import load_params

        print(f"using trained weights: {cached[-1].name}")
        return TransformerModel(cfg, load_params(cached[-1]))
    print("no trained weights found - using an untrained model (answers will be noise)")
    return build_model(cfg, seed=0)


def main() -> None:
    tok = default_tokenizer()
    pc = PromptCache(load_engine(tok), tok, template=PLAIN_TEMPLATE)

    for dataset in ("narrativeqa", "2wikimqa", "triviaqa"):
        samples = build_dataset(dataset, n_samples=3, context_words=150)
        total_base = total_cached = 0.0
        for sample in samples:
            pc.register_schema(sample.schema_pml(), eager=False)
            prompt = sample.prompt_pml()
            baseline = pc.baseline(prompt, max_new_tokens=8)
            cached = pc.serve(prompt, max_new_tokens=8)
            base_text = tok.decode(baseline.output_ids, skip_specials=True)
            total_base += score(sample.metric, base_text, sample.answer)
            total_cached += score(sample.metric, cached.text, sample.answer)
        n = len(samples)
        print(
            f"{dataset:>12}: baseline {sample.metric} {total_base / n:5.1f}   "
            f"cached {total_cached / n:5.1f}"
        )
    print("\nexample answer:", repr(cached.text), "| reference:", repr(sample.answer))


if __name__ == "__main__":
    main()
