"""Live serving runtime vs. the simulator's prediction (paper §6).

Run:  python examples/live_serving.py

Two phases over the same seeded schema pool, both driven through
``repro.server.LiveServer`` — the asyncio runtime that batches, admits,
and sheds requests against the *real* engine:

1. **Steady state** — an open-loop Poisson trace at a sustainable rate is
   served live, then the identical trace is replayed through the
   event-driven simulator using a roofline model calibrated to this host;
   measured and predicted TTFT land side by side.
2. **Overload** — the arrival rate is pushed far past the engine's
   capacity. The bounded admission queue and queue-delay budget shed the
   excess with typed ``Overloaded`` rejections while the runtime keeps
   serving what it admitted.

The run ends with the Prometheus-text metrics snapshot: TTFT histogram
percentiles, request outcomes, and module-store eviction counters (the
GPU tier budget is deliberately too small for the schema pool, so
evictions and demotions are live).
"""

import asyncio

from repro import PromptCache, build_model, tiny_config
from repro.cache.storage import ModuleCacheStore
from repro.hw.calibrate import calibrate_host
from repro.pml.chat import PLAIN_TEMPLATE
from repro.serving import SchemaProfile, SimConfig, simulate, synthesize_trace
from repro.server import LiveServer, ServeOptions, build_workload, run_open_loop
from repro.tokenizer import default_tokenizer

PROFILES = [
    SchemaProfile(f"schema{i}", module_tokens=48, uncached_mean=10,
                  decode_mean=4, weight=1.0 / (i + 1))
    for i in range(3)
]
SEED = 7
GPU_BUDGET = 160_000  # bytes; holds ~2 of the 3 schemas → live evictions


def build_engine():
    tok = default_tokenizer()
    model = build_model(tiny_config("llama", vocab_size=tok.vocab_size), seed=SEED)
    store = ModuleCacheStore(gpu_capacity_bytes=GPU_BUDGET)
    # promote_on_cpu_hit keeps hot modules contending for the bounded GPU
    # tier, so eviction/demotion stays live during serving.
    pc = PromptCache(model, tok, store=store, template=PLAIN_TEMPLATE,
                     promote_on_cpu_hit=True)
    workload = build_workload(PROFILES, tok, seed=SEED)
    workload.register(pc)
    return pc, workload


async def drive(pc, workload, trace, options):
    server = LiveServer(pc, options)
    async with server:
        report = await run_open_loop(server, workload, trace)
    return server, report


def main() -> None:
    pc, workload = build_engine()

    # Phase 1: steady state, live vs simulated prediction for one trace.
    steady = synthesize_trace(PROFILES, rate_rps=12.0, duration_s=2.0, seed=SEED)
    options = ServeOptions(max_queue_depth=32, queue_delay_budget_s=2.0,
                           max_batch=4, batch_max_wait_s=0.01)
    server, live = asyncio.run(drive(pc, workload, steady, options))

    host = calibrate_host().spec
    sim_cfg = SimConfig(model=pc.model.config, device=host, mode="prompt-cache",
                        gpu_capacity_bytes=GPU_BUDGET)
    predicted = simulate(steady, sim_cfg)

    print(f"steady trace: {len(steady)} requests @ 12/s")
    print(f"{'':16} {'TTFT p50':>10} {'TTFT p95':>10}")
    print(f"{'live runtime':16} {1000 * live.ttft_percentile(50):>8.1f}ms "
          f"{1000 * live.ttft_percentile(95):>8.1f}ms")
    print(f"{'simulator':16} {1000 * predicted.ttft_percentile(50):>8.1f}ms "
          f"{1000 * predicted.ttft_percentile(95):>8.1f}ms")
    print(f"cache hit-rate (gpu tier): {pc.store.gpu.stats.hit_rate:.2f}")
    assert live.cached_token_fraction > 0, "live run must hit the cache"

    # Phase 2: overload — demand far beyond capacity, shed at admission.
    overload = synthesize_trace(PROFILES, rate_rps=500.0, duration_s=1.0, seed=SEED)
    options = ServeOptions(max_queue_depth=8, queue_delay_budget_s=0.1,
                           max_batch=4, batch_max_wait_s=0.01)
    server2, shed = asyncio.run(drive(pc, workload, overload, options))

    print(f"\noverload trace: {len(overload)} requests @ 500/s")
    print(f"admitted {shed.submitted}  completed {shed.completed}  "
          f"rejected {shed.rejected}  expired {shed.expired}")
    print(f"admitted-request TTFT p95: {1000 * shed.ttft_percentile(95):.1f}ms "
          f"(queue bounded, so the served tail stays flat)")
    assert shed.rejected > 0, "overload must shed load"
    assert shed.completed > 0, "runtime must stay responsive under overload"

    print("\n--- Prometheus metrics snapshot (overload phase) ---")
    for line in server2.prometheus().splitlines():
        if line.startswith(("server_ttft_seconds_quantile", "server_requests_total",
                            "server_rejections_total", "cache_evictions_total",
                            "cache_tier_hit_rate")):
            print(line)


if __name__ == "__main__":
    main()
