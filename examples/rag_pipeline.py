"""Retrieval-augmented generation over cached prompt modules (paper §6).

Run:  python examples/rag_pipeline.py

"Prompt Cache can directly accelerate in-context RAG, where the
information retrieval system basically serves as a database of prompt
modules." Here: a pool of documents is registered once (every document's
attention states pre-encoded); per query, a BM25 retriever picks top-k
documents and the prompt imports exactly those modules — retrieval returns
*cached KV states*, so each query pays only its own question tokens.
"""

from pathlib import Path

from repro.cache.engine import PromptCache
from repro.datasets.corpus import SyntheticCorpus
from repro.datasets.retrieval import BM25Index
from repro.llm import build_model
from repro.llm.config import trained_config
from repro.llm.models import TransformerModel
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

N_DOCS = 8
WEIGHTS_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "weights"


def load_model(tok):
    cfg = trained_config("llama2-7b-mini", vocab_size=tok.vocab_size)
    cached = sorted(WEIGHTS_DIR.glob("llama2-7b-mini-*.npz"))
    if cached:
        from repro.llm.weights import load_params

        return TransformerModel(cfg, load_params(cached[-1]))
    return build_model(cfg, seed=0)


def main() -> None:
    tok = default_tokenizer()
    pc = PromptCache(load_model(tok), tok, template=PLAIN_TEMPLATE)

    corpus = SyntheticCorpus(seed=99)
    # Attributes are unique across the whole pool (not just per document),
    # so a completion query identifies exactly one fact even when several
    # retrieved modules sit in the context together.
    import numpy as np

    from repro.datasets.corpus import ATTRIBUTES, ENTITIES, Fact, VALUES

    rng = np.random.default_rng(5)
    attrs = list(rng.permutation(ATTRIBUTES))
    entities = list(rng.permutation(ENTITIES))
    docs = []
    for i in range(N_DOCS):
        facts = [
            Fact(
                entity=entities.pop(),
                attribute=attrs.pop(),
                value=str(rng.choice(VALUES)),
            )
            for _ in range(2)
        ]
        docs.append(corpus.document(f"kb{i}", n_words=70, facts=facts))

    # Register the knowledge base once: every document becomes a cached module.
    modules = "".join(
        f'<module name="kb{i}">{doc.text}</module>' for i, doc in enumerate(docs)
    )
    pc.register_schema(f'<schema name="kb">{modules}</schema>')

    index = BM25Index()
    for i, doc in enumerate(docs):
        index.add(f"kb{i}", doc.text)

    # Ask about facts scattered across the pool. k=1: the tiny 2-layer
    # model retrieves reliably within one document; disambiguating across
    # several imported documents needs more capacity (a real-model RAG
    # stack would use k>1 unchanged — the caching mechanics are identical).
    for doc_index in (1, 4, 6):
        fact = docs[doc_index].facts[0]
        query = fact.completion()
        hits = index.search(query, k=1)
        imports = "".join(f"<{hit.doc_id}/>" for hit in hits)
        result = pc.serve(
            f'<prompt schema="kb">{imports} {query}</prompt>', max_new_tokens=4
        )
        retrieved = ", ".join(h.doc_id for h in hits)
        hit_marker = "HIT" if f"kb{doc_index}" in retrieved else "miss"
        print(
            f"query about kb{doc_index} -> retrieved [{retrieved}] ({hit_marker})\n"
            f"  answer: {result.text.strip()!r} (expected {fact.value!r}); "
            f"TTFT {1000 * result.ttft_s:.1f} ms over "
            f"{result.cached_tokens} cached tokens"
        )


if __name__ == "__main__":
    main()
