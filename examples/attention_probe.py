"""Peek inside the model: the induction head that answers questions.

Run:  python examples/attention_probe.py
      (train weights first: python benchmarks/train_table1_models.py)

Loads the trained recall model, asks it a question whose answer lives in a
*cached prompt module*, and prints where the final prompt token actually
attends — demonstrating (1) the trained induction-style retrieval
mechanism and (2) that it operates unchanged across Prompt Cache's module
boundary: the suffix token reaches straight into spliced-in cached states.
"""

from pathlib import Path

import numpy as np

from repro.cache.engine import PromptCache
from repro.datasets.corpus import SyntheticCorpus
from repro.llm.config import trained_config
from repro.llm.introspect import attention_trace, induction_score
from repro.llm.models import TransformerModel
from repro.llm.weights import load_params
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

WEIGHTS_DIR = Path(__file__).resolve().parents[1] / "benchmarks" / "weights"


def main() -> None:
    tok = default_tokenizer()
    weights = sorted(WEIGHTS_DIR.glob("llama2-7b-mini-*.npz"))
    if not weights:
        print("train first: python benchmarks/train_table1_models.py")
        return
    cfg = trained_config("llama2-7b-mini", vocab_size=tok.vocab_size)
    model = TransformerModel(cfg, load_params(weights[-1]))

    corpus = SyntheticCorpus(seed=77)
    doc = corpus.document("probe", n_words=60, n_facts=3)
    fact = doc.facts[1]
    print(f"document fact: {fact.statement()!r}")
    print(f"question:      {fact.completion()!r}\n")

    # Serve through Prompt Cache: the document is a cached module; trace
    # the suffix (question) forward pass.
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(
        f'<schema name="probe"><module name="doc">{doc.text}</module></schema>'
    )
    resolved = pc._resolve(f'<prompt schema="probe"><doc/> {fact.completion()}</prompt>')
    registered = pc.schemas["probe"]
    plan = pc._plan(resolved, registered)
    cache, _, _ = pc._assemble(registered, plan, use_scaffolds=True)
    suffix_ids = np.concatenate([t for t, _ in plan.uncached])
    suffix_pos = np.concatenate([p for _, p in plan.uncached])
    logits, trace = attention_trace(model, suffix_ids, suffix_pos, cache)

    # Where is the answer in the module?
    layout = registered.layout.module("doc")
    doc_ids = list(layout.token_ids)
    value_ids = tok.encode(f" {fact.value}")
    start = next(
        i for i in range(len(doc_ids)) if doc_ids[i : i + len(value_ids)] == value_ids
    )
    fact_positions = {int(layout.positions[start + j]) for j in range(len(value_ids))}

    answer = tok.token_of(int(np.argmax(logits[-1])))
    print(f"model answers: {answer!r} (expected {fact.value!r})")
    for layer in range(trace.n_layers):
        top = trace.top_attended(layer, query_index=-1, k=3)
        marks = [
            f"pos {p}{' <-- answer token' if p in fact_positions else ''} ({w:.2f})"
            for p, w in top
        ]
        print(f"layer {layer} top attention from the final prompt token: " + "; ".join(marks))
    score = induction_score(trace, fact_positions)
    print(f"\nattention mass on the answer tokens (best layer): {score:.2f}")
    print("the suffix token reaches across the module boundary into cached states")


if __name__ == "__main__":
    main()
