"""Code generation with source files as prompt modules (paper §5.6.1).

Run:  python examples/code_generation.py

Each file of a small game project becomes a prompt module (the Fig 6
setup); requests "import" whichever files they need. Because the cached
states are exact for a shared prefix, output matches the uncached baseline
while TTFT drops.
"""

from repro import PromptCache, build_model, small_config
from repro.datasets.codegen import game_codebase, module_name_for
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer


def build_schema() -> str:
    modules = "".join(
        f'<module name="{module_name_for(path)}"><![CDATA[# {path}\n{src}]]></module>'
        for path, src in game_codebase(seed=0).items()
    )
    return f'<schema name="game-project">{modules}</schema>'


REQUESTS = [
    (["unit.py", "map.py"], "write a function that moves every unit one tile north ."),
    (["game.py", "player.py"], "add a method that ends the game when a player surrenders ."),
    (["unit.py", "map.py", "game.py", "player.py"], "sketch the main loop ."),
]


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(build_schema())

    for files, request in REQUESTS:
        imports = "".join(f"<{module_name_for(f)}/>" for f in files)
        prompt = f'<prompt schema="game-project">{imports} {request}</prompt>'
        cached = pc.serve(prompt, max_new_tokens=10)
        baseline = pc.baseline(prompt, max_new_tokens=10)
        identical = cached.output_ids == baseline.output_ids
        print(
            f"files {files}:\n"
            f"  TTFT {1000 * baseline.ttft_s:6.1f} ms -> {1000 * cached.ttft_s:5.1f} ms "
            f"({baseline.ttft_s / cached.ttft_s:.1f}x), output identical: {identical}"
        )


if __name__ == "__main__":
    main()
