"""Batched serving with paged module sharing (paper §3.4).

Run:  python examples/batch_serving.py

Twelve concurrent requests over the same cached document are served via
``PromptCache.serve_batch``: one physical copy of the module's attention
states (refcounted pages), a private copy-on-write fork per request.
Outputs are identical to serving each request alone; memory is a fraction
of the duplicated footprint — the mechanism behind the paper's "larger
working batch size and thus higher throughput" argument.
"""

from repro import PromptCache, build_model, small_config
from repro.pml.chat import PLAIN_TEMPLATE
from repro.tokenizer import default_tokenizer

DOC = (
    "harbor ferry service notes : the ferry crosses the bay every forty "
    "minutes from dawn to midnight . bicycles travel free of charge . the "
    "last crossing waits for the night train . tickets are cheaper in "
    "bundles of ten . the upper deck closes in heavy weather . "
) * 4


def main() -> None:
    tok = default_tokenizer()
    model = build_model(small_config("llama", vocab_size=tok.vocab_size), seed=0)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(f'<schema name="ferry"><module name="faq">{DOC}</module></schema>')

    prompts = [
        f'<prompt schema="ferry"><faq/> customer {i} asks about the service .</prompt>'
        for i in range(12)
    ]
    batch = pc.serve_batch(prompts, max_new_tokens=6)

    solo = pc.serve(prompts[0], max_new_tokens=6)
    print(f"requests:                {len(batch)}")
    print(f"shared module groups:    {batch.shared_groups}")
    print(f"physical KV bytes:       {batch.physical_bytes / 1e6:6.1f} MB")
    print(f"duplicated KV bytes:     {batch.duplicated_bytes / 1e6:6.1f} MB")
    print(f"memory saved by sharing: {100 * batch.memory_savings:.0f}%")
    print(f"outputs match solo path: {batch.results[0].output_ids == solo.output_ids}")


if __name__ == "__main__":
    main()
