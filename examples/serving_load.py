"""Serving under load: Prompt Cache as a system component (paper §6).

Run:  python examples/serving_load.py

Replays a Poisson request trace over Zipf-popular schemas through the
event-driven serving simulator on a modeled RTX 4090, comparing the
baseline KV-cache server against a Prompt Cache server with a 30 GB module
budget (evicted modules demote to host DRAM and pay the PCIe copy).
"""

from repro.hw.device import RTX_4090
from repro.llm.config import paper_config
from repro.serving import SchemaProfile, SimConfig, simulate, synthesize_trace

PROFILES = [
    SchemaProfile(f"schema{i}", module_tokens=4000, uncached_mean=100,
                  decode_mean=12, weight=1.0 / (i + 1))
    for i in range(6)
]


def main() -> None:
    llama = paper_config("llama2-7b")
    print(f"{'rate':>5} {'reqs':>5}   {'baseline p50/p95':>18}   {'prompt-cache p50/p95':>22}")
    for rate in (0.1, 0.2, 0.4, 0.8):
        trace = synthesize_trace(PROFILES, rate, 120, seed=2)
        row = [f"{rate:>5}", f"{len(trace):>5}"]
        for mode in ("baseline", "prompt-cache"):
            cfg = SimConfig(model=llama, device=RTX_4090, mode=mode,
                            gpu_capacity_bytes=30 * 10**9)
            report = simulate(trace, cfg)
            row.append(
                f"{report.ttft_percentile(50):7.2f}s/{report.ttft_percentile(95):7.2f}s"
            )
        print("   ".join(row))
    print("\n(the baseline server saturates ~0.4 req/s; prompt cache holds on)")


if __name__ == "__main__":
    main()
