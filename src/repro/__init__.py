"""Prompt Cache: modular attention reuse for low-latency LLM inference.

A from-scratch reproduction of Gim et al., MLSys 2024. The public API
surface is:

- :class:`repro.PromptCache` — the system: register schemas, serve prompts.
- :mod:`repro.pml` — the Prompt Markup Language (schemas, prompts, the
  Python-to-PML compiler).
- :mod:`repro.llm` — the NumPy transformer engine substrate.
- :mod:`repro.hw` — device latency/memory models for the paper's testbeds.
- :mod:`repro.datasets` — the synthetic LongBench-like evaluation suite.

Quickstart::

    from repro import PromptCache, build_model, tiny_config
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    model = build_model(tiny_config(vocab_size=tok.vocab_size))
    pc = PromptCache(model, tok)
    pc.register_schema('''
        <schema name="cities">
          <module name="miami">Miami has beaches and nightlife.</module>
        </schema>''')
    result = pc.generate('<prompt schema="cities"><miami/>Plan a day.</prompt>')
"""

__version__ = "1.0.0"

from repro.llm import build_model, paper_config, small_config, tiny_config


def __getattr__(name: str):
    # PromptCache pulls in the whole cache/pml tree; import it lazily so
    # `import repro` stays cheap for users who only need the substrates.
    if name == "PromptCache":
        from repro.cache.engine import PromptCache

        return PromptCache
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "PromptCache",
    "build_model",
    "paper_config",
    "small_config",
    "tiny_config",
    "__version__",
]
