"""Training batches: associative recall over the synthetic corpus.

The accuracy experiments (Table 1) need models that genuinely answer the
synthetic tasks. We train on exactly the mechanism those tasks exercise —
retrieve ``the <attr> of <entity> is <value>`` from a document and emit
``<value>`` after the question — plus the summarization variant (emit every
fact statement). A 2-layer transformer learns this with induction-style
attention; the skill then transfers to the evaluation datasets, whose
documents come from the same distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.corpus import SyntheticCorpus

# Mirrors the datasets' directives in miniature (training uses short docs).
QA_PREFIX = "the question is :"
SUM_PREFIX = "begin the summary now :"

# Half of QA examples interleave an eval-style directive between document
# and completion, so the trained retrieval survives the LongBench-like
# instruction text the datasets put there.
DIRECTIVE_SNIPPET = (
    "you are given one or more documents above . read them carefully and "
    "answer with a short phrase ."
)


def qa_bridge(fact) -> str:
    """Completion-style answer prefix: ends with the fact's own
    ``<entity> has <attribute>`` pattern so an induction head can fire on
    the exact bigram it saw in the document (attributes are unique per
    document, making the match unambiguous)."""
    return fact.completion()


@dataclass
class Batch:
    """Padded token batch with next-token targets and loss weights."""

    tokens: np.ndarray  # (B, T) int
    targets: np.ndarray  # (B, T) int, next token at each position
    weights: np.ndarray  # (B, T) float, 1.0 where the target is supervised


def qa_example(
    corpus: SyntheticCorpus, rng, tok, doc_words: int
) -> tuple[list[int], list[tuple[int, int]]]:
    """(token_ids, answer_spans): document + several QA pairs.

    Asking about every fact in the document densifies supervision — each
    forward pass trains several retrievals instead of one."""
    n_facts = int(rng.integers(3, 6))
    words = int(rng.integers(max(doc_words // 2, 20), doc_words * 2))
    doc = corpus.document(
        f"t{rng.integers(1 << 30)}", n_words=words, n_facts=n_facts
    )
    order = rng.permutation(len(doc.facts))
    ids = tok.encode(doc.text)
    spans: list[tuple[int, int]] = []
    for index in order:
        fact = doc.facts[index]
        # The completion prefix alone (no restated question): restating the
        # attribute would plant a nearer false induction match
        # ("tower" -> "does") between the fact and the answer point.
        if rng.random() < 0.5:
            ids += tok.encode(f" {DIRECTIVE_SNIPPET}")
        ids += tok.encode(f" {qa_bridge(fact)}")
        answer_ids = tok.encode(f" {fact.value} .")
        spans.append((len(ids), len(ids) + len(answer_ids)))
        ids += answer_ids
    return ids, spans


def summarization_example(
    corpus: SyntheticCorpus, rng, tok, doc_words: int
) -> tuple[list[int], list[tuple[int, int]]]:
    doc = corpus.document(f"s{rng.integers(1 << 30)}", n_words=doc_words, n_facts=2)
    prompt_ids = tok.encode(f"{doc.text} {SUM_PREFIX}")
    answer_ids = tok.encode(" " + " ".join(f.statement() for f in doc.facts))
    ids = prompt_ids + answer_ids
    return ids, [(len(prompt_ids), len(ids))]


def copy_example(rng, tok, length: int | None = None) -> tuple[list[int], list[tuple[int, int]]]:
    """A random token block repeated twice; the second half is supervised.

    Pure induction: the fastest way to install the previous-token/copy
    head circuit that the recall tasks then reuse (curriculum warmup).
    Block length varies so the learned matching is distance-independent —
    recall facts sit at arbitrary offsets from the question.
    """
    if length is None:
        length = int(rng.integers(8, 90))
    vocab = tok.vocab_size
    block = [int(t) for t in rng.integers(4, vocab, size=length)]
    ids = block + block
    return ids, [(length, 2 * length)]


def make_batch(
    corpus: SyntheticCorpus,
    rng: np.random.Generator,
    tok,
    *,
    batch_size: int = 24,
    doc_words: int = 60,
    summarization_fraction: float = 0.25,
    max_len: int = 320,
    lm_weight: float = 0.02,
    copy_fraction: float = 0.25,
) -> Batch:
    """A mixed copy/QA/summarization batch, padded to the longest sequence.

    Answer positions get weight 1.0; every other (non-pad) position gets
    ``lm_weight`` — light background language modelling accelerates the
    formation of the previous-token heads induction relies on, while
    keeping the retrieval gradient dominant.
    """
    sequences: list[list[int]] = []
    answer_spans: list[list[tuple[int, int]]] = []
    for _ in range(batch_size):
        draw = rng.random()
        if draw < copy_fraction:
            ids, spans = copy_example(rng, tok)
        elif draw < copy_fraction + summarization_fraction:
            ids, spans = summarization_example(corpus, rng, tok, doc_words)
        else:
            ids, spans = qa_example(corpus, rng, tok, doc_words)
        ids = ids[:max_len]
        sequences.append(ids)
        answer_spans.append(
            [(min(a, len(ids)), min(b, len(ids))) for a, b in spans]
        )

    longest = max(len(s) for s in sequences)
    tokens = np.full((batch_size, longest), tok.pad_id, dtype=np.int64)
    targets = np.full((batch_size, longest), tok.pad_id, dtype=np.int64)
    weights = np.zeros((batch_size, longest), dtype=np.float32)
    for row, (ids, spans) in enumerate(zip(sequences, answer_spans)):
        tokens[row, : len(ids)] = ids
        targets[row, : len(ids) - 1] = ids[1:]
        weights[row, : len(ids) - 1] = lm_weight
        for start, stop in spans:
            # Position i predicts token i+1, so the span shifts left by one.
            weights[row, max(start - 1, 0) : stop - 1] = 1.0
    return Batch(tokens=tokens, targets=targets, weights=weights)
