"""Differentiable layers mirroring :mod:`repro.llm.layers` exactly.

Shapes are batched — ``x`` is (B, T, d), attention heads are
(B, H, T, head_dim) — but the arithmetic (constants, epsilons, op order)
matches the inference engine so trained parameters drop straight into
:class:`repro.llm.models.TransformerModel`; the equivalence test checks the
two forwards agree to float tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.train import autograd as ag
from repro.train.autograd import Tensor

_NEG_INF = np.float32(-1e9)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    out = x @ weight.transpose(1, 0)
    if bias is not None:
        out = out + bias
    return out


def rms_norm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    variance = (x * x).mean(axis=-1, keepdims=True)
    return x * ((variance + eps) ** -0.5) * weight


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    return centered * ((variance + eps) ** -0.5) * weight + bias


def silu(x: Tensor) -> Tensor:
    return x * ag.sigmoid(x)


def gelu(x: Tensor) -> Tensor:
    c = float(np.sqrt(2.0 / np.pi).astype(np.float32))
    inner = ag.mul_constant(x + x * x * x * 0.044715, c)
    return x * (ag.tanh(inner) + 1.0) * 0.5


def swiglu_mlp(x: Tensor, gate: Tensor, up: Tensor, down: Tensor) -> Tensor:
    return linear(silu(linear(x, gate)) * linear(x, up), down)


def gelu_mlp(
    x: Tensor,
    up: Tensor,
    up_bias: Tensor | None,
    down: Tensor,
    down_bias: Tensor | None,
) -> Tensor:
    return linear(gelu(linear(x, up, up_bias)), down, down_bias)


def split_heads(x: Tensor, n_heads: int) -> Tensor:
    """(B, T, H*hd) -> (B, H, T, hd)."""
    b, t, width = x.shape
    return x.reshape((b, t, n_heads, width // n_heads)).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """(B, H, T, hd) -> (B, T, H*hd)."""
    b, h, t, hd = x.shape
    return x.transpose(0, 2, 1, 3).reshape((b, t, h * hd))


def rope_apply(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate (B, H, T, hd) by constant per-position cos/sin of shape (T, hd)."""
    half = x.shape[-1] // 2
    first = x[..., :half]
    second = x[..., half:]
    rotated = ag.concat([-second, first], axis=-1)
    return x * Tensor(cos) + rotated * Tensor(sin)


def causal_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mask: np.ndarray,
    alibi_bias: np.ndarray | None = None,
) -> Tensor:
    """Scores -> bias -> mask -> softmax -> context, as in the engine.

    ``mask`` is a boolean (T, T) array, True where attention is allowed;
    masked positions are *replaced* with -1e9 (same as the inference
    kernel's ``np.where``), implemented as multiply+add so it stays
    differentiable where allowed.
    """
    head_dim = q.shape[-1]
    scores = q @ k.transpose(0, 1, 3, 2)
    scores = ag.mul_constant(scores, float(1.0 / np.sqrt(np.float32(head_dim))))
    if alibi_bias is not None:
        scores = ag.add_constant(scores, alibi_bias)
    keep = mask.astype(np.float32)
    scores = ag.mul_constant(scores, keep)
    scores = ag.add_constant(scores, (1.0 - keep) * _NEG_INF)
    return ag.softmax(scores, axis=-1) @ v
