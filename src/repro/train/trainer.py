"""Training loop producing task-capable tiny models for Table 1.

``train_model`` runs a few hundred Adam steps of associative-recall
training; ``load_or_train`` memoizes the result to an ``.npz`` so the
accuracy benchmark pays the training cost once per (architecture, shape).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.datasets.corpus import SyntheticCorpus
from repro.llm.config import ModelConfig
from repro.llm.models import TransformerModel
from repro.llm.weights import init_params, load_params, save_params
from repro.train.autograd import cross_entropy_logits
from repro.train.model import TrainableModel
from repro.train.optim import Adam, cosine_schedule
from repro.train.tasks import make_batch


@dataclass
class TrainConfig:
    steps: int = 1000
    batch_size: int = 24
    lr: float = 2e-3
    doc_words: int = 60
    summarization_fraction: float = 0.2
    copy_warmup_fraction: float = 0.25
    seed: int = 0
    log_every: int = 100


# Per-model training recipes for the Table 1 stand-ins. The wider 13B-mini
# needs more steps for its induction circuit to consolidate.
TRAIN_RECIPES: dict[str, "TrainConfig"] = {}


def recipe_for(model_name: str) -> "TrainConfig":
    return TRAIN_RECIPES.get(model_name, TrainConfig())


@dataclass
class TrainReport:
    final_loss: float
    losses: list[float]
    seconds: float


def train_model(
    config: ModelConfig,
    tok,
    train_cfg: TrainConfig | None = None,
    *,
    verbose: bool = True,
) -> tuple[dict[str, np.ndarray], TrainReport]:
    """Train from seeded init; returns (params, report)."""
    train_cfg = train_cfg or TrainConfig()
    rng = np.random.default_rng(train_cfg.seed)
    corpus = SyntheticCorpus(seed=train_cfg.seed + 1000)
    model = TrainableModel(config, init_params(config, seed=train_cfg.seed))
    optimizer = Adam(model.trainable(), lr=train_cfg.lr)

    losses: list[float] = []
    start = time.perf_counter()
    warmup_steps = int(train_cfg.steps * train_cfg.copy_warmup_fraction)
    for step in range(train_cfg.steps):
        # Two-phase curriculum: pure copy first (installs the induction
        # circuit quickly), then the recall/summarization mixture.
        if step < warmup_steps:
            copy_fraction, sum_fraction = 1.0, 0.0
        else:
            copy_fraction = 0.15
            sum_fraction = train_cfg.summarization_fraction
        batch = make_batch(
            corpus, rng, tok,
            batch_size=train_cfg.batch_size,
            doc_words=train_cfg.doc_words,
            summarization_fraction=sum_fraction,
            copy_fraction=copy_fraction,
        )
        logits = model.forward(batch.tokens)
        loss = cross_entropy_logits(logits, batch.targets, batch.weights)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step(lr=cosine_schedule(step, train_cfg.steps, train_cfg.lr))
        losses.append(float(loss.data))
        if verbose and (step % train_cfg.log_every == 0 or step == train_cfg.steps - 1):
            print(f"[train {config.name}] step {step:4d} loss {losses[-1]:.3f}")
    report = TrainReport(
        final_loss=losses[-1],
        losses=losses,
        seconds=time.perf_counter() - start,
    )
    return model.export_params(), report


def load_or_train(
    config: ModelConfig,
    tok,
    cache_dir: str | Path,
    train_cfg: TrainConfig | None = None,
) -> dict[str, np.ndarray]:
    """Memoized training: one ``.npz`` per (name, vocab, steps, seed)."""
    train_cfg = train_cfg or TrainConfig()
    cache_dir = Path(cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)
    tag = f"{config.name}-v{config.vocab_size}-s{train_cfg.steps}-r{train_cfg.seed}"
    path = cache_dir / f"{tag}.npz"
    if path.exists():
        return load_params(path)
    params, _ = train_model(config, tok, train_cfg)
    save_params(params, path)
    return params


def recall_accuracy(
    model: TransformerModel, tok, *, n_probes: int = 20, seed: int = 7
) -> float:
    """Fraction of held-out recall probes answered exactly (greedy)."""
    from repro.llm.generation import generate
    from repro.train.tasks import qa_bridge

    corpus = SyntheticCorpus(seed=seed + 5000)
    rng = np.random.default_rng(seed)
    hits = 0
    for i in range(n_probes):
        doc = corpus.document(f"probe{i}", n_words=60, n_facts=3)
        fact = doc.facts[int(rng.integers(0, len(doc.facts)))]
        prompt = f"{doc.text} {qa_bridge(fact)}"
        expected = tok.encode(f" {fact.value}")
        result = generate(model, tok.encode(prompt), max_new_tokens=len(expected))
        if result.output_ids[: len(expected)] == expected:
            hits += 1
    return hits / n_probes


TRAIN_RECIPES.update(
    {
        # steps double as weight-cache tags: bumping them forces a retrain
        # under the current task distribution. The wider/parallel-block
        # models need longer schedules for the induction circuit to
        # consolidate.
        "llama2-13b-mini": TrainConfig(steps=1600),
        "falcon-7b-mini": TrainConfig(steps=1400),
    }
)
