"""Minimal reverse-mode automatic differentiation over NumPy arrays.

The paper assumes pretrained checkpoints; offline we must *make* models
that can answer the synthetic tasks, which needs gradients. This is a
small, dependency-free tape-based autograd: a :class:`Tensor` wraps an
``np.ndarray``, records its parents and a backward closure, and
``backward()`` walks the topologically-sorted tape.

Only the operations the transformer needs are implemented; each op's
gradient is verified against central finite differences in the test suite.
"""

from __future__ import annotations

import numpy as np


class Tensor:
    """An array plus (optionally) its gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple = (),
        backward=None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # -- tape -------------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Accumulate gradients into every ``requires_grad`` ancestor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient needs a scalar output")
            grad = np.ones_like(self.data)
        order: list[Tensor] = []
        seen: set[int] = set()

        def topo(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                topo(parent)
            order.append(node)

        topo(self)
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float32)}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad += node_grad
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] += parent_grad
                else:
                    grads[key] = np.asarray(parent_grad, dtype=np.float32)

    def zero_grad(self) -> None:
        self.grad = None

    # -- shape helpers ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # -- operators ------------------------------------------------------------------

    def __add__(self, other):
        return add(self, _wrap(other))

    __radd__ = __add__

    def __mul__(self, other):
        return mul(self, _wrap(other))

    __rmul__ = __mul__

    def __sub__(self, other):
        return add(self, mul(_wrap(other), _wrap(-1.0)))

    def __rsub__(self, other):
        return add(_wrap(other), mul(self, _wrap(-1.0)))

    def __neg__(self):
        return mul(self, _wrap(-1.0))

    def __truediv__(self, other):
        other = _wrap(other)
        return mul(self, power(other, -1.0))

    def __matmul__(self, other):
        return matmul(self, _wrap(other))

    def __pow__(self, exponent: float):
        return power(self, exponent)

    def __getitem__(self, index):
        return getitem(self, index)

    def sum(self, axis=None, keepdims=False):
        return reduce_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        return reduce_mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        return reshape(self, shape if len(shape) > 1 else shape[0])

    def transpose(self, *axes):
        return transpose(self, axes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.data.shape}, grad={self.requires_grad})"


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


# -- primitive ops -------------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data + b.data

    def backward(grad):
        return ((a, _unbroadcast(grad, a.data.shape)), (b, _unbroadcast(grad, b.data.shape)))

    return Tensor(out_data, parents=(a, b), backward=backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data * b.data

    def backward(grad):
        return (
            (a, _unbroadcast(grad * b.data, a.data.shape)),
            (b, _unbroadcast(grad * a.data, b.data.shape)),
        )

    return Tensor(out_data, parents=(a, b), backward=backward)


def power(a: Tensor, exponent: float) -> Tensor:
    out_data = a.data**exponent

    def backward(grad):
        return ((a, grad * exponent * a.data ** (exponent - 1.0)),)

    return Tensor(out_data, parents=(a,), backward=backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out_data = a.data @ b.data

    def backward(grad):
        grad_a = grad @ np.swapaxes(b.data, -1, -2)
        grad_b = np.swapaxes(a.data, -1, -2) @ grad
        return (
            (a, _unbroadcast(grad_a, a.data.shape)),
            (b, _unbroadcast(grad_b, b.data.shape)),
        )

    return Tensor(out_data, parents=(a, b), backward=backward)


def reduce_sum(a: Tensor, axis=None, keepdims=False) -> Tensor:
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis)
        return ((a, np.broadcast_to(g, a.data.shape).copy()),)

    return Tensor(out_data, parents=(a,), backward=backward)


def reduce_mean(a: Tensor, axis=None, keepdims=False) -> Tensor:
    count = a.data.size if axis is None else a.data.shape[axis]
    return reduce_sum(a, axis=axis, keepdims=keepdims) * (1.0 / count)


def reshape(a: Tensor, shape) -> Tensor:
    out_data = a.data.reshape(shape)

    def backward(grad):
        return ((a, grad.reshape(a.data.shape)),)

    return Tensor(out_data, parents=(a,), backward=backward)


def transpose(a: Tensor, axes) -> Tensor:
    axes = tuple(axes)
    out_data = a.data.transpose(axes)
    inverse = tuple(np.argsort(axes))

    def backward(grad):
        return ((a, grad.transpose(inverse)),)

    return Tensor(out_data, parents=(a,), backward=backward)


def getitem(a: Tensor, index) -> Tensor:
    out_data = a.data[index]

    def backward(grad):
        full = np.zeros_like(a.data)
        np.add.at(full, index, grad)
        return ((a, full),)

    return Tensor(out_data, parents=(a,), backward=backward)


def concat(tensors: list[Tensor], axis: int = -1) -> Tensor:
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        pieces = []
        for t, start, stop in zip(tensors, offsets, offsets[1:]):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, stop)
            pieces.append((t, grad[tuple(index)]))
        return tuple(pieces)

    return Tensor(out_data, parents=tuple(tensors), backward=backward)


def exp(a: Tensor) -> Tensor:
    out_data = np.exp(a.data)

    def backward(grad):
        return ((a, grad * out_data),)

    return Tensor(out_data, parents=(a,), backward=backward)


def tanh(a: Tensor) -> Tensor:
    out_data = np.tanh(a.data)

    def backward(grad):
        return ((a, grad * (1.0 - out_data**2)),)

    return Tensor(out_data, parents=(a,), backward=backward)


def sigmoid(a: Tensor) -> Tensor:
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return ((a, grad * out_data * (1.0 - out_data)),)

    return Tensor(out_data, parents=(a,), backward=backward)


def embedding(table: Tensor, token_ids: np.ndarray) -> Tensor:
    """Row gather with scatter-add backward (the embedding lookup)."""
    token_ids = np.asarray(token_ids)
    out_data = table.data[token_ids]

    def backward(grad):
        full = np.zeros_like(table.data)
        np.add.at(full, token_ids.reshape(-1), grad.reshape(-1, table.data.shape[-1]))
        return ((table, full),)

    return Tensor(out_data, parents=(table,), backward=backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out_data = e / e.sum(axis=axis, keepdims=True)

    def backward(grad):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return ((a, out_data * (grad - dot)),)

    return Tensor(out_data, parents=(a,), backward=backward)


def add_constant(a: Tensor, constant: np.ndarray) -> Tensor:
    """Add a non-differentiable array (attention masks, ALiBi bias)."""
    out_data = a.data + constant

    def backward(grad):
        return ((a, grad),)

    return Tensor(out_data, parents=(a,), backward=backward)


def mul_constant(a: Tensor, constant) -> Tensor:
    out_data = a.data * constant

    def backward(grad):
        return ((a, grad * constant),)

    return Tensor(out_data, parents=(a,), backward=backward)


def cross_entropy_logits(
    logits: Tensor, targets: np.ndarray, weights: np.ndarray | None = None
) -> Tensor:
    """Mean cross-entropy over ``targets`` (flattened last axis = vocab).

    ``weights`` (same shape as ``targets``) selects/weights positions —
    the trainer uses it to supervise only answer tokens.
    """
    flat_logits = logits.data.reshape(-1, logits.data.shape[-1])
    flat_targets = np.asarray(targets).reshape(-1)
    if weights is None:
        flat_weights = np.ones(flat_targets.shape[0], dtype=np.float32)
    else:
        flat_weights = np.asarray(weights, dtype=np.float32).reshape(-1)
    total_weight = max(float(flat_weights.sum()), 1e-8)

    shifted = flat_logits - flat_logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1))
    log_probs = shifted[np.arange(flat_targets.shape[0]), flat_targets] - log_z
    loss_value = -(flat_weights * log_probs).sum() / total_weight

    def backward(grad):
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=-1, keepdims=True)
        probs[np.arange(flat_targets.shape[0]), flat_targets] -= 1.0
        probs *= (flat_weights / total_weight)[:, None]
        return ((logits, (grad * probs).reshape(logits.data.shape)),)

    return Tensor(np.float32(loss_value), parents=(logits,), backward=backward)
