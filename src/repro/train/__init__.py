"""Training substrate: NumPy autograd + trainer for task-capable tiny models.

The paper evaluates pretrained checkpoints; offline we substitute tiny
models trained from scratch on the synthetic tasks (DESIGN.md §2), so the
Table 1 accuracy comparison measures real retrieval behaviour rather than
noise. The autograd engine, differentiable model, optimizer and task
generators all live here; nothing in the inference path depends on them.
"""

from repro.train.autograd import Tensor, cross_entropy_logits
from repro.train.model import TrainableModel
from repro.train.optim import Adam, cosine_schedule
from repro.train.tasks import Batch, make_batch, qa_example, summarization_example
from repro.train.trainer import (
    TrainConfig,
    TrainReport,
    load_or_train,
    recall_accuracy,
    train_model,
)

__all__ = [
    "Tensor", "cross_entropy_logits",
    "TrainableModel", "Adam", "cosine_schedule",
    "Batch", "make_batch", "qa_example", "summarization_example",
    "TrainConfig", "TrainReport", "train_model", "load_or_train",
    "recall_accuracy",
]
