"""Optimizer and schedule for the tiny-model trainer."""

from __future__ import annotations

import numpy as np

from repro.train.autograd import Tensor


class Adam:
    """Standard Adam with bias correction and optional gradient clipping."""

    def __init__(
        self,
        params: dict[str, Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        clip_norm: float | None = 1.0,
    ) -> None:
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.clip_norm = clip_norm
        self.step_count = 0
        self._m = {name: np.zeros_like(p.data) for name, p in params.items()}
        self._v = {name: np.zeros_like(p.data) for name, p in params.items()}

    def global_grad_norm(self) -> float:
        total = 0.0
        for p in self.params.values():
            if p.grad is not None:
                total += float(np.sum(p.grad.astype(np.float64) ** 2))
        return float(np.sqrt(total))

    def step(self, lr: float | None = None) -> None:
        lr = self.lr if lr is None else lr
        self.step_count += 1
        scale = 1.0
        if self.clip_norm is not None:
            norm = self.global_grad_norm()
            if norm > self.clip_norm:
                scale = self.clip_norm / (norm + 1e-12)
        bc1 = 1.0 - self.beta1**self.step_count
        bc2 = 1.0 - self.beta2**self.step_count
        for name, p in self.params.items():
            if p.grad is None:
                continue
            grad = p.grad * scale
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            p.data -= lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params.values():
            p.zero_grad()


def cosine_schedule(step: int, total_steps: int, base_lr: float, warmup: int = 20) -> float:
    """Linear warmup then cosine decay to 10% of base."""
    if step < warmup:
        return base_lr * (step + 1) / warmup
    progress = (step - warmup) / max(total_steps - warmup, 1)
    return base_lr * (0.1 + 0.9 * 0.5 * (1.0 + np.cos(np.pi * min(progress, 1.0))))
