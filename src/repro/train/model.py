"""Differentiable transformer forward sharing the inference param layout.

``forward`` consumes the exact parameter dict produced by
:func:`repro.llm.weights.init_params` (wrapped in autograd Tensors), so a
trained parameter set drops directly into the inference engine. The math
mirrors :class:`repro.llm.models.TransformerModel` — verified to float
tolerance by ``tests/test_train_model.py``.
"""

from __future__ import annotations

import numpy as np

from repro.llm.config import ModelConfig
from repro.llm.positional.alibi import AlibiBias
from repro.llm.positional.rope import RotaryEmbedding
from repro.train import autograd as ag
from repro.train import functional as F
from repro.train.autograd import Tensor


class TrainableModel:
    """Config + Tensor parameters + differentiable batched forward."""

    def __init__(self, config: ModelConfig, params: dict[str, np.ndarray]) -> None:
        self.config = config
        self.params: dict[str, Tensor] = {
            name: Tensor(value, requires_grad=True) for name, value in params.items()
        }
        self._rope = (
            RotaryEmbedding(config.head_dim, config.max_position, config.rope_theta)
            if config.positional == "rope"
            else None
        )
        self._alibi = (
            AlibiBias(config.n_heads, config.max_position)
            if config.positional == "alibi"
            else None
        )

    # -- parameter plumbing -----------------------------------------------------

    def trainable(self) -> dict[str, Tensor]:
        return self.params

    def export_params(self) -> dict[str, np.ndarray]:
        """Plain arrays for the inference engine / serialization."""
        return {name: tensor.data.copy() for name, tensor in self.params.items()}

    def zero_grad(self) -> None:
        for tensor in self.params.values():
            tensor.zero_grad()

    def _p(self, name: str) -> Tensor:
        return self.params[name]

    def _maybe(self, name: str) -> Tensor | None:
        return self.params.get(name)

    def _norm(self, x: Tensor, prefix: str) -> Tensor:
        if self.config.norm == "rmsnorm":
            return F.rms_norm(x, self._p(f"{prefix}.weight"))
        return F.layer_norm(x, self._p(f"{prefix}.weight"), self._p(f"{prefix}.bias"))

    def _mlp(self, x: Tensor, i: int) -> Tensor:
        if self.config.mlp == "swiglu":
            return F.swiglu_mlp(
                x,
                self._p(f"layers.{i}.mlp.gate"),
                self._p(f"layers.{i}.mlp.up"),
                self._p(f"layers.{i}.mlp.down"),
            )
        return F.gelu_mlp(
            x,
            self._p(f"layers.{i}.mlp.up"),
            self._maybe(f"layers.{i}.mlp.up_bias"),
            self._p(f"layers.{i}.mlp.down"),
            self._maybe(f"layers.{i}.mlp.down_bias"),
        )

    # -- forward --------------------------------------------------------------------

    def forward(self, token_ids: np.ndarray, position_ids: np.ndarray | None = None) -> Tensor:
        """Batched forward: ``token_ids`` (B, T) -> logits Tensor (B, T, V)."""
        token_ids = np.atleast_2d(np.asarray(token_ids))
        batch, seq = token_ids.shape
        if position_ids is None:
            position_ids = np.arange(seq)
        position_ids = np.asarray(position_ids)
        cfg = self.config

        hidden = ag.embedding(self._p("embed.weight"), token_ids)
        if cfg.positional == "learned":
            hidden = hidden + ag.embedding(self._p("pos.weight"), position_ids)

        cos = sin = None
        if self._rope is not None:
            cos = self._rope._cos[position_ids]
            sin = self._rope._sin[position_ids]
        alibi_bias = (
            self._alibi.bias(position_ids, position_ids)[None, :, :, :]
            if self._alibi is not None
            else None
        )
        mask = position_ids[None, :] <= position_ids[:, None]

        for i in range(cfg.n_layers):
            normed = self._norm(hidden, f"layers.{i}.attn_norm")
            attn_out = self._attention(normed, i, cos, sin, mask, alibi_bias)
            if cfg.parallel_block:
                hidden = hidden + attn_out + self._mlp(normed, i)
            else:
                hidden = hidden + attn_out
                hidden = hidden + self._mlp(self._norm(hidden, f"layers.{i}.mlp_norm"), i)

        hidden = self._norm(hidden, "final_norm")
        return hidden @ self._p("embed.weight").transpose(1, 0)

    def _attention(
        self, x: Tensor, i: int, cos, sin, mask: np.ndarray, alibi_bias
    ) -> Tensor:
        cfg = self.config
        q = F.split_heads(
            F.linear(x, self._p(f"layers.{i}.attn.wq"), self._maybe(f"layers.{i}.attn.bq")),
            cfg.n_heads,
        )
        k = F.split_heads(
            F.linear(x, self._p(f"layers.{i}.attn.wk"), self._maybe(f"layers.{i}.attn.bk")),
            cfg.n_kv_heads,
        )
        v = F.split_heads(
            F.linear(x, self._p(f"layers.{i}.attn.wv"), self._maybe(f"layers.{i}.attn.bv")),
            cfg.n_kv_heads,
        )
        if cos is not None:
            q = F.rope_apply(q, cos, sin)
            k = F.rope_apply(k, cos, sin)
        if cfg.n_kv_heads != cfg.n_heads:
            raise NotImplementedError("GQA training is not needed for the tiny models")
        context = F.causal_attention(q, k, v, mask, alibi_bias)
        return F.linear(
            F.merge_heads(context),
            self._p(f"layers.{i}.attn.wo"),
            self._maybe(f"layers.{i}.attn.bo"),
        )
