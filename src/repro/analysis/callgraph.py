"""Project-wide call graph over :class:`~repro.analysis.engine.SourceModule`.

The per-module rules of :mod:`repro.analysis.rules` are deliberately
lexical; the flow analyses (:mod:`repro.analysis.flow`) need to follow
facts *through calls* — a lease released by a helper, a lock acquired
three frames down. This module builds the index they share:

- every function/method in the analyzed set, keyed by a stable
  qualified name (``path::Class.method`` / ``path::function``);
- per-class attribute types inferred from ``__init__`` assignments
  (``self.store = ModuleCacheStore()`` makes ``self.store.put`` resolve
  to ``ModuleCacheStore.put``);
- best-effort call resolution: ``self.helper()``, ``self.attr.method()``
  through the inferred attribute type, bare module-level calls,
  ``Class()`` constructors (resolved to ``Class.__init__``), and
  project-unique method names as a fallback.

Resolution is sound-ish, not complete: an unresolvable call returns no
targets and the analyses treat it conservatively. That keeps the engine
fast and the findings trustworthy — exactly the bar the lexical rules
set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.engine import SourceModule

__all__ = ["FunctionInfo", "ProjectIndex"]


@dataclass
class FunctionInfo:
    """One function or method definition in the analyzed project."""

    qualname: str  # "relpath::Class.method" or "relpath::function"
    name: str
    cls: str | None
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def params(self) -> list[str]:
        args = self.node.args
        return [a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)]


@dataclass
class ClassInfo:
    name: str
    module: SourceModule
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    # self.<attr> -> class name inferred from __init__ construction.
    attr_types: dict[str, str] = field(default_factory=dict)


#: Method names ubiquitous on builtin/stdlib containers and primitives.
#: A call through an *unknown* receiver with one of these names is far
#: more likely a dict/list/str/queue/future than the project's only
#: class with that method — never resolve them by uniqueness alone.
_AMBIENT_METHODS = frozenset({
    "accept", "acquire", "add", "append", "appendleft", "astype", "bind",
    "cancel", "clear", "close", "connect", "copy", "count", "decode",
    "discard", "done", "empty", "encode", "endswith", "exception",
    "extend", "fileno", "fill", "flush", "format", "full", "get",
    "get_nowait", "index", "insert", "is_alive", "is_set", "item",
    "items", "join", "keys", "listen", "lstrip", "map", "move_to_end",
    "notify", "notify_all", "open", "pop", "popitem", "popleft", "put",
    "put_nowait", "qsize", "read", "readline", "readlines", "recv",
    "release", "remove", "replace", "reshape", "result", "reverse",
    "rsplit", "rstrip", "run", "seek", "send", "set", "setdefault",
    "shutdown", "sort", "split", "start", "startswith", "strip",
    "submit", "tell", "tolist", "update", "values", "wait", "write",
})


def _call_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _constructed_class(value: ast.AST, known: set[str]) -> str | None:
    """The known class constructed by ``value``, peeling ``a or B()``."""
    if isinstance(value, ast.BoolOp):
        for operand in value.values:
            found = _constructed_class(operand, known)
            if found is not None:
                return found
        return None
    if isinstance(value, ast.Call):
        name = _call_name(value.func)
        if name in known:
            return name
    return None


class ProjectIndex:
    """Functions, classes, and call resolution for one analyzed tree."""

    def __init__(self, modules: list[SourceModule]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        self._module_scope: dict[str, dict[str, FunctionInfo]] = {}
        for module in modules:
            self._index_module(module)
        class_names = set(self.classes)
        for cls in self.classes.values():
            self._infer_attr_types(cls, class_names)

    # -- indexing ----------------------------------------------------------------

    def _index_module(self, module: SourceModule) -> None:
        scope: dict[str, FunctionInfo] = {}
        self._module_scope[module.relpath] = scope
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.relpath}::{node.name}",
                    name=node.name, cls=None, module=module, node=node,
                )
                self.functions[info.qualname] = info
                scope[node.name] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(module, node)

    def _index_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        cls = ClassInfo(
            name=node.name, module=module, node=node,
            bases=[b for b in (_call_name(base) for base in node.bases) if b],
        )
        # Last definition wins on a (rare) cross-module name clash; the
        # analyses only need *a* consistent body for the name.
        self.classes[node.name] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module.relpath}::{node.name}.{item.name}",
                    name=item.name, cls=node.name, module=module, node=item,
                )
                self.functions[info.qualname] = info
                cls.methods[item.name] = info
                self._methods_by_name.setdefault(item.name, []).append(info)

    def _infer_attr_types(self, cls: ClassInfo, known: set[str]) -> None:
        init = cls.methods.get("__init__")
        if init is None:
            return
        for stmt in ast.walk(init.node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            constructed = _constructed_class(value, known)
            if constructed is None:
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cls.attr_types[target.attr] = constructed

    # -- lookup ------------------------------------------------------------------

    def method(self, cls_name: str, method_name: str) -> FunctionInfo | None:
        """Resolve a method through ``cls_name``'s MRO-by-name."""
        seen: set[str] = set()
        queue = [cls_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            cls = self.classes.get(name)
            if cls is None:
                continue
            if method_name in cls.methods:
                return cls.methods[method_name]
            queue.extend(cls.bases)
        return None

    def class_of(self, info: FunctionInfo) -> ClassInfo | None:
        return self.classes.get(info.cls) if info.cls else None

    # -- call resolution ---------------------------------------------------------

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> list[FunctionInfo]:
        """Possible targets of ``call`` from inside ``caller`` (possibly
        empty — the caller must treat unresolved calls conservatively)."""
        fn = call.func
        if isinstance(fn, ast.Name):
            # Bare name: constructor, same-module function, or a
            # project-unique module-level function.
            if fn.id in self.classes:
                init = self.method(fn.id, "__init__")
                return [init] if init else []
            scope = self._module_scope.get(caller.module.relpath, {})
            if fn.id in scope:
                return [scope[fn.id]]
            candidates = [
                info
                for per_module in self._module_scope.values()
                for name, info in per_module.items()
                if name == fn.id
            ]
            return candidates if len(candidates) == 1 else []
        if not isinstance(fn, ast.Attribute):
            return []
        # self.method(...)
        if isinstance(fn.value, ast.Name) and fn.value.id == "self" and caller.cls:
            target = self.method(caller.cls, fn.attr)
            if target is not None:
                return [target]
            return []
        # self.attr.method(...) through the inferred attribute type.
        if (
            isinstance(fn.value, ast.Attribute)
            and isinstance(fn.value.value, ast.Name)
            and fn.value.value.id == "self"
            and caller.cls
        ):
            cls = self.classes.get(caller.cls)
            attr_type = cls.attr_types.get(fn.value.attr) if cls else None
            if attr_type is not None:
                target = self.method(attr_type, fn.attr)
                return [target] if target else []
        # Module-qualified or unknown receiver: fall back to a
        # project-unique method name — unless the name is ambient on
        # builtin containers, where uniqueness proves nothing.
        if fn.attr in _AMBIENT_METHODS:
            return []
        candidates = self._methods_by_name.get(fn.attr, [])
        return candidates if len(candidates) == 1 else []
