"""Static analysis and runtime sanitizers for the serving hot path.

Where :mod:`repro.pml.lint` lints user-authored schemas, this package
lints — and dynamically audits — the reproduction's own code:

- :mod:`repro.analysis.engine` — a small pluggable AST rule engine with
  per-line ``# noqa`` suppressions, severities, a committed findings
  baseline (rename-surviving via ``--baseline-remap``), and parallel
  scanning;
- :mod:`repro.analysis.rules` — the shipped per-module rules:
  ``guarded-by``, ``async-hygiene``, ``no-bare-broad-except``,
  ``kv-contract``, ``noqa-justification``;
- :mod:`repro.analysis.callgraph` — the project-wide call graph the
  flow analyses share;
- :mod:`repro.analysis.flow` — interprocedural flow analyses:
  ``lease-lifecycle`` (abstract interpretation of KV lease/page
  lifecycles) and ``lock-order`` (static lock graph + cycle check
  against the declared canonical order);
- :mod:`repro.analysis.locks` — ``ordered_lock``/``assert_unheld``, the
  runtime half of the lock-order contract (zero-cost when lockdep is
  off);
- :mod:`repro.analysis.contracts` — the :func:`shape_contract` decorator
  the ``kv-contract`` rule cross-checks (runtime-enforced when
  sanitizers are on);
- :mod:`repro.analysis.sanitize` — ``REPRO_SANITIZE=1`` runtime
  sanitizers: the paged-KV refcount/lease auditor, the splice-plan
  validator, and the :class:`LockDep` acquisition-order recorder;
- :mod:`repro.analysis.sarif` — SARIF 2.1.0 export for code-scanning
  upload.

Run it with ``python -m repro.analysis`` or ``repro analyze``.
"""

from repro.analysis.contracts import (
    ContractViolation,
    enforce_contracts,
    shape_contract,
)
from repro.analysis.engine import (
    Finding,
    ProjectRule,
    Rule,
    SourceModule,
    analyze_paths,
    load_baseline,
    new_findings,
    remap_baseline,
    write_baseline,
)
from repro.analysis.flow import LeaseLifecycleRule, LockOrderRule
from repro.analysis.locks import assert_unheld, ordered_lock
from repro.analysis.rules import (
    AsyncHygieneRule,
    BroadExceptRule,
    DEFAULT_RULES,
    GuardedByRule,
    KVContractRule,
    NoqaJustificationRule,
    default_rules,
    rules_by_name,
)
from repro.analysis.sanitize import (
    LockDep,
    PageAuditor,
    SanitizerError,
    active_auditor,
    assert_quiescent,
    install_sanitizers,
    sanitizers_enabled,
    uninstall_sanitizers,
    validate_layout,
    validate_plan,
)
from repro.analysis.sarif import to_sarif, write_sarif

__all__ = [
    "AsyncHygieneRule",
    "BroadExceptRule",
    "ContractViolation",
    "DEFAULT_RULES",
    "Finding",
    "GuardedByRule",
    "KVContractRule",
    "LeaseLifecycleRule",
    "LockDep",
    "LockOrderRule",
    "NoqaJustificationRule",
    "PageAuditor",
    "ProjectRule",
    "Rule",
    "SanitizerError",
    "SourceModule",
    "active_auditor",
    "analyze_paths",
    "assert_quiescent",
    "assert_unheld",
    "default_rules",
    "enforce_contracts",
    "install_sanitizers",
    "load_baseline",
    "new_findings",
    "ordered_lock",
    "remap_baseline",
    "rules_by_name",
    "sanitizers_enabled",
    "shape_contract",
    "to_sarif",
    "uninstall_sanitizers",
    "validate_layout",
    "validate_plan",
    "write_baseline",
    "write_sarif",
]
