"""Static analysis and runtime sanitizers for the serving hot path.

Where :mod:`repro.pml.lint` lints user-authored schemas, this package
lints — and dynamically audits — the reproduction's own code:

- :mod:`repro.analysis.engine` — a small pluggable AST rule engine with
  per-line ``# noqa`` suppressions and a committed findings baseline;
- :mod:`repro.analysis.rules` — the shipped rules: ``guarded-by``,
  ``async-hygiene``, ``no-bare-broad-except``, ``kv-contract``;
- :mod:`repro.analysis.contracts` — the :func:`shape_contract` decorator
  the ``kv-contract`` rule cross-checks (runtime-enforced when
  sanitizers are on);
- :mod:`repro.analysis.sanitize` — ``REPRO_SANITIZE=1`` runtime
  sanitizers: the paged-KV refcount/lease auditor and the splice-plan
  validator.

Run it with ``python -m repro.analysis`` or ``repro analyze``.
"""

from repro.analysis.contracts import (
    ContractViolation,
    enforce_contracts,
    shape_contract,
)
from repro.analysis.engine import (
    Finding,
    Rule,
    SourceModule,
    analyze_paths,
    load_baseline,
    new_findings,
    write_baseline,
)
from repro.analysis.rules import (
    AsyncHygieneRule,
    BroadExceptRule,
    DEFAULT_RULES,
    GuardedByRule,
    KVContractRule,
    default_rules,
)
from repro.analysis.sanitize import (
    PageAuditor,
    SanitizerError,
    active_auditor,
    assert_quiescent,
    install_sanitizers,
    sanitizers_enabled,
    uninstall_sanitizers,
    validate_layout,
    validate_plan,
)

__all__ = [
    "AsyncHygieneRule",
    "BroadExceptRule",
    "ContractViolation",
    "DEFAULT_RULES",
    "Finding",
    "GuardedByRule",
    "KVContractRule",
    "PageAuditor",
    "Rule",
    "SanitizerError",
    "SourceModule",
    "active_auditor",
    "analyze_paths",
    "assert_quiescent",
    "default_rules",
    "enforce_contracts",
    "install_sanitizers",
    "load_baseline",
    "new_findings",
    "sanitizers_enabled",
    "shape_contract",
    "uninstall_sanitizers",
    "validate_layout",
    "validate_plan",
    "write_baseline",
]
