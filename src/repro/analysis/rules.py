"""Codebase rules for the serving hot path's concurrency invariants.

Four rules ship by default, each targeting a regression class that the
tier-1 tests cannot reliably catch (they mostly run single-threaded and
unsanitized):

- :class:`GuardedByRule` — lock discipline for fields annotated
  ``# guarded-by: <lock>`` at their ``__init__`` assignment;
- :class:`AsyncHygieneRule` — no blocking calls or await-free spin loops
  inside ``async def`` (the event loop must keep admitting/shedding);
- :class:`BroadExceptRule` — a broad ``except`` must re-raise or use the
  caught exception (silent swallows hide engine bugs from operators);
- :class:`KVContractRule` — functions whose parameters name KV tensors
  must declare their shapes via
  :func:`repro.analysis.contracts.shape_contract`;
- :class:`NoWriteToMappedRule` — no in-place mutation of ``key_arena`` /
  ``value_arena`` attributes (snapshot-attached modules share those
  arenas read-only across workers; mutate a private copy instead).
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import Finding, ProjectRule, Rule, SourceModule

__all__ = [
    "AsyncHygieneRule",
    "BroadExceptRule",
    "DEFAULT_RULES",
    "GuardedByRule",
    "KVContractRule",
    "NoWriteToMappedRule",
    "NoqaJustificationRule",
    "default_rules",
    "rules_by_name",
]

_GUARDED_BY = re.compile(r"#\s*guarded-by:\s*(?P<lock>\w+)")


def _function_defs(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


class GuardedByRule(Rule):
    """Fields annotated ``# guarded-by: <lock>`` in ``__init__`` must only
    be touched inside ``with self.<lock>:`` elsewhere in the class.

    The annotation is the registration: no central config to drift from
    the code. Limitations (by design, to stay fast and predictable): the
    check is lexical per-class — helper methods *documented* as
    lock-held should take the re-entrant lock themselves, and cross-object
    accesses (``other.field``) are out of scope.
    """

    name = "guarded-by"
    description = "lock-annotated fields accessed outside their lock"

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: SourceModule, cls: ast.ClassDef) -> list[Finding]:
        guarded = self._registered_fields(module, cls)
        if not guarded:
            return []
        findings: list[Finding] = []
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # registration site; objects are private until shared
            findings.extend(self._check_method(module, method, guarded))
        return findings

    def _registered_fields(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> dict[str, str]:
        """field name -> lock attribute, from annotated ``__init__`` lines."""
        guarded: dict[str, str] = {}
        for method in cls.body:
            if not (isinstance(method, ast.FunctionDef) and method.name == "__init__"):
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    continue
                match = _GUARDED_BY.search(module.line_text(stmt.lineno))
                if not match:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if _is_self_attr(target):
                        guarded[target.attr] = match.group("lock")
        return guarded

    def _check_method(
        self,
        module: SourceModule,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        guarded: dict[str, str],
    ) -> list[Finding]:
        findings: list[Finding] = []

        def visit(node: ast.AST, held: frozenset[str]) -> None:
            if isinstance(node, ast.With):
                acquired = {
                    item.context_expr.attr
                    for item in node.items
                    if _is_self_attr(item.context_expr)
                }
                inner = held | acquired
                for child in ast.iter_child_nodes(node):
                    visit(child, inner)
                return
            if _is_self_attr(node) and node.attr in guarded:
                lock = guarded[node.attr]
                if lock not in held:
                    findings.append(
                        module.finding(
                            self.name,
                            node,
                            f"field 'self.{node.attr}' is guarded by "
                            f"'self.{lock}' but accessed in {method.name}() "
                            f"outside 'with self.{lock}:'",
                        )
                    )
                return  # attribute chains below self.<field> are covered
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in method.body:
            visit(stmt, frozenset())
        return findings


_BLOCKING_CALLS = {
    ("time", "sleep"): "time.sleep() blocks the event loop; use asyncio.sleep()",
    ("os", "system"): "os.system() blocks the event loop; use a subprocess executor",
    ("subprocess", "run"): "subprocess.run() blocks the event loop",
    ("subprocess", "check_output"): "subprocess.check_output() blocks the event loop",
}
_BLOCKING_METHODS = {
    "read_text": "blocking file read inside async code; run it in an executor",
    "write_text": "blocking file write inside async code; run it in an executor",
    "read_bytes": "blocking file read inside async code; run it in an executor",
    "write_bytes": "blocking file write inside async code; run it in an executor",
}


class AsyncHygieneRule(Rule):
    """No blocking calls or await-free ``while`` loops in ``async def``.

    The live server's whole design rests on a responsive loop (admission
    and shedding continue while the engine computes in an executor); one
    ``time.sleep`` or busy-wait in a coroutine silently serializes it.
    """

    name = "async-hygiene"
    description = "blocking calls / await-free loops inside async functions"

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _function_defs(module.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            for node in self._walk_own(fn):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_call(module, node))
                elif isinstance(node, ast.While):
                    findings.extend(self._check_loop(module, node))
        return findings

    def _walk_own(self, fn: ast.AsyncFunctionDef):
        """Walk ``fn`` without descending into nested function defs —
        a nested sync helper is the *caller's* concern only if awaited."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, module: SourceModule, call: ast.Call) -> list[Finding]:
        fn = call.func
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
            message = _BLOCKING_CALLS.get((fn.value.id, fn.attr))
            if message:
                return [module.finding(self.name, call, message)]
            message = _BLOCKING_METHODS.get(fn.attr)
            if message:
                return [module.finding(self.name, call, f"{fn.attr}(): {message}")]
        if isinstance(fn, ast.Name) and fn.id == "open":
            return [
                module.finding(
                    self.name, call,
                    "open() inside async code blocks the event loop; "
                    "run file I/O in an executor",
                )
            ]
        return []

    def _check_loop(self, module: SourceModule, loop: ast.While) -> list[Finding]:
        for node in ast.walk(loop):
            if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith, ast.Break)):
                return []
        # Bounded compute over locals is fine; what starves the loop is
        # spinning on a condition only *other* tasks can change — an
        # unconditional loop or one polling shared ``self`` state.
        unbounded = (
            isinstance(loop.test, ast.Constant) and bool(loop.test.value)
        ) or any(_is_self_attr(node) for node in ast.walk(loop.test))
        if not unbounded:
            return []
        return [
            module.finding(
                self.name, loop,
                "'while' loop in a coroutine never awaits; it starves the "
                "event loop (await inside, or make the work synchronous)",
            )
        ]


class BroadExceptRule(Rule):
    """Broad ``except`` handlers must re-raise or use the exception.

    ``except Exception: pass`` in the serving path converts engine bugs
    into silently dropped requests. A handler passes if it re-raises,
    binds the exception (``as exc``) *and* references it, or carries a
    ``# noqa: no-bare-broad-except`` justification.
    """

    name = "no-bare-broad-except"
    description = "broad except handlers that swallow the exception"

    _BROAD = {"Exception", "BaseException"}

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and self._is_broad(node):
                if not self._handles(node):
                    findings.append(
                        module.finding(
                            self.name, node,
                            "broad 'except' swallows the exception: re-raise, "
                            "record it ('as exc' and use it), or justify with "
                            "'# noqa: no-bare-broad-except'",
                        )
                    )
        return findings

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = (
            handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
        )
        return any(
            isinstance(name, ast.Name) and name.id in self._BROAD for name in names
        )

    def _handles(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False


_KV_PARAM_SETS = (frozenset({"keys", "values"}), frozenset({"key_arena", "value_arena"}))


class KVContractRule(Rule):
    """Functions whose parameters name KV tensors must declare shapes.

    A parameter list containing both ``keys`` and ``values`` (or both
    arena names) marks a function as handling ``(…, T, head_dim)``
    attention state; it must carry ``@shape_contract(...)`` with a spec
    for each such parameter so the contract is both documented and
    runtime-checkable under ``REPRO_SANITIZE=1``.
    """

    name = "kv-contract"
    description = "KV-tensor functions missing a shape_contract declaration"

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for fn in _function_defs(module.tree):
            params = {
                arg.arg
                for arg in (
                    fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
                )
                if arg.arg not in ("self", "cls")
            }
            kv_params: set[str] = set()
            for wanted in _KV_PARAM_SETS:
                if wanted <= params:
                    kv_params |= wanted
            if not kv_params:
                continue
            declared = self._declared(fn)
            if declared is None:
                findings.append(
                    module.finding(
                        self.name, fn,
                        f"{fn.name}() takes KV tensors "
                        f"({', '.join(sorted(kv_params))}) but declares no "
                        "@shape_contract",
                    )
                )
                continue
            missing = sorted(kv_params - declared)
            if missing:
                findings.append(
                    module.finding(
                        self.name, fn,
                        f"{fn.name}()'s @shape_contract omits KV parameters: "
                        f"{', '.join(missing)}",
                    )
                )
        return findings

    def _declared(self, fn) -> set[str] | None:
        """Keyword names of the shape_contract decorator, or None."""
        for deco in fn.decorator_list:
            if not isinstance(deco, ast.Call):
                continue
            target = deco.func
            name = (
                target.id
                if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute) else None
            )
            if name == "shape_contract":
                return {kw.arg for kw in deco.keywords if kw.arg}
        return None


_ARENA_ATTRS = {"key_arena", "value_arena"}
_FILL_METHODS = {"fill", "sort", "partition", "put", "itemset"}
_COPYING_CALLS = {"copy", "ascontiguousarray", "array", "copyto_private", "ensure_arena"}


class NoWriteToMappedRule(ProjectRule):
    """No in-place mutation of arrays reachable from a ``ModuleKV`` arena.

    Snapshot-attached modules expose ``key_arena``/``value_arena`` as
    views over a read-only file mapping shared by every worker on the
    host; a subscript store, ``np.copyto`` destination, or ``.fill()``
    on such an attribute either crashes (read-only map) or corrupts
    sibling workers (writable map). Mutations must go through an explicit
    private copy (``.copy()``, ``ensure_arena()`` on a view, …) — the
    copy call in the expression chain is the copy-on-write guard the rule
    looks for. Suppress deliberate cases with
    ``# noqa: no-write-to-mapped``.

    The rule is interprocedural: passing an arena into a helper that
    subscript-stores through the parameter is flagged at the call site
    (the lexical scan alone can't see through ``_blit(dst, src)``).
    """

    name = "no-write-to-mapped"
    description = "in-place writes into (possibly memmap-backed) KV arenas"

    def check_project(self, modules: list[SourceModule]) -> list[Finding]:
        from repro.analysis.flow import mapped_write_helper_findings

        findings: list[Finding] = []
        for module in modules:
            findings.extend(self._check_module(module))
        findings.extend(
            mapped_write_helper_findings(modules, self._arena_expr, self._flag)
        )
        return findings

    def check(self, module: SourceModule) -> list[Finding]:
        # The lexical scan still works standalone (single-module tests);
        # the engine routes ProjectRules through check_project instead.
        return self._check_module(module)

    def _check_module(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    arena = self._arena_expr(target)
                    if arena is not None:
                        findings.append(self._flag(module, node, arena, "subscript store"))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
        return findings

    def _check_call(self, module: SourceModule, call: ast.Call) -> list[Finding]:
        fn = call.func
        # <expr>.key_arena.fill(...) and friends mutate in place.
        if isinstance(fn, ast.Attribute) and fn.attr in _FILL_METHODS:
            arena = self._arena_expr(fn.value)
            if arena is not None:
                return [self._flag(module, call, arena, f".{fn.attr}() call")]
        # np.copyto(dst, src) writes its first argument.
        if (
            isinstance(fn, ast.Attribute)
            and fn.attr == "copyto"
            and call.args
        ):
            arena = self._arena_expr(call.args[0])
            if arena is not None:
                return [self._flag(module, call, arena, "np.copyto destination")]
        return []

    def _arena_expr(self, node: ast.AST) -> str | None:
        """The arena attribute name when ``node`` writes through one —
        peeling subscripts/slices — or None. An expression that passed
        through an explicit copying call (``kv.key_arena.copy()[…]``) is
        private memory and exempt."""
        seen = node
        while True:
            if isinstance(seen, ast.Subscript):
                seen = seen.value
                continue
            if isinstance(seen, ast.Call):
                fn = seen.func
                name = (
                    fn.attr if isinstance(fn, ast.Attribute)
                    else fn.id if isinstance(fn, ast.Name) else None
                )
                if name in _COPYING_CALLS:
                    return None  # explicit copy-on-write guard
                return None  # arbitrary call result: not provably an arena
            if isinstance(seen, ast.Attribute) and seen.attr in _ARENA_ATTRS:
                return seen.attr
            return None

    def _flag(self, module: SourceModule, node: ast.AST, arena: str, how: str) -> Finding:
        return module.finding(
            self.name, node,
            f"in-place write into '{arena}' ({how}): arenas may be "
            "snapshot-mapped and shared read-only across workers — mutate "
            "an explicit private copy, or justify with "
            "'# noqa: no-write-to-mapped'",
        )


class NoqaJustificationRule(Rule):
    """Every ``# noqa`` suppression must say *why*.

    A suppression is a standing exception to a rule; without a recorded
    reason the next editor can't tell a deliberate invariant from a
    stale workaround. The justification rides in the same comment, after
    the rule list: ``# noqa: guarded-by - snapshot is private here``.
    Blanket ``# noqa`` (no rule names) is always a finding — name the
    rule being silenced.
    """

    name = "noqa-justification"
    description = "noqa suppressions lacking a justification"
    severity = "warning"

    def check(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for comment in module.noqa_comments:
            if comment.justified:
                continue
            if not comment.names:
                message = (
                    "blanket '# noqa' suppresses every rule with no "
                    "justification: name the rule(s) and append a reason "
                    "('# noqa: <rule> - why')"
                )
            else:
                shown = ", ".join(comment.names)
                message = (
                    f"'# noqa: {shown}' has no justification: append a "
                    "reason after the rule list ('# noqa: "
                    f"{comment.names[0]} - why')"
                )
            findings.append(
                module.finding(
                    self.name, comment.line, message, severity=self.severity
                )
            )
        return findings


def default_rules() -> list[Rule]:
    from repro.analysis.flow import LeaseLifecycleRule, LockOrderRule

    return [
        GuardedByRule(),
        AsyncHygieneRule(),
        BroadExceptRule(),
        KVContractRule(),
        NoWriteToMappedRule(),
        NoqaJustificationRule(),
        LeaseLifecycleRule(),
        LockOrderRule(),
    ]


def rules_by_name() -> dict[str, type[Rule]]:
    """Registry used to rebuild rules across the process-pool boundary
    and to resolve ``--rules`` selections by name."""
    return {rule.name: type(rule) for rule in default_rules()}


DEFAULT_RULES = default_rules()
