"""Ordered lock construction: the bridge between the static lock-order
rule and the runtime lockdep recorder.

Production code creates its long-lived locks through
:func:`ordered_lock`, naming the lock and (optionally) declaring which
locks may legally be held while acquiring it::

    self._lock = ordered_lock("store")
    self._fastpath_lock = ordered_lock("engine.fastpath", after=("store",))

The declaration is consumed twice:

- **statically** — the ``lock-order`` rule (:mod:`repro.analysis.flow`)
  reads the literal arguments straight from the AST, merges them with
  ``# lock-order:`` comment annotations, and checks every observed
  acquisition nesting in the codebase against the declared partial
  order;
- **dynamically** — under ``REPRO_SANITIZE=1`` the sanitizers install a
  :class:`~repro.analysis.sanitize.LockDep` recorder here, and every
  lock created *after* installation is wrapped so real acquisition
  edges are recorded and checked while tests run.

Zero-cost-off: with no recorder installed (the production default)
:func:`ordered_lock` returns a plain ``threading.RLock`` /
``threading.Lock`` — no wrapper object, no per-acquire overhead,
nothing to opt out of.
"""

from __future__ import annotations

import threading

__all__ = ["assert_unheld", "ordered_lock", "set_lockdep"]

# The runtime lockdep recorder (repro.analysis.sanitize.LockDep), or
# None in production. Installed by install_sanitizers().
_LOCKDEP = None


def set_lockdep(dep) -> None:
    """Install (or clear, with ``None``) the runtime lockdep recorder.

    Only locks created while a recorder is installed are tracked; locks
    that already exist stay plain. The test conftest installs sanitizers
    before any engine is built, so sanitized runs track every lock that
    matters.
    """
    global _LOCKDEP
    _LOCKDEP = dep


def active_lockdep():
    return _LOCKDEP


def ordered_lock(name: str, *, after: tuple[str, ...] = (), reentrant: bool = True):
    """A named lock participating in the project-wide acquisition order.

    ``name`` is the lock's canonical identity (shared by every instance
    guarding the same subsystem — e.g. both cache tiers share the store
    lock and the name ``"store"``). ``after`` lists locks that may be
    held when this one is acquired; each entry declares a canonical
    order edge ``other -> name``. Acquiring in the reverse direction is
    a lock-order violation, statically and at runtime.
    """
    inner: threading.RLock | threading.Lock
    inner = threading.RLock() if reentrant else threading.Lock()
    dep = _LOCKDEP
    if dep is None:
        return inner
    dep.declare(name, after)
    return _TrackedLock(name, inner, reentrant)


def assert_unheld(name: str) -> None:
    """Raise (via the recorder) if the calling thread holds ``name``.

    Guards code that is *documented* as running outside a lock — e.g.
    the store's miss fetcher blocks on network I/O and must never run
    under the store lock. No-op in production.
    """
    dep = _LOCKDEP
    if dep is not None:
        dep.assert_unheld(name)


class _TrackedLock:
    """A named lock that reports acquisition edges to the recorder.

    The order check runs *before* blocking on the inner lock, so an
    inverted acquisition is reported even when the schedule happens not
    to deadlock this run — the whole point of lockdep.
    """

    __slots__ = ("name", "_inner", "_reentrant")

    def __init__(self, name: str, inner, reentrant: bool) -> None:
        self.name = name
        self._inner = inner
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        dep = _LOCKDEP
        if dep is not None:
            dep.on_acquire(self.name, reentrant=self._reentrant)
        acquired = self._inner.acquire(blocking, timeout)
        if not acquired and dep is not None:
            dep.on_release(self.name)
        return acquired

    def release(self) -> None:
        dep = _LOCKDEP
        if dep is not None:
            dep.on_release(self.name)
        self._inner.release()

    def __enter__(self) -> "_TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<_TrackedLock {self.name!r} inner={self._inner!r}>"
