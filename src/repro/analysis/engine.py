"""Pluggable AST lint engine for the repository's own source.

The PML schema linter (:mod:`repro.pml.lint`) checks *user* inputs; this
engine checks *us*. It walks Python sources, hands each parsed module to
a set of :class:`Rule` objects, and reports :class:`Finding`\\ s with

- **per-line suppressions** — ``# noqa`` silences every rule on that
  line, ``# noqa: rule-a, rule-b`` silences the named rules (a
  justification after the rule list is encouraged and ignored);
- **a committed baseline** — known findings are fingerprinted into a
  JSON file so CI can fail on *new* findings only, letting rules land
  before the codebase is fully clean.

Fingerprints hash the rule, the file, and the stripped source line (plus
an occurrence index for identical lines), so findings survive unrelated
line drift but a genuinely new violation always counts as new.

Rules are small classes over :class:`SourceModule`; registration is a
list, not magic — see :data:`repro.analysis.rules.DEFAULT_RULES`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import tokenize
from collections import Counter
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

__all__ = [
    "Finding",
    "Rule",
    "SourceModule",
    "analyze_paths",
    "load_baseline",
    "new_findings",
    "write_baseline",
]

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<rules>[\w\-, ]*))?", re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repository-relative, POSIX separators
    line: int  # 1-indexed
    col: int
    message: str
    snippet: str = ""  # stripped source line, used for fingerprinting

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


def fingerprints(findings: list[Finding]) -> list[str]:
    """Stable identity per finding; duplicates on identical lines get an
    occurrence index so the baseline can hold exactly N of them."""
    seen: Counter[tuple[str, str, str]] = Counter()
    out = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen[key]
        seen[key] += 1
        digest = hashlib.sha1(
            f"{finding.rule}|{finding.path}|{finding.snippet}|{occurrence}".encode()
        ).hexdigest()[:16]
        out.append(digest)
    return out


class SourceModule:
    """A parsed source file plus the suppression map rules consult."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        # line number -> set of suppressed rule names ("*" = all rules)
        self._suppressions: dict[int, set[str]] = {}
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(StringIO(self.text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _NOQA.search(token.string)
                if not match:
                    continue
                rules = match.group("rules")
                if rules is None or not rules.strip():
                    names = {"*"}
                else:
                    # Each entry is a rule name, optionally followed by a
                    # justification: "# noqa: guarded-by - caller holds it".
                    names = {
                        name.strip().split()[0]
                        for name in rules.split(",")
                        if name.strip()
                    }
                self._suppressions.setdefault(token.start[0], set()).update(names)
        except tokenize.TokenError:
            # An untokenizable tail gets no further suppressions; the
            # parse above already succeeded so rules still run.
            pass

    def suppressed(self, line: int, rule: str) -> bool:
        names = self._suppressions.get(line, ())
        return "*" in names or rule in names

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST | int, message: str, col: int = 0) -> Finding:
        line = node if isinstance(node, int) else node.lineno
        if not isinstance(node, int):
            col = node.col_offset
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            snippet=self.line_text(line),
        )


class Rule:
    """One check over a :class:`SourceModule`.

    Subclasses set ``name``/``description`` and implement :meth:`check`
    yielding findings; the engine applies suppressions afterwards, so
    rules never need to consult them.
    """

    name = "rule"
    description = ""

    def check(self, module: SourceModule) -> list[Finding]:
        raise NotImplementedError


@dataclass
class AnalysisReport:
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)


def _iter_sources(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def analyze_paths(
    paths: list[Path], rules: list[Rule], root: Path | None = None
) -> AnalysisReport:
    """Run ``rules`` over every ``*.py`` under ``paths``.

    ``root`` anchors the repository-relative paths used in findings and
    fingerprints (defaults to the current directory), so baselines are
    stable no matter where the analyzer is invoked from.
    """
    root = (root or Path.cwd()).resolve()
    report = AnalysisReport()
    for file_path in _iter_sources(paths):
        resolved = file_path.resolve()
        try:
            relpath = resolved.relative_to(root).as_posix()
        except ValueError:
            relpath = file_path.as_posix()
        try:
            module = SourceModule(file_path, relpath, file_path.read_text())
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(f"{relpath}: {exc}")
            continue
        report.files_scanned += 1
        for rule in rules:
            for finding in rule.check(module):
                if not module.suppressed(finding.line, finding.rule):
                    report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


# -- baseline ------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    """Fingerprint set from a committed baseline file ({} when absent)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: list[Finding]) -> None:
    entries = [
        {
            "fingerprint": fp,
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
        for finding, fp in zip(findings, fingerprints(findings))
    ]
    payload = {
        "comment": (
            "Accepted pre-existing findings for repro.analysis; regenerate "
            "with `python -m repro.analysis --write-baseline`. New code "
            "must not add entries — fix or justify with `# noqa: <rule>`."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def new_findings(findings: list[Finding], baseline: set[str]) -> list[Finding]:
    """Findings whose fingerprints are not covered by the baseline."""
    return [
        finding
        for finding, fp in zip(findings, fingerprints(findings))
        if fp not in baseline
    ]
