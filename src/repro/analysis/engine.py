"""Pluggable AST lint engine for the repository's own source.

The PML schema linter (:mod:`repro.pml.lint`) checks *user* inputs; this
engine checks *us*. It walks Python sources, hands each parsed module to
a set of :class:`Rule` objects, and reports :class:`Finding`\\ s with

- **per-line suppressions** — ``# noqa`` silences every rule on that
  line, ``# noqa: rule-a, rule-b`` silences the named rules (a
  justification after the rule list is encouraged and ignored);
- **a committed baseline** — known findings are fingerprinted into a
  JSON file so CI can fail on *new* findings only, letting rules land
  before the codebase is fully clean.

Fingerprints hash the rule, the file, and the stripped source line (plus
an occurrence index for identical lines), so findings survive unrelated
line drift but a genuinely new violation always counts as new.

Rules are small classes over :class:`SourceModule`; registration is a
list, not magic — see :data:`repro.analysis.rules.DEFAULT_RULES`.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import tokenize
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

__all__ = [
    "Finding",
    "NoqaComment",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "analyze_paths",
    "load_baseline",
    "new_findings",
    "remap_baseline",
    "write_baseline",
]

_NOQA = re.compile(r"#\s*noqa(?::\s*(?P<rules>[\w\-, ]*))?", re.IGNORECASE)

#: Finding severities, most severe first (SARIF levels use the same words).
SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repository-relative, POSIX separators
    line: int  # 1-indexed
    col: int
    message: str
    snippet: str = ""  # stripped source line, used for fingerprinting
    severity: str = "error"  # "error" | "warning" | "note"

    def __str__(self) -> str:
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}:{tag} {self.message}"


def fingerprints(findings: list[Finding]) -> list[str]:
    """Stable identity per finding; duplicates on identical lines get an
    occurrence index so the baseline can hold exactly N of them."""
    seen: Counter[tuple[str, str, str]] = Counter()
    out = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.snippet)
        occurrence = seen[key]
        seen[key] += 1
        digest = hashlib.sha1(
            f"{finding.rule}|{finding.path}|{finding.snippet}|{occurrence}".encode()
        ).hexdigest()[:16]
        out.append(digest)
    return out


@dataclass(frozen=True)
class NoqaComment:
    """One ``# noqa`` comment, as the justification rule sees it."""

    line: int
    names: tuple[str, ...]  # () for a blanket "# noqa"
    justified: bool  # text follows the rule list ("- caller holds it")


class SourceModule:
    """A parsed source file plus the suppression map rules consult."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        # line number -> set of suppressed rule names ("*" = all rules)
        self._suppressions: dict[int, set[str]] = {}
        # line number -> full comment text, for annotation grammars
        # (# lock-order:, # holds-lock:) that may sit on def lines.
        self.comments: dict[int, str] = {}
        self.noqa_comments: list[NoqaComment] = []
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(StringIO(self.text).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                self.comments[token.start[0]] = token.string
                match = _NOQA.search(token.string)
                if not match:
                    continue
                rules = match.group("rules")
                if rules is None or not rules.strip():
                    names = {"*"}
                    self.noqa_comments.append(
                        NoqaComment(line=token.start[0], names=(), justified=False)
                    )
                else:
                    # Each entry is a rule name, optionally followed by a
                    # justification: "# noqa: guarded-by - caller holds it".
                    entries = [e.strip() for e in rules.split(",") if e.strip()]
                    names = {entry.split()[0] for entry in entries}
                    # Justified when words follow the final rule name
                    # (the grammar places the justification at the tail).
                    tail = entries[-1].split() if entries else []
                    justified = len(tail) > 1 or bool(
                        token.string[match.end():].strip()
                    )
                    self.noqa_comments.append(
                        NoqaComment(
                            line=token.start[0],
                            names=tuple(sorted(names)),
                            justified=justified,
                        )
                    )
                self._suppressions.setdefault(token.start[0], set()).update(names)
        except tokenize.TokenError:
            # An untokenizable tail gets no further suppressions; the
            # parse above already succeeded so rules still run.
            pass

    def suppressed(self, line: int, rule: str) -> bool:
        names = self._suppressions.get(line, ())
        return "*" in names or rule in names

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self,
        rule: str,
        node: ast.AST | int,
        message: str,
        col: int = 0,
        severity: str = "error",
    ) -> Finding:
        line = node if isinstance(node, int) else node.lineno
        if not isinstance(node, int):
            col = node.col_offset
        return Finding(
            rule=rule,
            path=self.relpath,
            line=line,
            col=col,
            message=message,
            snippet=self.line_text(line),
            severity=severity,
        )


class Rule:
    """One check over a :class:`SourceModule`.

    Subclasses set ``name``/``description`` and implement :meth:`check`
    yielding findings; the engine applies suppressions afterwards, so
    rules never need to consult them. ``severity`` is the rule's default
    level for SARIF/reporting; individual findings may override it.
    """

    name = "rule"
    description = ""
    severity = "error"

    def check(self, module: SourceModule) -> list[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule over the *whole* analyzed set at once.

    Project rules see every parsed module together — what the
    interprocedural flow analyses need (call graphs, the global lock
    graph). They run in the parent process after the per-module scan,
    and their findings go through the same suppression and baseline
    machinery.
    """

    def check(self, module: SourceModule) -> list[Finding]:
        return []  # project rules only run in check_project

    def check_project(self, modules: list[SourceModule]) -> list[Finding]:
        raise NotImplementedError


@dataclass
class AnalysisReport:
    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    parse_errors: list[str] = field(default_factory=list)


def _iter_sources(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def _relpath(file_path: Path, root: Path) -> str:
    try:
        return file_path.resolve().relative_to(root).as_posix()
    except ValueError:
        return file_path.as_posix()


def _scan_one(args: tuple[str, str, list[str]]) -> tuple[str, list, list[Finding]]:
    """Per-file worker: parse + per-module rules. Top-level so it crosses
    a process boundary; rules are rebuilt by name from the registry."""
    from repro.analysis.rules import rules_by_name

    path_str, relpath, rule_names = args
    registry = rules_by_name()
    rules = [registry[name]() for name in rule_names]
    try:
        module = SourceModule(Path(path_str), relpath, Path(path_str).read_text())
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        return relpath, [f"{relpath}: {exc}"], []
    findings = [
        finding
        for rule in rules
        for finding in rule.check(module)
        if not module.suppressed(finding.line, finding.rule)
    ]
    return relpath, [], findings


def analyze_paths(
    paths: list[Path],
    rules: list[Rule],
    root: Path | None = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Run ``rules`` over every ``*.py`` under ``paths``.

    ``root`` anchors the repository-relative paths used in findings and
    fingerprints (defaults to the current directory), so baselines are
    stable no matter where the analyzer is invoked from.

    ``jobs`` > 1 fans the per-module scan (parse + lexical rules) over a
    process pool, one file per task; :class:`ProjectRule`\\ s always run
    in the parent, over the full parsed set, after the scan. Results are
    identical to the serial path — findings are sorted at the end either
    way.
    """
    root = (root or Path.cwd()).resolve()
    report = AnalysisReport()
    files = _iter_sources(paths)
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]

    modules: dict[str, SourceModule] = {}
    scanned_ok: set[str] = set()
    if jobs > 1 and module_rules and _poolable(module_rules):
        tasks = [
            (str(fp), _relpath(fp, root), [r.name for r in module_rules])
            for fp in files
        ]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for relpath, errors, findings in pool.map(_scan_one, tasks, chunksize=4):
                report.parse_errors.extend(errors)
                if not errors:
                    scanned_ok.add(relpath)
                    report.files_scanned += 1
                report.findings.extend(findings)
        # Project rules still need the parsed modules in-process.
        if project_rules:
            for fp in files:
                relpath = _relpath(fp, root)
                if relpath not in scanned_ok:
                    continue
                try:
                    modules[relpath] = SourceModule(fp, relpath, fp.read_text())
                except (SyntaxError, UnicodeDecodeError, OSError):
                    continue  # raced a concurrent edit; already reported
    else:
        for fp in files:
            relpath = _relpath(fp, root)
            try:
                module = SourceModule(fp, relpath, fp.read_text())
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.parse_errors.append(f"{relpath}: {exc}")
                continue
            modules[relpath] = module
            report.files_scanned += 1
            for rule in module_rules:
                for finding in rule.check(module):
                    if not module.suppressed(finding.line, finding.rule):
                        report.findings.append(finding)

    for rule in project_rules:
        for finding in rule.check_project(list(modules.values())):
            module = modules.get(finding.path)
            if module is None or not module.suppressed(finding.line, finding.rule):
                report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def _poolable(module_rules: list[Rule]) -> bool:
    """Parallel workers rebuild rules by name; custom unregistered rule
    objects fall back to the serial path."""
    from repro.analysis.rules import rules_by_name

    registry = rules_by_name()
    return all(
        rule.name in registry and type(registry[rule.name]()) is type(rule)
        for rule in module_rules
    )


# -- baseline ------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    """Fingerprint set from a committed baseline file ({} when absent)."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: list[Finding]) -> None:
    entries = [
        {
            "fingerprint": fp,
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            # The fingerprint's raw material, kept so a file rename can
            # be migrated in place (remap_baseline) without re-running.
            "snippet": finding.snippet,
        }
        for finding, fp in zip(findings, fingerprints(findings))
    ]
    payload = {
        "comment": (
            "Accepted pre-existing findings for repro.analysis; regenerate "
            "with `python -m repro.analysis --write-baseline`. New code "
            "must not add entries — fix or justify with `# noqa: <rule>`."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def new_findings(findings: list[Finding], baseline: set[str]) -> list[Finding]:
    """Findings whose fingerprints are not covered by the baseline."""
    return [
        finding
        for finding, fp in zip(findings, fingerprints(findings))
        if fp not in baseline
    ]


def remap_baseline(path: Path, renames: dict[str, str]) -> int:
    """Migrate baseline entries across file renames, in place.

    Fingerprints hash the repository-relative path, so a pure rename
    used to turn every baselined finding in the file into a "new" one.
    ``renames`` maps old relpath -> new relpath; matching entries get
    their path rewritten and their fingerprint recomputed from the
    stored snippet (entries predating snippet storage are rewritten with
    an empty snippet, matching how they were originally fingerprinted
    only if they had none — regenerate the baseline for those).
    Returns the number of entries migrated.
    """
    if not path.exists():
        return 0
    data = json.loads(path.read_text())
    entries = data.get("findings", [])
    moved = [e for e in entries if e.get("path") in renames]
    for entry in moved:
        entry["path"] = renames[entry["path"]]
    # Recompute fingerprints for every entry so occurrence indices stay
    # consistent within each (rule, path, snippet) group after the move.
    as_findings = [
        Finding(
            rule=e.get("rule", ""),
            path=e.get("path", ""),
            line=e.get("line", 0),
            col=0,
            message=e.get("message", ""),
            snippet=e.get("snippet", ""),
        )
        for e in entries
    ]
    for entry, fp in zip(entries, fingerprints(as_findings)):
        entry["fingerprint"] = fp
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return len(moved)
