"""Runtime sanitizers for the paged-KV and splice invariants.

Static rules catch lock-discipline regressions; these sanitizers catch
the *dynamic* invariants the paper's §3.2–3.4 machinery depends on:

- :class:`PageAuditor` shadows every :class:`~repro.llm.paged.PagePool`'s
  refcounts in an independent ledger and raises :class:`SanitizerError`
  on **double release**, **retain of a freed page**, and **in-place
  mirror extension without holding the lease** (or below a forked
  sharer's prefix — the write would corrupt a sibling's tokens).
  :meth:`PageAuditor.expect_balanced` turns "every fork must be freed"
  into an assertion for tests, and :func:`assert_quiescent` checks a
  pool has zero live pages at end of test.
- A **splice-plan validator** re-derives the position-ID invariants of
  every compiled plan: selected modules occupy disjoint, monotonically
  increasing position sets; uncached work only lands on parameter slots,
  free gaps, or the recompute tail; and at registration, union members
  share their start position and ``<unk>`` parameter slots sit inside
  their module's span.

Everything here is **off by default** and costs nothing until
:func:`install_sanitizers` runs — the hot modules hold a module-global
hook that is ``None`` in production. Set ``REPRO_SANITIZE=1`` and the
test suite (via ``tests/conftest.py``) or your own entry point installs
them for the whole run.
"""

from __future__ import annotations

import os
import threading
import weakref
from contextlib import contextmanager

import numpy as np

from repro.analysis.contracts import enforce_contracts

__all__ = [
    "LockDep",
    "PageAuditor",
    "SanitizerError",
    "active_auditor",
    "assert_quiescent",
    "guard_kv_write",
    "install_sanitizers",
    "sanitizers_enabled",
    "uninstall_sanitizers",
    "validate_layout",
    "validate_plan",
]

_ENV_FLAG = "REPRO_SANITIZE"


class SanitizerError(AssertionError):
    """A runtime invariant of the paged/splice machinery was violated."""


def sanitizers_enabled() -> bool:
    """True when the environment opts into sanitized runs."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() in ("1", "true", "yes", "on")


class PageAuditor:
    """Independent refcount/lease ledger for every live page pool.

    The ledger never trusts the pool's own counts: hooks fire *before*
    the pool mutates, so a buggy release is caught at the faulting call,
    with the page id in hand, instead of as corruption three requests
    later when the recycled page is rewritten under a live reader.
    """

    def __init__(self) -> None:
        # pool -> {page index -> expected refcount}; weak keys so pools
        # dropped by tests don't pin the ledger.
        self._pools: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.errors_raised = 0

    # -- pool ledger ----------------------------------------------------------

    def _ledger(self, pool) -> dict[int, int]:
        ledger = self._pools.get(pool)
        if ledger is None:
            # Pool predates the auditor (install mid-run): seed lazily
            # from its current counts as pages are first touched.
            ledger = {}
            self._pools[pool] = ledger
        return ledger

    def _expected(self, pool, page: int) -> int:
        ledger = self._ledger(pool)
        if page not in ledger:
            ledger[page] = pool.refcount(page) if page < len(pool._refcounts) else 0
        return ledger[page]

    def _fail(self, message: str):
        self.errors_raised += 1
        raise SanitizerError(message)

    def on_allocate(self, pool, page: int) -> None:
        self._ledger(pool)[page] = 1

    def on_retain(self, pool, page: int) -> None:
        expected = self._expected(pool, page)
        if expected <= 0:
            self._fail(
                f"retain of freed page {page}: the page was fully released "
                "and may already be recycled into another sequence"
            )
        self._ledger(pool)[page] = expected + 1

    def on_release(self, pool, page: int) -> None:
        expected = self._expected(pool, page)
        if expected <= 0:
            self._fail(
                f"double release of page {page}: refcount already zero — a "
                "sequence freed pages it no longer owns"
            )
        self._ledger(pool)[page] = expected - 1

    # -- mirror lease ---------------------------------------------------------

    def on_inplace_extend(self, layer, mirror) -> None:
        """Called by the lease holder right before writing the shared tail."""
        if mirror.lease is not layer:
            self._fail(
                "in-place mirror extension without holding the lease: "
                f"lease is owned by {mirror.lease!r}"
            )
        if mirror.length < mirror.fork_high_water:
            self._fail(
                f"in-place mirror extension at offset {mirror.length} below "
                f"the fork high-water mark {mirror.fork_high_water}: the "
                "write would overwrite a forked sharer's prefix"
            )

    # -- balance / quiescence -------------------------------------------------

    def live_pages(self, pool) -> int:
        ledger = self._pools.get(pool)
        if ledger is None:
            return pool.live_pages
        return sum(1 for count in ledger.values() if count > 0)

    @contextmanager
    def expect_balanced(self, *pools):
        """Assert no net page leak across the ``with`` body.

        Every fork/allocation inside the region must be matched by a
        release before it exits — the end-of-test discipline for code
        that borrows pages (``serve`` forks, batch forks, sessions).
        """
        before = {pool: self.live_pages(pool) for pool in pools}
        yield self
        for pool, baseline in before.items():
            live = self.live_pages(pool)
            if live > baseline:
                self._fail(
                    f"page leak: pool holds {live} live pages, expected "
                    f"{baseline} — {live - baseline} page(s) were never "
                    "released (a fork was dropped without free())"
                )


def assert_quiescent(*pools) -> None:
    """Raise if any pool still holds live pages (end-of-test check)."""
    for pool in pools:
        if pool.live_pages:
            nonzero = [
                page
                for page in range(len(pool._refcounts))
                if pool._refcounts[page] > 0
            ]
            raise SanitizerError(
                f"pool not quiescent: {pool.live_pages} live page(s) with "
                f"nonzero refcounts {nonzero[:8]}{'…' if len(nonzero) > 8 else ''}"
            )


# -- splice-plan validation ---------------------------------------------------


def validate_layout(schema, layout) -> None:
    """Schema-layout invariants, checked at registration time.

    Union members share their start position (paper §3.2.3) and every
    parameter's ``<unk>`` slot positions sit inside its module's span.
    """
    from repro.pml.ast import ModuleNode, UnionNode

    def walk(children):
        for child in children:
            if isinstance(child, UnionNode):
                starts = {
                    layout.module(member.name).span_start
                    for member in child.members
                    if member.name in layout.modules
                }
                if len(starts) > 1:
                    raise SanitizerError(
                        f"union members of schema {schema.name!r} disagree on "
                        f"start positions {sorted(starts)}; members must "
                        "share their start (paper §3.2.3)"
                    )
                for member in child.members:
                    walk(member.children)
            elif isinstance(child, ModuleNode):
                walk(child.children)

    walk(schema.root.children)
    for name, module in layout.modules.items():
        for slot in module.params.values():
            positions = module.param_positions(slot.name)
            if len(positions) and (
                positions.min() < module.span_start
                or positions.max() >= module.span_end
            ):
                raise SanitizerError(
                    f"parameter {slot.name!r} of module {name!r} has slot "
                    f"positions outside the module span "
                    f"[{module.span_start}, {module.span_end})"
                )


def validate_plan(plan, layout) -> None:
    """Position-ID invariants of one compiled serve plan.

    Selected modules' direct positions are strictly increasing and
    pairwise disjoint; uncached tokens only land on parameter slots, the
    recompute tail, or positions no cached token occupies.
    """
    occupied: set[int] = set()
    slot_positions: set[int] = set()
    for module, name in plan.modules:
        positions = module.positions
        if len(positions) > 1 and not np.all(np.diff(positions) > 0):
            raise SanitizerError(
                f"module {name!r} has non-monotonic position IDs; cached "
                "states must keep document order (paper §3.3)"
            )
        as_set = set(map(int, positions))
        overlap = occupied & as_set
        if overlap:
            raise SanitizerError(
                f"module {name!r} overlaps previously selected modules at "
                f"positions {sorted(overlap)[:8]}; selected modules must be "
                "disjoint"
            )
        occupied |= as_set
        for slot in module.params.values():
            slot_positions.update(map(int, module.param_positions(slot.name)))

    allowed_tail: set[int] = set()
    if plan.recompute_tail is not None:
        name, index = plan.recompute_tail
        allowed_tail.add(int(layout.module(name).positions[index]))
    cached = (occupied - slot_positions) - allowed_tail
    for token_ids, positions in plan.uncached:
        clash = cached & set(map(int, positions))
        if clash:
            raise SanitizerError(
                f"uncached tokens collide with cached positions "
                f"{sorted(clash)[:8]}; suffix text must land on parameter "
                "slots or free positions"
            )


# -- runtime lockdep ----------------------------------------------------------


class LockDep:
    """Runtime lock-order recorder — the dynamic half of ``lock-order``.

    Locks built through :func:`repro.analysis.locks.ordered_lock` while
    a recorder is installed report every acquisition. The recorder keeps
    a per-thread stack of held locks and a global edge graph seeded with
    the declared partial order (``after=`` edges); acquiring ``b`` while
    holding ``a`` adds the edge ``a -> b`` and immediately checks for a
    path ``b -> … -> a`` — a cycle means two call paths take the same
    pair of locks in opposite orders, i.e. a schedule exists that
    deadlocks, even if *this* run happened not to. The check runs
    *before* blocking on the real lock, so the sanitized shard fails
    fast with the offending edge instead of hanging.

    Also enforced: re-acquisition of non-reentrant locks (self-deadlock)
    and :func:`~repro.analysis.locks.assert_unheld` guards on code
    documented to run lock-free.
    """

    def __init__(self) -> None:
        self._graph_lock = threading.Lock()
        # canonical name -> names that may be acquired after it
        self._edges: dict[str, set[str]] = {}
        # edge -> provenance ("declared" or the first observing thread)
        self._sources: dict[tuple[str, str], str] = {}
        self._tls = threading.local()

    # -- declaration ----------------------------------------------------------

    def declare(self, name: str, after: tuple[str, ...]) -> None:
        with self._graph_lock:
            for earlier in after:
                self._add_edge(earlier, name, "declared")

    # -- per-thread state -----------------------------------------------------

    def _held(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def held_locks(self) -> tuple[str, ...]:
        return tuple(self._held())

    def edges(self) -> dict[tuple[str, str], str]:
        with self._graph_lock:
            return dict(self._sources)

    # -- hooks ----------------------------------------------------------------

    def on_acquire(self, name: str, reentrant: bool = True) -> None:
        held = self._held()
        if name in held:
            if not reentrant:
                raise SanitizerError(
                    f"lockdep: non-reentrant lock '{name}' re-acquired by the "
                    "holding thread — this deadlocks"
                )
            held.append(name)
            return
        with self._graph_lock:
            for holder in dict.fromkeys(held):
                self._add_edge(holder, name, threading.current_thread().name)
        held.append(name)

    def on_release(self, name: str) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    def assert_unheld(self, name: str) -> None:
        if name in self._held():
            raise SanitizerError(
                f"lockdep: '{name}' is held on a path documented to run "
                f"without it (held: {self.held_locks()})"
            )

    # -- graph ---------------------------------------------------------------

    def _add_edge(self, earlier: str, later: str, source: str) -> None:
        """Record ``earlier -> later``; caller holds ``_graph_lock``."""
        if later in self._edges.get(earlier, ()):
            return
        back = self._path(later, earlier)
        if back is not None:
            chain = " -> ".join(back)
            provenance = ", ".join(
                f"{a}->{b} ({self._sources.get((a, b), '?')})"
                for a, b in zip(back, back[1:])
            )
            raise SanitizerError(
                f"lockdep: acquiring '{later}' while holding '{earlier}' "
                f"({source}) inverts the established order {chain} "
                f"[{provenance}] — a deadlocking schedule exists"
            )
        self._edges.setdefault(earlier, set()).add(later)
        self._sources[(earlier, later)] = source

    def _path(self, src: str, dst: str) -> list[str] | None:
        prev = {src: src}
        queue = [src]
        while queue:
            current = queue.pop(0)
            for nxt in self._edges.get(current, ()):
                if nxt in prev:
                    continue
                prev[nxt] = current
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    path.reverse()
                    return path
                queue.append(nxt)
        return None


# -- mapped-arena write guard -------------------------------------------------


def guard_kv_write(buffer: np.ndarray) -> None:
    """KV write guard (installed into :mod:`repro.llm.kv` by
    :func:`install_sanitizers`): reject in-place writes into snapshot-
    mapped or otherwise read-only arenas.

    A mapped module's pages are shared by every worker attached to the
    same snapshot; an in-place append would either corrupt siblings
    (writable mapping) or crash mid-splice (read-only mapping). The guard
    turns both into a :class:`SanitizerError` at the faulting append with
    the fix in the message: take a private copy (``ensure_arena`` on a
    non-arena view, or ``copy()``) before mutating.
    """
    from repro.llm.kv import is_mapped_array

    if is_mapped_array(buffer):
        raise SanitizerError(
            "in-place write into a snapshot-mapped KV arena: mapped modules "
            "are shared read-only across attached workers — copy into a "
            "private arena before appending"
        )
    if not buffer.flags.writeable:
        raise SanitizerError(
            "in-place write into a read-only KV buffer — copy before mutating"
        )


# -- installation -------------------------------------------------------------

_ACTIVE: PageAuditor | None = None


def active_auditor() -> PageAuditor | None:
    return _ACTIVE


def install_sanitizers() -> PageAuditor:
    """Wire the auditor + validators into the hot modules; returns the
    auditor. Idempotent — re-installing returns the active auditor."""
    global _ACTIVE
    if _ACTIVE is not None:
        return _ACTIVE
    from repro.analysis import locks
    from repro.cache import engine as cache_engine
    from repro.llm import kv as kv_mod
    from repro.llm import paged

    auditor = PageAuditor()
    paged.set_page_auditor(auditor)
    cache_engine.set_plan_validator(validate_plan)
    cache_engine.set_layout_validator(validate_layout)
    kv_mod.set_write_guard(guard_kv_write)
    locks.set_lockdep(LockDep())
    enforce_contracts(True)
    _ACTIVE = auditor
    return auditor


def uninstall_sanitizers() -> None:
    global _ACTIVE
    if _ACTIVE is None:
        return
    from repro.analysis import locks
    from repro.cache import engine as cache_engine
    from repro.llm import kv as kv_mod
    from repro.llm import paged

    paged.set_page_auditor(None)
    cache_engine.set_plan_validator(None)
    cache_engine.set_layout_validator(None)
    kv_mod.set_write_guard(None)
    locks.set_lockdep(None)
    enforce_contracts(False)
    _ACTIVE = None


def install_if_enabled() -> PageAuditor | None:
    """Install when ``REPRO_SANITIZE`` opts in; the conftest entry point."""
    if sanitizers_enabled():
        return install_sanitizers()
    return None
