"""Interprocedural flow analyses over the project call graph.

Two flagship :class:`~repro.analysis.engine.ProjectRule`\\ s live here,
the static counterparts of the ``REPRO_SANITIZE=1`` runtime auditors —
they cover the paths tests never execute:

- :class:`LeaseLifecycleRule` (``lease-lifecycle``) — an abstract
  interpreter ("borrow checker") for `PagedLayerKV` forks, page
  refcounts, and serve-stream leases. It tracks acquire/release facts
  through branches, loops, ``try/finally``, ``with``, and early
  returns; follows calls through :class:`~repro.analysis.callgraph.
  ProjectIndex` using per-function summaries (which parameters a callee
  releases or escapes, which return slots carry a fresh lease); and
  reports **leak on exception path** (warning), **leak on normal exit**,
  **double release**, and **use after release** (errors).

- :class:`LockOrderRule` (``lock-order``) — builds the static lock
  graph from ``with lock:`` / ``.acquire()`` nesting plus transitive
  callee acquisitions, merges the declared partial order
  (:func:`repro.analysis.locks.ordered_lock` literals and
  ``# lock-order:`` comments), and reports cycles, acquisitions that
  contradict the declared order, re-acquisition of non-reentrant locks,
  and calls into ``assert_unheld`` guards while the named lock is held.

Annotation grammar (consumed here, enforced nowhere else):

- ``# lock-order: <name> [after <a>, <b>]`` — on a lock-creation line:
  names the lock canonically and declares which locks may be held when
  acquiring it. `ordered_lock("name", after=("a",))` declares the same
  thing directly from code.
- ``# holds-lock: <name>[, <name2>]`` — on a ``def`` line: the function
  is documented as called with those locks held (e.g. store-eviction
  listeners fire under the store lock). Seeds the held-set.

Both analyses are deliberately *sound-ish*: unresolved calls and
escaped values are treated conservatively (tracking stops), so a
reported finding is nearly always real — the bar the lexical rules set.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.analysis.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.engine import Finding, ProjectRule, SourceModule

__all__ = [
    "LeaseLifecycleRule",
    "LockOrderRule",
    "mapped_write_helper_findings",
]


_LOCK_ORDER_RE = re.compile(
    r"#\s*lock-order:\s*(?P<name>[\w.\-]+)(?:\s+after\s+(?P<after>[\w.\-, ]+))?"
)
_HOLDS_LOCK_RE = re.compile(r"#\s*holds-lock:\s*(?P<names>[\w.\-, ]+)")


def _split_names(raw: str) -> tuple[str, ...]:
    return tuple(n.strip() for n in raw.split(",") if n.strip())


def _attr_chain(node: ast.AST) -> list[str] | None:
    """``self.a.b`` -> ["self", "a", "b"]; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _const_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_str_tuple(node: ast.AST) -> tuple[str, ...]:
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(s for s in (_const_str(e) for e in node.elts) if s)
    one = _const_str(node)
    return (one,) if one else ()


# =============================================================================
# Lock model: canonical names, declared order, reentrancy
# =============================================================================


@dataclass
class LockDecl:
    name: str
    reentrant: bool
    module: SourceModule
    line: int


class LockModel:
    """Canonical lock identities + the declared partial order.

    A lock's canonical name is shared by every instance guarding the
    same subsystem (both cache tiers hold ``"store"``); identity comes
    from ``ordered_lock("name", ...)`` literals, ``# lock-order:``
    comments on the creation line, or — for plain un-annotated
    ``threading.Lock()`` attributes — the auto-name ``Class.attr``.
    """

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        # (class name, attr) -> canonical lock name
        self.attr_locks: dict[tuple[str, str], str] = {}
        # (module relpath, variable) -> canonical, for module-level locks
        self.global_locks: dict[tuple[str, str], str] = {}
        self.decls: dict[str, LockDecl] = {}
        # declared order edge (a, b): a may be held while acquiring b
        self.declared_edges: dict[tuple[str, str], tuple[str, int]] = {}
        for module in index.modules:
            self._scan_module(module)

    # -- declaration scan --------------------------------------------------------

    def _scan_module(self, module: SourceModule) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                self._scan_assign(module, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                for item in ast.walk(node):
                    if isinstance(item, (ast.Assign, ast.AnnAssign)):
                        self._scan_assign(module, item, cls=node.name)
        # Pure-comment declarations (no assignment on the line) still
        # contribute names and declared edges.
        for line, comment in module.comments.items():
            match = _LOCK_ORDER_RE.search(comment)
            if match:
                self._declare(
                    module, line, match.group("name"),
                    _split_names(match.group("after") or ""),
                    reentrant=True, weak=True,
                )

    def _scan_assign(
        self, module: SourceModule, stmt: ast.Assign | ast.AnnAssign, cls: str | None
    ) -> None:
        value = stmt.value
        if value is None:
            return
        spec = self._lock_value(value)
        comment = _LOCK_ORDER_RE.search(module.line_text(stmt.lineno))
        if spec is None and comment is None:
            return
        if comment is not None:
            name = comment.group("name")
            after = _split_names(comment.group("after") or "")
            reentrant = spec.reentrant if spec else True
        else:
            assert spec is not None
            name, after, reentrant = spec.name, spec.after, spec.reentrant
            if name is None:  # plain Lock()/RLock(): auto-name below
                pass
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            chain = _attr_chain(target)
            if chain is None:
                continue
            if len(chain) == 2 and chain[0] == "self" and cls is not None:
                canonical = name or f"{cls}.{chain[1]}"
                self.attr_locks[(cls, chain[1])] = canonical
            elif len(chain) == 1:
                canonical = name or f"{module.relpath}:{chain[0]}"
                key = (module.relpath, chain[0])
                if cls is None:
                    self.global_locks[key] = canonical
                else:  # class-body assign
                    self.attr_locks[(cls, chain[0])] = canonical
            else:
                continue
            self._declare(module, stmt.lineno, canonical, after, reentrant)

    @dataclass
    class _Spec:
        name: str | None
        after: tuple[str, ...]
        reentrant: bool

    def _lock_value(self, value: ast.AST) -> "LockModel._Spec | None":
        """Recognize ``ordered_lock(...)`` / ``threading.Lock/RLock()``
        as the (possibly ``a or``-peeled) assigned value."""
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                spec = self._lock_value(operand)
                if spec is not None:
                    return spec
            return None
        if not isinstance(value, ast.Call):
            return None
        fn = value.func
        callee = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else None
        )
        if callee == "ordered_lock":
            name = _const_str(value.args[0]) if value.args else None
            after: tuple[str, ...] = ()
            reentrant = True
            for kw in value.keywords:
                if kw.arg == "after":
                    after = _const_str_tuple(kw.value)
                elif kw.arg == "reentrant" and isinstance(kw.value, ast.Constant):
                    reentrant = bool(kw.value.value)
            return self._Spec(name, after, reentrant)
        if callee in ("Lock", "RLock"):
            return self._Spec(None, (), callee == "RLock")
        return None

    def _declare(
        self,
        module: SourceModule,
        line: int,
        name: str,
        after: tuple[str, ...],
        reentrant: bool,
        weak: bool = False,
    ) -> None:
        if name not in self.decls or not weak:
            prev = self.decls.get(name)
            # A lock is non-reentrant if *any* creation site says so.
            if prev is not None:
                reentrant = reentrant and prev.reentrant
            self.decls[name] = LockDecl(name, reentrant, module, line)
        for earlier in after:
            self.declared_edges.setdefault(
                (earlier, name), (module.relpath, line)
            )

    # -- expression -> canonical name --------------------------------------------

    def reentrant(self, name: str) -> bool:
        decl = self.decls.get(name)
        return decl.reentrant if decl else True

    def _class_attr_lock(self, cls_name: str, attr: str) -> str | None:
        seen: set[str] = set()
        queue = [cls_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            found = self.attr_locks.get((current, attr))
            if found is not None:
                return found
            cls = self.index.classes.get(current)
            if cls is not None:
                queue.extend(cls.bases)
        return None

    def lock_of(self, expr: ast.AST, fn: FunctionInfo) -> str | None:
        """Canonical name of the lock ``expr`` denotes, or None."""
        if isinstance(expr, ast.Name):
            return self.global_locks.get((fn.module.relpath, expr.id))
        chain = _attr_chain(expr)
        if chain is None:
            return None
        if chain[0] == "self" and fn.cls:
            if len(chain) == 2:
                return self._class_attr_lock(fn.cls, chain[1])
            if len(chain) == 3:
                cls = self.index.classes.get(fn.cls)
                attr_type = cls.attr_types.get(chain[1]) if cls else None
                if attr_type is not None:
                    return self._class_attr_lock(attr_type, chain[2])
        # Fallback: an attribute name held by exactly one canonical lock
        # across the project (e.g. a local ``mirror.lock``).
        attr = chain[-1]
        candidates = {
            canonical
            for (_, a), canonical in self.attr_locks.items()
            if a == attr
        }
        return candidates.pop() if len(candidates) == 1 else None


def _holds_lock_names(module: SourceModule, fn: ast.AST) -> tuple[str, ...]:
    """``# holds-lock:`` names annotated on the ``def`` line(s)."""
    body_start = fn.body[0].lineno if getattr(fn, "body", None) else fn.lineno + 1
    names: list[str] = []
    for line in range(fn.lineno, body_start + 1):
        comment = module.comments.get(line)
        if not comment:
            continue
        match = _HOLDS_LOCK_RE.search(comment)
        if match:
            names.extend(_split_names(match.group("names")))
    return tuple(dict.fromkeys(names))


# =============================================================================
# lock-order rule
# =============================================================================


@dataclass
class _Edge:
    module: str
    line: int
    note: str


class LockOrderRule(ProjectRule):
    """Static deadlock detector over the project lock graph."""

    name = "lock-order"
    description = "lock acquisition cycles / declared-order violations"

    def check_project(self, modules: list[SourceModule]) -> list[Finding]:
        index = ProjectIndex(modules)
        model = LockModel(index)
        by_relpath = {m.relpath: m for m in modules}

        self._index = index
        self._model = model
        self._acquired_memo: dict[str, frozenset[str]] = {}
        self._unheld_memo: dict[str, frozenset[str]] = {}
        self._observed: dict[tuple[str, str], _Edge] = {}
        self._findings: list[Finding] = []
        self._reported: set[tuple] = set()

        for fn in index.functions.values():
            self._walk_function(fn)

        self._check_graph(by_relpath)
        return self._findings

    # -- traversal ---------------------------------------------------------------

    def _emit(self, module: SourceModule, node_or_line, message: str) -> None:
        key = (module.relpath, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self._findings.append(module.finding(self.name, node_or_line, message))

    def _walk_function(self, fn: FunctionInfo) -> None:
        held = list(_holds_lock_names(fn.module, fn.node))
        self._visit_stmts(fn.node.body, fn, held)

    def _visit_stmts(self, stmts: list[ast.stmt], fn: FunctionInfo, held: list[str]) -> None:
        index = 0
        while index < len(stmts):
            stmt = stmts[index]
            index += 1
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    self._visit_expr(item.context_expr, fn, held)
                    lock = self._model.lock_of(item.context_expr, fn)
                    if lock is None:
                        continue
                    self._acquire(lock, fn, item.context_expr, held)
                    acquired.append(lock)
                self._visit_stmts(stmt.body, fn, held + acquired)
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                call = stmt.value
                callee = call.func
                if isinstance(callee, ast.Attribute) and callee.attr == "acquire":
                    lock = self._model.lock_of(callee.value, fn)
                    if lock is not None:
                        self._acquire(lock, fn, call, held)
                        # the lock stays held for the rest of this suite
                        self._visit_stmts(stmts[index:], fn, held + [lock])
                        return
                if isinstance(callee, ast.Attribute) and callee.attr == "release":
                    lock = self._model.lock_of(callee.value, fn)
                    if lock is not None and lock in held:
                        held = [h for h in held if h != lock]
                        self._visit_stmts(stmts[index:], fn, held)
                        return
            # Generic statement: visit nested suites with the same
            # held-set, and expressions for call effects.
            for child_suite in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(child_suite, list) and child_suite and isinstance(
                    child_suite[0], ast.stmt
                ):
                    self._visit_stmts(child_suite, fn, list(held))
            for handler in getattr(stmt, "handlers", []) or []:
                self._visit_stmts(handler.body, fn, list(held))
            for expr in ast.iter_child_nodes(stmt):
                if isinstance(expr, ast.expr):
                    self._visit_expr(expr, fn, held)

    def _visit_expr(self, expr: ast.AST, fn: FunctionInfo, held: list[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call_effects(node, fn, held)

    def _acquire(
        self, lock: str, fn: FunctionInfo, site: ast.AST, held: list[str]
    ) -> None:
        if lock in held:
            if not self._model.reentrant(lock):
                self._emit(
                    fn.module, site,
                    f"non-reentrant lock '{lock}' re-acquired while already "
                    f"held in {fn.name}() — this self-deadlocks",
                )
            return
        for holder in held:
            if holder != lock:
                self._observed.setdefault(
                    (holder, lock),
                    _Edge(fn.module.relpath, site.lineno, f"in {fn.name}()"),
                )

    def _call_effects(self, call: ast.Call, fn: FunctionInfo, held: list[str]) -> None:
        callee = call.func
        callee_name = (
            callee.attr if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else None
        )
        # assert_unheld("x") used directly as a no-lock guard.
        if callee_name == "assert_unheld" and call.args:
            guarded = _const_str(call.args[0])
            if guarded and guarded in held:
                self._emit(
                    fn.module, call,
                    f"assert_unheld('{guarded}') reached while '{guarded}' is "
                    f"held in {fn.name}()",
                )
            return
        if not held:
            return
        for target in self._index.resolve_call(call, fn):
            for guarded in self._assert_unheld_of(target):
                if guarded in held:
                    self._emit(
                        fn.module, call,
                        f"{fn.name}() calls {target.name}() while holding "
                        f"'{guarded}', but {target.name}() is declared to run "
                        f"with '{guarded}' unheld (assert_unheld)",
                    )
            for lock in self._locks_acquired(target):
                if lock in held:
                    continue
                for holder in held:
                    self._observed.setdefault(
                        (holder, lock),
                        _Edge(
                            fn.module.relpath, call.lineno,
                            f"in {fn.name}() via {target.name}()",
                        ),
                    )

    # -- summaries ---------------------------------------------------------------

    def _locks_acquired(self, fn: FunctionInfo) -> frozenset[str]:
        """Locks possibly acquired by ``fn`` or its resolvable callees."""
        memo = self._acquired_memo
        if fn.qualname in memo:
            return memo[fn.qualname]
        memo[fn.qualname] = frozenset()  # cycle guard
        acquired: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    lock = self._model.lock_of(item.context_expr, fn)
                    if lock is not None:
                        acquired.add(lock)
            elif isinstance(node, ast.Call):
                callee = node.func
                if isinstance(callee, ast.Attribute) and callee.attr == "acquire":
                    lock = self._model.lock_of(callee.value, fn)
                    if lock is not None:
                        acquired.add(lock)
                else:
                    for target in self._index.resolve_call(node, fn):
                        acquired.update(memo.get(target.qualname) or
                                        self._locks_acquired(target))
        memo[fn.qualname] = frozenset(acquired)
        return memo[fn.qualname]

    def _assert_unheld_of(self, fn: FunctionInfo) -> frozenset[str]:
        """Locks ``fn`` directly asserts are not held on entry."""
        memo = self._unheld_memo
        if fn.qualname in memo:
            return memo[fn.qualname]
        names: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                callee = node.func
                callee_name = (
                    callee.attr if isinstance(callee, ast.Attribute)
                    else callee.id if isinstance(callee, ast.Name) else None
                )
                if callee_name == "assert_unheld" and node.args:
                    guarded = _const_str(node.args[0])
                    if guarded:
                        names.add(guarded)
        memo[fn.qualname] = frozenset(names)
        return memo[fn.qualname]

    # -- graph checks ------------------------------------------------------------

    def _check_graph(self, by_relpath: dict[str, SourceModule]) -> None:
        combined: dict[str, set[str]] = {}
        declared: dict[str, set[str]] = {}
        for (a, b) in list(self._observed) + list(self._model.declared_edges):
            combined.setdefault(a, set()).add(b)
        for (a, b) in self._model.declared_edges:
            declared.setdefault(a, set()).add(b)

        def _path(graph: dict[str, set[str]], src: str, dst: str) -> list[str] | None:
            if src == dst:
                return [src]
            prev: dict[str, str] = {src: src}
            queue = [src]
            while queue:
                current = queue.pop(0)
                for nxt in graph.get(current, ()):
                    if nxt in prev:
                        continue
                    prev[nxt] = current
                    if nxt == dst:
                        path = [dst]
                        while path[-1] != src:
                            path.append(prev[path[-1]])
                        path.reverse()
                        return path
                    queue.append(nxt)
            return None

        for (a, b), edge in sorted(self._observed.items()):
            module = by_relpath.get(edge.module)
            if module is None:
                continue
            back = _path(declared, b, a)
            if back is not None and len(back) > 1:
                self._emit(
                    module, edge.line,
                    f"acquiring '{b}' while holding '{a}' ({edge.note}) "
                    f"contradicts the declared lock order "
                    f"({' -> '.join(back)})",
                )
                continue
            back = _path(combined, b, a)
            if back is not None and len(back) > 1:
                self._emit(
                    module, edge.line,
                    f"lock-order cycle: '{b}' acquired while holding '{a}' "
                    f"({edge.note}), but elsewhere "
                    f"{' -> '.join(back)} is acquired in that order",
                )
        # Purely-declared cycles (no observed edge involved) are config
        # errors in the annotations themselves.
        for (a, b), (relpath, line) in sorted(self._model.declared_edges.items()):
            if (a, b) in self._observed:
                continue
            back = _path(declared, b, a)
            if back is not None and len(back) > 1:
                module = by_relpath.get(relpath)
                if module is not None:
                    self._emit(
                        module, line,
                        f"declared lock order is cyclic: '{a}' before '{b}' "
                        f"but also {' -> '.join(back)}",
                    )


# =============================================================================
# lease-lifecycle rule
# =============================================================================

#: (class, method) pairs whose call returns a fresh lease, with the
#: receiver methods that release it. Resolution-based where names are
#: generic; name-based where the name is distinctive project-wide.
_SEED_BY_RESOLUTION = {
    ("PagePool", "allocate"): ("page", ()),
    ("PagePool", "copy_page"): ("page", ()),
}
_SEED_BY_NAME = {
    "fork": ("fork", ("free",)),
    "open_stream": ("stream", ("finish", "abort")),
    "open_text_stream": ("stream", ("finish", "abort")),
}
#: Receiver methods that release a lease of unknown kind (parameters).
_GENERIC_RELEASERS = ("free", "finish", "abort", "close", "release")
#: Builtins that neither raise (for leak purposes) nor capture references.
_SAFE_CALLS = {
    "len", "isinstance", "issubclass", "id", "repr", "str", "int", "float",
    "bool", "min", "max", "abs", "sorted", "sum", "range", "enumerate",
    "zip", "print", "format", "type", "getattr", "hasattr", "callable",
}

_MAX_STATES = 24


@dataclass
class _Summary:
    # return slot (-1 = whole value) -> (kind, releaser methods)
    returns_acquired: dict[int, tuple[str, tuple[str, ...]]] = field(
        default_factory=dict
    )
    releases_params: set[int] = field(default_factory=set)
    escapes_params: set[int] = field(default_factory=set)


@dataclass
class _Resource:
    rid: int
    kind: str  # "fork" | "stream" | "page" | "param"
    state: str  # "ACQ" | "REL" | "ESC" | "PARAM"
    line: int
    releasers: tuple[str, ...]
    param_index: int = -1
    released_line: int = 0

    def copy(self) -> "_Resource":
        return _Resource(
            self.rid, self.kind, self.state, self.line,
            self.releasers, self.param_index, self.released_line,
        )


class _State:
    __slots__ = ("env", "res")

    def __init__(self, env=None, res=None) -> None:
        self.env: dict[str, int] = env or {}
        self.res: dict[int, _Resource] = res or {}

    def copy(self) -> "_State":
        return _State(dict(self.env), {k: r.copy() for k, r in self.res.items()})

    def names_of(self, rid: int) -> set[str]:
        return {name for name, bound in self.env.items() if bound == rid}


class LeaseLifecycleRule(ProjectRule):
    """Abstract interpreter for KV lease / page-refcount lifecycles."""

    name = "lease-lifecycle"
    description = "leaked, double-released, or used-after-release KV leases"

    def check_project(self, modules: list[SourceModule]) -> list[Finding]:
        self._index = ProjectIndex(modules)
        self._summaries: dict[str, _Summary] = {}
        self._findings: list[Finding] = []
        self._reported: set[tuple] = set()
        for fn in self._index.functions.values():
            self._summary(fn)  # interpreting computes findings as a side effect
        return self._findings

    # -- per-function driver -----------------------------------------------------

    def _summary(self, fn: FunctionInfo) -> _Summary:
        cached = self._summaries.get(fn.qualname)
        if cached is not None:
            return cached
        self._summaries[fn.qualname] = _Summary()  # recursion cut
        summary = _Interp(self, fn).run()
        self._summaries[fn.qualname] = summary
        return summary

    def _emit(
        self, fn: FunctionInfo, line: int, message: str, severity: str = "error"
    ) -> None:
        key = (fn.module.relpath, line, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self._findings.append(
            fn.module.finding(self.name, line, message, severity=severity)
        )


class _Interp:
    """One path-sensitive interpretation of one function body."""

    def __init__(self, rule: LeaseLifecycleRule, fn: FunctionInfo) -> None:
        self.rule = rule
        self.fn = fn
        self.index = rule._index
        self.summary = _Summary()
        self.protection: list[set[str]] = []  # names released on unwind
        self.next_rid = 0
        self.exit_states: list[tuple[_State, str]] = []  # (state, "return"|"raise")
        self.warned: set[int] = set()  # rids already reported leak-on-raise

    # -- plumbing ----------------------------------------------------------------

    def run(self) -> _Summary:
        entry = _State()
        params = self.fn.params
        for pos, param in enumerate(params):
            rid = self._new_rid()
            entry.env[param] = rid
            entry.res[rid] = _Resource(
                rid, "param", "PARAM", self.fn.node.lineno,
                _GENERIC_RELEASERS, param_index=pos,
            )
        states = self._stmts(self.fn.node.body, [entry])
        for state in states:
            self.exit_states.append((state, "return"))
        for state, how in self.exit_states:
            self._leak_check(state, how)
        return self.summary

    def _new_rid(self) -> int:
        self.next_rid += 1
        return self.next_rid

    def _emit(self, line: int, message: str, severity: str = "error") -> None:
        self.rule._emit(self.fn, line, message, severity)

    def _protected(self, state: _State, rid: int) -> bool:
        names = state.names_of(rid)
        return any(names & frame for frame in self.protection)

    def _leak_check(self, state: _State, how: str) -> None:
        for resource in state.res.values():
            if resource.state != "ACQ":
                continue
            if how == "raise":
                if resource.rid in self.warned:
                    continue
                self.warned.add(resource.rid)
                self._emit(
                    resource.line,
                    f"{resource.kind} lease acquired here leaks when "
                    f"{self.fn.name}() unwinds via 'raise' — release it in a "
                    "finally or handler",
                    severity="warning",
                )
            else:
                self._emit(
                    resource.line,
                    f"{resource.kind} lease acquired here is never released "
                    f"on a path reaching the end of {self.fn.name}() "
                    f"(expected one of: "
                    f"{', '.join(resource.releasers) or 'release(x)'})",
                )

    # -- statements --------------------------------------------------------------

    def _stmts(self, stmts: list[ast.stmt], states: list[_State]) -> list[_State]:
        for stmt in stmts:
            if not states:
                return []
            states = self._stmt(stmt, states)
            if len(states) > _MAX_STATES:
                states = states[:_MAX_STATES]
        return states

    def _stmt(self, stmt: ast.stmt, states: list[_State]) -> list[_State]:
        handler = getattr(self, f"_s_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, states)
        # Default: evaluate child expressions for uses/calls.
        for state in states:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, state)
        return states

    def _s_FunctionDef(self, stmt, states):  # nested defs are separate units
        return states

    _s_AsyncFunctionDef = _s_FunctionDef
    _s_ClassDef = _s_FunctionDef
    _s_Import = _s_FunctionDef
    _s_ImportFrom = _s_FunctionDef
    _s_Global = _s_FunctionDef
    _s_Nonlocal = _s_FunctionDef
    _s_Pass = _s_FunctionDef

    def _s_Assign(self, stmt: ast.Assign, states: list[_State]) -> list[_State]:
        for state in states:
            self._assign(stmt.targets, stmt.value, state)
        return states

    def _s_AnnAssign(self, stmt: ast.AnnAssign, states: list[_State]) -> list[_State]:
        if stmt.value is not None:
            for state in states:
                self._assign([stmt.target], stmt.value, state)
        return states

    def _s_AugAssign(self, stmt: ast.AugAssign, states: list[_State]) -> list[_State]:
        for state in states:
            self._expr(stmt.value, state)
        return states

    def _s_Expr(self, stmt: ast.Expr, states: list[_State]) -> list[_State]:
        for state in states:
            self._expr(stmt.value, state)
        return states

    def _s_Return(self, stmt: ast.Return, states: list[_State]) -> list[_State]:
        for state in states:
            value = stmt.value
            if value is None:
                pass
            elif isinstance(value, ast.Name):
                self._return_slot(state, value, -1)
            elif isinstance(value, ast.Tuple):
                for pos, elt in enumerate(value.elts):
                    if isinstance(elt, ast.Name):
                        self._return_slot(state, elt, pos)
                    else:
                        self._expr(elt, state)
            elif isinstance(value, ast.Call):
                for slot, spec in self._call(value, state, value_bound=True):
                    self.summary.returns_acquired.setdefault(slot, spec)
            else:
                self._expr(value, state)
            self.exit_states.append((state, "return"))
        return []

    def _return_slot(self, state: _State, name: ast.Name, slot: int) -> None:
        rid = state.env.get(name.id)
        resource = state.res.get(rid) if rid is not None else None
        if resource is None:
            return
        if resource.state == "REL":
            self._use_after_release(name.lineno, name.id, resource)
        elif resource.state == "ACQ":
            self.summary.returns_acquired.setdefault(
                slot, (resource.kind, resource.releasers)
            )
            resource.state = "ESC"

    def _s_Raise(self, stmt: ast.Raise, states: list[_State]) -> list[_State]:
        for state in states:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, state)
            self.exit_states.append((state, "raise"))
        return []

    def _s_If(self, stmt: ast.If, states: list[_State]) -> list[_State]:
        out: list[_State] = []
        for state in states:
            self._expr(stmt.test, state)
            branch = self._none_test_branch(stmt.test, state)
            if branch == "body":
                out.extend(self._stmts(stmt.body, [state]))
            elif branch == "orelse":
                out.extend(self._stmts(stmt.orelse, [state]))
            else:
                body_state = state.copy()
                out.extend(self._stmts(stmt.body, [body_state]))
                out.extend(self._stmts(stmt.orelse, [state]))
        return out

    @staticmethod
    def _none_test_branch(test: ast.expr, state: _State) -> str | None:
        """The only feasible branch of an ``x is None`` / ``x is not
        None`` test when ``x`` is bound to a tracked lease in this state
        (bound ⇒ the acquire returned, so ``x`` is not None). This is
        what makes the ``release = fork; ... finally: if release is not
        None: release.free()`` idiom verify cleanly per-path."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.IsNot))
            and isinstance(test.left, ast.Name)
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        ):
            return None
        rid = state.env.get(test.left.id)
        resource = state.res.get(rid) if rid is not None else None
        if resource is None or resource.state == "PARAM":
            # A parameter really can be None at runtime; only leases
            # acquired on this path are known non-None.
            return None
        return "orelse" if isinstance(test.ops[0], ast.Is) else "body"

    def _s_For(self, stmt: ast.For, states: list[_State]) -> list[_State]:
        for state in states:
            self._expr(stmt.iter, state)
            for target in ast.walk(stmt.target):
                if isinstance(target, ast.Name):
                    state.env.pop(target.id, None)
        # One symbolic iteration; the no-iterations path is kept too.
        skipped = [s.copy() for s in states]
        looped = self._stmts(stmt.body, states)
        after = self._stmts(stmt.orelse, looped + skipped)
        return after

    _s_AsyncFor = _s_For

    def _s_While(self, stmt: ast.While, states: list[_State]) -> list[_State]:
        for state in states:
            self._expr(stmt.test, state)
        skipped = [s.copy() for s in states]
        looped = self._stmts(stmt.body, states)
        return self._stmts(stmt.orelse, looped + skipped)

    def _s_With(self, stmt: ast.With, states: list[_State]) -> list[_State]:
        for state in states:
            for item in stmt.items:
                self._expr(item.context_expr, state)
                if item.optional_vars is not None:
                    for target in ast.walk(item.optional_vars):
                        if isinstance(target, ast.Name):
                            state.env.pop(target.id, None)
        return self._stmts(stmt.body, states)

    _s_AsyncWith = _s_With

    def _s_Try(self, stmt: ast.Try, states: list[_State]) -> list[_State]:
        protected = self._protected_names(stmt)
        entry_snapshot = [s.copy() for s in states]
        entry_rids = {rid for s in states for rid in s.res}
        self.protection.append(protected)
        try:
            body_states = self._stmts(stmt.body, states)
        finally:
            self.protection.pop()
        orelse_states = self._stmts(stmt.orelse, body_states)
        handler_states: list[_State] = []
        if stmt.handlers:
            # A handler can run from anywhere inside the body: model its
            # entry as "body never ran" ∪ "body completed". In the
            # completed copies, neutralize leases the body itself
            # acquired: if the exception predates the acquire the lease
            # never existed, and if it postdates it the in-body
            # may-raise check already reported the leak — re-checking it
            # against handler code only duplicates the finding (and
            # misfires when the acquire was the body's last action).
            completed = [s.copy() for s in body_states]
            for s in completed:
                for rid, resource in s.res.items():
                    if rid not in entry_rids and resource.state == "ACQ":
                        resource.state = "ESC"
            basis = entry_snapshot + completed
            basis = basis[:_MAX_STATES]
            for handler in stmt.handlers:
                handler_states.extend(
                    self._stmts(handler.body, [s.copy() for s in basis])
                )
        out = orelse_states + handler_states
        if stmt.finalbody:
            out = self._stmts(stmt.finalbody, out)
        return out

    def _s_Delete(self, stmt: ast.Delete, states: list[_State]) -> list[_State]:
        for state in states:
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.env.pop(target.id, None)
        return states

    def _s_Assert(self, stmt: ast.Assert, states: list[_State]) -> list[_State]:
        for state in states:
            self._expr(stmt.test, state)
        return states

    # -- protection scan ---------------------------------------------------------

    def _protected_names(self, stmt: ast.Try) -> set[str]:
        """Names whose lease is released on unwind: released in the
        ``finally`` suite or in a catch-all handler."""
        suites: list[list[ast.stmt]] = []
        if stmt.finalbody:
            suites.append(stmt.finalbody)
        for handler in stmt.handlers:
            if handler.type is None or (
                isinstance(handler.type, ast.Name)
                and handler.type.id in ("Exception", "BaseException")
            ):
                suites.append(handler.body)
        names: set[str] = set()
        for suite in suites:
            for node in suite:
                for call in ast.walk(node):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = call.func
                    if not isinstance(callee, ast.Attribute):
                        continue
                    if callee.attr in _GENERIC_RELEASERS and isinstance(
                        callee.value, ast.Name
                    ):
                        names.add(callee.value.id)
                    # <anything>.release(x) / helper(x) releasing by arg
                    for arg in call.args:
                        if isinstance(arg, ast.Name):
                            names.add(arg.id)
        return names

    # -- expressions -------------------------------------------------------------

    def _assign(
        self, targets: list[ast.expr], value: ast.expr, state: _State
    ) -> None:
        acquired: list[tuple[int, tuple[str, tuple[str, ...]]]] = []
        if isinstance(value, ast.Call):
            acquired = self._call(value, state, value_bound=True)
        elif isinstance(value, ast.Name):
            pass  # alias; handled below
        else:
            self._expr(value, state)

        for target in targets:
            if isinstance(target, ast.Name):
                if isinstance(value, ast.Name):
                    rid = state.env.get(value.id)
                    if rid is not None:
                        state.env[target.id] = rid
                    else:
                        state.env.pop(target.id, None)
                    continue
                spec = dict(acquired).get(-1)
                if spec is not None:
                    self._bind_new(state, target.id, value.lineno, spec)
                else:
                    state.env.pop(target.id, None)
            elif isinstance(target, ast.Tuple) and isinstance(value, ast.Call):
                by_slot = dict(acquired)
                for pos, elt in enumerate(target.elts):
                    if not isinstance(elt, ast.Name):
                        continue
                    spec = by_slot.get(pos)
                    if spec is not None:
                        self._bind_new(state, elt.id, value.lineno, spec)
                    else:
                        state.env.pop(elt.id, None)
            else:
                # Attribute / subscript store: the value escapes.
                if isinstance(value, ast.Name):
                    self._escape_name(state, value.id)
                self._expr(target, state)

    def _bind_new(
        self, state: _State, name: str, line: int,
        spec: tuple[str, tuple[str, ...]],
    ) -> None:
        kind, releasers = spec
        rid = self._new_rid()
        state.env[name] = rid
        state.res[rid] = _Resource(rid, kind, "ACQ", line, releasers)

    def _escape_name(self, state: _State, name: str) -> None:
        rid = state.env.get(name)
        resource = state.res.get(rid) if rid is not None else None
        if resource is not None and resource.state == "ACQ":
            resource.state = "ESC"
        elif resource is not None and resource.state == "PARAM":
            self.summary.escapes_params.add(resource.param_index)

    def _release(self, state: _State, name: str, line: int) -> None:
        rid = state.env.get(name)
        resource = state.res.get(rid) if rid is not None else None
        if resource is None:
            return
        if resource.state == "PARAM":
            # Parameters aren't known to *be* leases — record the effect
            # for callers (who know what they passed) without entering
            # the released state, which would misfire on ordinary
            # objects that happen to have a close()/abort() method.
            self.summary.releases_params.add(resource.param_index)
            return
        if resource.state == "REL":
            self._emit(
                line,
                f"double release of '{name}' ({resource.kind} lease, first "
                f"released at line {resource.released_line})",
            )
            return
        resource.state = "REL"
        resource.released_line = line

    def _use_after_release(self, line: int, name: str, resource: _Resource) -> None:
        self._emit(
            line,
            f"use of '{name}' after its {resource.kind} lease was released "
            f"at line {resource.released_line}",
        )

    def _expr(self, expr: ast.expr, state: _State) -> None:
        """Generic expression evaluation: uses, nested calls, escapes."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._call(node, state, value_bound=False)
                break  # _call walks its own arguments
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                rid = state.env.get(node.id)
                resource = state.res.get(rid) if rid is not None else None
                if resource is not None and resource.state == "REL":
                    self._use_after_release(node.lineno, node.id, resource)

    # -- calls -------------------------------------------------------------------

    def _callee_name(self, call: ast.Call) -> str | None:
        fn = call.func
        if isinstance(fn, ast.Attribute):
            return fn.attr
        if isinstance(fn, ast.Name):
            return fn.id
        return None

    def _call(
        self, call: ast.Call, state: _State, value_bound: bool
    ) -> list[tuple[int, tuple[str, tuple[str, ...]]]]:
        """Interpret one call; returns acquired (slot, spec) pairs for a
        bound value. Recurses into argument calls first."""
        name = self._callee_name(call)
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None

        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Call):
                self._call(arg, state, value_bound=False)
            elif not isinstance(arg, ast.Name):
                self._expr(arg, state)
        if receiver is not None and not isinstance(receiver, ast.Name):
            self._expr(receiver, state)

        # Receiver-release: x.free() / x.finish() / x.abort() ...
        if receiver is not None and isinstance(receiver, ast.Name):
            rid = state.env.get(receiver.id)
            resource = state.res.get(rid) if rid is not None else None
            if resource is not None:
                if resource.state == "REL":
                    self._use_after_release(call.lineno, receiver.id, resource)
                elif name in resource.releasers and not (
                    name == "release" and call.args
                ):
                    # x.release() frees x; pool.release(page) frees the
                    # argument (handled below), not the pool.
                    self._release(state, receiver.id, call.lineno)
                    return []
            if resource is not None and resource.state == "REL":
                return []

        # Argument-release: pool.release(x).
        if name == "release":
            for arg in call.args:
                if isinstance(arg, ast.Name):
                    self._release(state, arg.id, call.lineno)
            return []

        targets = self.index.resolve_call(call, self.fn)
        acquired = self._seed(call, targets)

        if acquired is None:
            acquired = []
            if targets:
                summary = self.rule._summary(targets[0])
                self._apply_summary(call, targets[0], summary, state)
                if value_bound:
                    acquired = list(summary.returns_acquired.items())
            else:
                # Unresolved call: tracked arguments escape.
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    if isinstance(arg, ast.Name):
                        self._escape_name(state, arg.id)
        elif not value_bound:
            # A fresh lease whose value is dropped on the floor is out
            # of scope (comprehensions, direct hand-off); don't track.
            acquired = []

        if name not in _SAFE_CALLS:
            self._may_raise(call, state)
        return acquired

    def _seed(
        self, call: ast.Call, targets: list[FunctionInfo]
    ) -> list[tuple[int, tuple[str, tuple[str, ...]]]] | None:
        """Acquire spec when ``call`` mints a fresh lease, else None."""
        name = self._callee_name(call)
        for target in targets:
            spec = _SEED_BY_RESOLUTION.get((target.cls or "", target.name))
            if spec is not None:
                return [(-1, spec)]
        if name in _SEED_BY_NAME and isinstance(call.func, ast.Attribute):
            return [(-1, _SEED_BY_NAME[name])]
        return None

    def _apply_summary(
        self,
        call: ast.Call,
        target: FunctionInfo,
        summary: _Summary,
        state: _State,
    ) -> None:
        """Map callee param effects (release/escape) back onto our args."""
        params = target.params
        is_method = bool(params) and params[0] in ("self", "cls")
        arg_exprs: list[ast.expr | None] = []
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None
        if is_method and receiver is not None:
            arg_exprs.append(receiver)
        elif is_method:
            arg_exprs.append(None)
        arg_exprs.extend(call.args)
        by_name = {kw.arg: kw.value for kw in call.keywords if kw.arg}
        for pos, param in enumerate(params):
            expr: ast.expr | None = None
            if pos < len(arg_exprs):
                expr = arg_exprs[pos]
            elif param in by_name:
                expr = by_name[param]
            if not isinstance(expr, ast.Name):
                continue
            if pos in summary.releases_params:
                self._release(state, expr.id, call.lineno)
            elif pos in summary.escapes_params:
                self._escape_name(state, expr.id)

    def _may_raise(self, call: ast.Call, state: _State) -> None:
        for resource in state.res.values():
            if resource.state != "ACQ" or resource.rid in self.warned:
                continue
            if resource.line >= call.lineno:
                continue
            if self._protected(state, resource.rid):
                continue
            self.warned.add(resource.rid)
            self._emit(
                resource.line,
                f"{resource.kind} lease acquired here leaks if "
                f"'{ast.unparse(call.func)}(...)' at line {call.lineno} "
                "raises — release it in a try/finally",
                severity="warning",
            )


# =============================================================================
# no-write-to-mapped, promoted through the call graph
# =============================================================================


def mapped_write_helper_findings(
    modules: list[SourceModule],
    arena_expr,
    flag,
) -> list[Finding]:
    """Writes into KV arenas *through helper functions*.

    ``arena_expr``/``flag`` come from the lexical rule so both layers
    share one definition of "an arena expression" and one message shape.
    A helper taints a parameter when its body subscript-stores into it
    (or ``.fill()``\\ s it, or targets it with ``np.copyto``); every call
    site passing an arena into a tainted parameter is a finding.
    """
    index = ProjectIndex(modules)
    by_module: dict[str, SourceModule] = {m.relpath: m for m in modules}

    tainted: dict[str, set[int]] = {}  # qualname -> writing param positions
    for fn in index.functions.values():
        positions = _writing_params(fn)
        if positions:
            tainted[fn.qualname] = positions

    findings: list[Finding] = []
    if not tainted:
        return findings
    for fn in index.functions.values():
        module = by_module.get(fn.module.relpath)
        if module is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for target in index.resolve_call(node, fn):
                positions = tainted.get(target.qualname)
                if not positions:
                    continue
                params = target.params
                is_method = bool(params) and params[0] in ("self", "cls")
                offset = 1 if is_method else 0
                by_name = {kw.arg: kw.value for kw in node.keywords if kw.arg}
                for pos in sorted(positions):
                    expr: ast.AST | None = None
                    arg_index = pos - offset
                    if 0 <= arg_index < len(node.args):
                        expr = node.args[arg_index]
                    elif pos < len(params) and params[pos] in by_name:
                        expr = by_name[params[pos]]
                    if expr is None:
                        continue
                    arena = arena_expr(expr)
                    if arena is not None:
                        findings.append(
                            flag(
                                module, node, arena,
                                f"passed to {target.name}(), which writes "
                                f"its '{params[pos]}' parameter in place",
                            )
                        )
    return findings


def _writing_params(fn: FunctionInfo) -> set[int]:
    """Parameter positions ``fn`` writes through (subscript store,
    ``.fill()``-style mutators, or as an ``np.copyto`` destination)."""
    params = {name: pos for pos, name in enumerate(fn.params)}
    positions: set[int] = set()

    def _written_name(target: ast.AST) -> str | None:
        seen = target
        while isinstance(seen, ast.Subscript):
            seen = seen.value
        if isinstance(seen, ast.Name):
            return seen.id
        return None

    for node in ast.walk(fn.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                name = _written_name(target)
                if name in params:
                    positions.add(params[name])
        elif isinstance(node, ast.Call):
            callee = node.func
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("fill", "sort", "partition", "put", "itemset")
                and isinstance(callee.value, ast.Name)
                and callee.value.id in params
            ):
                positions.add(params[callee.value.id])
            elif (
                isinstance(callee, ast.Attribute)
                and callee.attr == "copyto"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in params
            ):
                positions.add(params[node.args[0].id])
    return positions
