"""Shape contracts for KV tensors, declared where the tensors flow.

The engine moves ``(n_layers, n_kv_heads, T, head_dim)`` tensors through
many hands — encoder, splicer, page pool, mirror — and a transposed or
mis-ranked array survives NumPy broadcasting long enough to corrupt
outputs silently. :func:`shape_contract` makes the expected rank part of
the function's signature:

- **Statically**, the ``kv-contract`` rule
  (:mod:`repro.analysis.rules`) requires every function whose parameters
  name KV tensors (``keys``/``values`` or ``key_arena``/``value_arena``)
  to carry the decorator and to declare a spec for each such parameter.
- **At runtime**, when sanitizers are installed
  (:func:`repro.analysis.sanitize.install_sanitizers`), the decorator
  verifies each declared argument's rank against its spec and raises
  :class:`ContractViolation` on mismatch. With sanitizers off the
  wrapper is a single global-flag check.

Specs are axis strings like ``"(n_kv_heads, T, head_dim)"``; only the
axis *count* is enforced (sizes are data-dependent), but the names
document the layout at the call boundary.

This module is intentionally dependency-free (stdlib only) so the hot
tensor modules can import it without cycles.
"""

from __future__ import annotations

import functools
import inspect

__all__ = ["ContractViolation", "enforce_contracts", "shape_contract"]

# Flipped by repro.analysis.sanitize.install_sanitizers(); checked once
# per decorated call, so the cost with sanitizers off is negligible.
_ENFORCING = False


class ContractViolation(AssertionError):
    """A KV tensor reached a function with the wrong rank."""


def enforce_contracts(on: bool) -> None:
    """Toggle runtime rank checking for every decorated function."""
    global _ENFORCING
    _ENFORCING = bool(on)


def contracts_enforced() -> bool:
    return _ENFORCING


def _axis_count(spec: str) -> int:
    inner = spec.strip().strip("()")
    return len([axis for axis in inner.split(",") if axis.strip()])


def shape_contract(**specs: str):
    """Declare per-parameter tensor shapes, e.g.
    ``@shape_contract(keys="(n_kv_heads, T, head_dim)")``.

    The declared specs are attached as ``__shape_contract__`` (the static
    rule cross-checks them) and enforced at call time while
    :func:`enforce_contracts` is on. Parameters that are ``None`` or lack
    an ``ndim`` attribute are skipped — contracts describe arrays, not
    their absence.
    """
    ranks = {name: _axis_count(spec) for name, spec in specs.items()}

    def decorate(fn):
        signature = inspect.signature(fn)
        unknown = set(specs) - set(signature.parameters)
        if unknown:
            raise TypeError(
                f"shape_contract on {fn.__qualname__} names parameters "
                f"{sorted(unknown)} that are not in its signature"
            )

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _ENFORCING:
                bound = signature.bind(*args, **kwargs)
                for name, rank in ranks.items():
                    value = bound.arguments.get(name)
                    ndim = getattr(value, "ndim", None)
                    if ndim is not None and ndim != rank:
                        raise ContractViolation(
                            f"{fn.__qualname__}: parameter {name!r} declared "
                            f"{specs[name]} ({rank} axes) but got an array "
                            f"with {ndim} axes, shape {tuple(value.shape)}"
                        )
            return fn(*args, **kwargs)

        wrapper.__shape_contract__ = dict(specs)
        return wrapper

    return decorate
