"""Command-line front end: ``python -m repro.analysis`` / ``repro analyze``.

Default invocation analyzes ``src/`` against the committed baseline
(``analysis-baseline.json`` at the repository root) and exits non-zero
only on findings the baseline does not cover — so CI blocks regressions
while accepted legacy findings age out as they are fixed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import (
    analyze_paths,
    fingerprints,
    load_baseline,
    new_findings,
    remap_baseline,
    write_baseline,
)
from repro.analysis.rules import default_rules
from repro.analysis.sarif import to_sarif, write_sarif

DEFAULT_BASELINE = "analysis-baseline.json"


def _repo_root() -> Path:
    """Nearest ancestor holding the package's ``src`` dir (cwd fallback)."""
    here = Path(__file__).resolve()
    for ancestor in here.parents:
        if (ancestor / "src" / "repro").is_dir():
            return ancestor
    return Path.cwd()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="AST lint engine for the repository's own source",
    )
    add_arguments(parser)
    return parser


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyze options to ``parser`` (shared with ``repro``'s
    ``analyze`` subcommand)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repo's src/)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help=f"baseline file (default: <repo>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--error-on-new", action="store_true",
        help="exit non-zero on findings missing from the baseline (default "
             "behaviour; flag kept for explicit CI invocations)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on ANY finding, baselined or not",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept current findings: rewrite the baseline and exit 0",
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json", "sarif"],
        help="output format",
    )
    parser.add_argument(
        "--sarif-out", type=Path, default=None, metavar="FILE",
        help="also write a SARIF 2.1.0 log to FILE (for code scanning)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan the per-file scan over N worker processes (project "
             "rules still run once, in this process)",
    )
    parser.add_argument(
        "--baseline-remap", action="append", default=[], metavar="OLD:NEW",
        help="migrate baseline entries after a file rename (repo-relative "
             "OLD:NEW; repeatable) and exit — no analysis is run",
    )


def main(argv: list[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


def run(args: argparse.Namespace) -> int:
    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.name:<24} {rule.description}")
        return 0
    if args.rules:
        wanted = {name.strip() for name in args.rules.split(",") if name.strip()}
        unknown = wanted - {rule.name for rule in rules}
        if unknown:
            print(f"unknown rules: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.name in wanted]

    root = _repo_root()
    paths = args.paths or [root / "src"]
    baseline_path = args.baseline or root / DEFAULT_BASELINE

    if args.baseline_remap:
        renames: dict[str, str] = {}
        for spec in args.baseline_remap:
            old, sep, new = spec.partition(":")
            if not sep or not old or not new:
                print(f"--baseline-remap expects OLD:NEW, got {spec!r}",
                      file=sys.stderr)
                return 2
            renames[old] = new
        moved = remap_baseline(baseline_path, renames)
        print(f"baseline: remapped {moved} entr{'y' if moved == 1 else 'ies'}")
        return 0

    report = analyze_paths(paths, rules, root=root, jobs=max(args.jobs, 1))
    for error in report.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)

    if args.write_baseline:
        write_baseline(baseline_path, report.findings)
        print(
            f"baseline: accepted {len(report.findings)} finding(s) into "
            f"{baseline_path}"
        )
        return 0

    baseline = load_baseline(baseline_path)
    fresh = new_findings(report.findings, baseline)
    failing = report.findings if args.strict else fresh

    if args.sarif_out is not None:
        write_sarif(args.sarif_out, report.findings, rules)

    if args.format == "sarif":
        print(json.dumps(to_sarif(report.findings, rules), indent=2))
    elif args.format == "json":
        payload = {
            "files_scanned": report.files_scanned,
            "findings": [
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "line": finding.line,
                    "col": finding.col,
                    "message": finding.message,
                    "severity": finding.severity,
                    "fingerprint": fp,
                    "baselined": fp in baseline,
                }
                for finding, fp in zip(report.findings, fingerprints(report.findings))
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in failing:
            print(finding)
        baselined = len(report.findings) - len(fresh)
        print(
            f"analyzed {report.files_scanned} file(s): "
            f"{len(report.findings)} finding(s), {baselined} baselined, "
            f"{len(fresh)} new"
        )
    return 1 if (failing or report.parse_errors) else 0
