"""SARIF 2.1.0 emission for GitHub code scanning.

One run per invocation, one ``result`` per finding. Severities map to
SARIF levels verbatim (``error``/``warning``/``note``) and the engine's
line-drift-stable fingerprints ride in ``partialFingerprints`` under the
key ``reproAnalysis/v1`` so code-scanning alert identity survives
unrelated edits exactly as the committed baseline does.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import Finding, Rule, fingerprints

__all__ = ["to_sarif", "write_sarif"]

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"
_FINGERPRINT_KEY = "reproAnalysis/v1"


def to_sarif(findings: list[Finding], rules: list[Rule]) -> dict:
    """The SARIF log object for one analysis run."""
    rule_ids = sorted({rule.name for rule in rules} | {f.rule for f in findings})
    by_name = {rule.name: rule for rule in rules}
    rule_index = {rule_id: pos for pos, rule_id in enumerate(rule_ids)}
    descriptors = [
        {
            "id": rule_id,
            "name": _pascal(rule_id),
            "shortDescription": {
                "text": getattr(by_name.get(rule_id), "description", "") or rule_id
            },
            "defaultConfiguration": {
                "level": getattr(by_name.get(rule_id), "severity", "error")
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": finding.rule,
            "ruleIndex": rule_index[finding.rule],
            "level": finding.severity,
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {_FINGERPRINT_KEY: fingerprint},
        }
        for finding, fingerprint in zip(findings, fingerprints(findings))
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": "https://github.com/",
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def write_sarif(path: Path, findings: list[Finding], rules: list[Rule]) -> None:
    path.write_text(json.dumps(to_sarif(findings, rules), indent=2) + "\n")


def _pascal(rule_id: str) -> str:
    return "".join(part.capitalize() for part in rule_id.split("-") if part)
