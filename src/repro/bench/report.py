"""Paper-style table and series rendering for the benchmark harness.

Each benchmark prints its table to stdout *and* appends it to
``benchmarks/results/<name>.txt`` so the regenerated rows survive pytest's
output capture. EXPERIMENTS.md points at these files.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(
    os.environ.get("REPRO_RESULTS_DIR", Path(__file__).resolve().parents[3] / "benchmarks" / "results")
)


def format_table(title: str, header: list[str], rows: list[list], note: str = "") -> str:
    """Fixed-width table with a title rule, matching the repo's reports."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in cells)) if cells else len(header[i])
        for i in range(len(header))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def emit(name: str, text: str) -> str:
    """Print a report block and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def format_series(title: str, x_label: str, xs: list, series: dict[str, list], note: str = "") -> str:
    """A figure rendered as columns: x plus one column per named series."""
    header = [x_label, *series.keys()]
    rows = [[x, *(s[i] for s in series.values())] for i, x in enumerate(xs)]
    return format_table(title, header, rows, note=note)
