"""Benchmark harness: workload runners and paper-style reporting."""

from repro.bench.harness import (
    MeasuredTTFT,
    ModeledTTFT,
    TokenProfile,
    dataset_profile,
    measure_sample,
    modeled_ttft,
    scale_profile,
    time_call,
    token_profile,
)
from repro.bench.report import emit, format_series, format_table

__all__ = [
    "TokenProfile", "token_profile", "dataset_profile", "scale_profile",
    "ModeledTTFT", "modeled_ttft", "MeasuredTTFT", "measure_sample",
    "time_call", "emit", "format_table", "format_series",
]
