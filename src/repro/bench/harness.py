"""Workload harness shared by the benchmark suite.

Two complementary measurement paths, mirroring DESIGN.md §2:

- **Modeled** — token counts from real dataset samples drive the
  analytical device model (:mod:`repro.hw.latency`) at the paper's model
  shapes and context lengths. Regenerates the per-device Figures 3–5.
- **Measured** — the NumPy engine actually serves the sample on the host
  CPU (`small` model shape) and wall-clock TTFT is recorded. Confirms the
  same speedup *shape* on real computation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.cache.engine import PromptCache
from repro.datasets.suite import Sample, build_dataset
from repro.hw.device import DeviceSpec
from repro.hw.latency import baseline_ttft, cached_ttft
from repro.llm.config import ModelConfig


@dataclass
class TokenProfile:
    """Cached/uncached split of one dataset at a given scale."""

    dataset: str
    cached_tokens: int
    uncached_tokens: int

    @property
    def total(self) -> int:
        return self.cached_tokens + self.uncached_tokens


def token_profile(sample: Sample, tokenizer) -> TokenProfile:
    """Token counts for a sample: documents are cached, directives are not."""
    cached = sum(len(tokenizer.encode(text)) for _, text in sample.documents)
    uncached = len(tokenizer.encode(sample.question))
    return TokenProfile(sample.dataset, cached, uncached)


def dataset_profile(
    name: str, tokenizer, *, context_words: int = 400, n_samples: int = 3, seed: int = 0
) -> TokenProfile:
    """Mean token profile over ``n_samples`` of dataset ``name``."""
    samples = build_dataset(name, n_samples=n_samples, context_words=context_words, seed=seed)
    profiles = [token_profile(s, tokenizer) for s in samples]
    return TokenProfile(
        dataset=name,
        cached_tokens=sum(p.cached_tokens for p in profiles) // len(profiles),
        uncached_tokens=sum(p.uncached_tokens for p in profiles) // len(profiles),
    )


def scale_profile(profile: TokenProfile, target_total: int) -> TokenProfile:
    """Scale the cached portion so the prompt totals ``target_total`` tokens
    (the paper's LongBench samples average ~5K); directives stay fixed."""
    cached = max(target_total - profile.uncached_tokens, 0)
    return TokenProfile(profile.dataset, cached, profile.uncached_tokens)


@dataclass
class ModeledTTFT:
    dataset: str
    device: str
    storage: str
    baseline_s: float
    cached_s: float

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.cached_s


def modeled_ttft(
    profile: TokenProfile,
    config: ModelConfig,
    device: DeviceSpec,
    storage: str,
) -> ModeledTTFT:
    """Analytical baseline-vs-cached TTFT for one dataset on one device."""
    total = profile.total
    return ModeledTTFT(
        dataset=profile.dataset,
        device=device.name,
        storage=storage,
        baseline_s=baseline_ttft(config, total, device).total_s,
        cached_s=cached_ttft(
            config, total, profile.uncached_tokens, device, storage
        ).total_s,
    )


@dataclass
class MeasuredTTFT:
    dataset: str
    baseline_s: float
    cached_s: float
    splice_s: float
    cached_tokens: int
    uncached_tokens: int

    @property
    def speedup(self) -> float:
        return self.baseline_s / self.cached_s


def measure_sample(
    pc: PromptCache, sample: Sample, *, max_new_tokens: int = 1
) -> MeasuredTTFT:
    """Serve one sample both ways through the real engine; wall-clock TTFT."""
    pc.register_schema(sample.schema_pml(), eager=True)
    prompt = sample.prompt_pml()
    baseline = pc.baseline(prompt, max_new_tokens=max_new_tokens)
    cached = pc.serve(prompt, max_new_tokens=max_new_tokens)
    return MeasuredTTFT(
        dataset=sample.dataset,
        baseline_s=baseline.ttft_s,
        cached_s=cached.ttft_s,
        splice_s=cached.splice_s,
        cached_tokens=cached.cached_tokens,
        uncached_tokens=cached.uncached_tokens,
    )


def time_call(fn, *args, repeats: int = 1, **kwargs) -> float:
    """Best-of-N wall-clock seconds for ``fn(*args, **kwargs)``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best
