"""Token-level radix trie: the index behind schema-free reuse discovery.

Prompt Cache (§3) reuses attention states only for segments declared in
a hand-written PML schema. The trie removes that authoring step: every
token stream served by the engine is inserted here, shared prefixes
compress into single edges (path compression, ChunkAttention-style), and
per-node hit/recency/frequency statistics tell the miner which prefixes
are hot enough to promote into real cached modules.

Design points:

- **O(L) longest-prefix match.** Children are keyed by their first
  token, so a lookup touches each query token exactly once regardless of
  how many sequences are stored.
- **Path compression.** A node holds a *run* of tokens (its edge label),
  not a single token; inserting a diverging sequence splits the run at
  the divergence point. ``node_count`` therefore scales with the number
  of branch points, not total tokens.
- **Eviction.** The trie is itself a cache: it holds at most
  ``max_tokens`` tokens across all runs, evicting leaf-first under LRU
  or LFU order, and expires nodes idle longer than ``ttl_s``. Evicting
  an interior node would orphan its subtree, so only leaves are
  candidates; pruning a leaf re-merges its parent with a single
  surviving sibling to keep compression canonical.
- **Deterministic.** All time comes from an injectable ``clock`` and a
  logical access counter, so tests and the miner's promotion policy are
  reproducible.

The trie stores no KV tensors — it manages token keys and statistics;
the engine owns the attention states (same split as the
prompt-cache-engine exemplar the ROADMAP points at).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

EVICT_CAPACITY = "capacity"
EVICT_TTL = "ttl"


@dataclass
class TrieStats:
    """Counters the metrics layer exports (see ``LiveServer``)."""

    inserts: int = 0
    lookups: int = 0
    splits: int = 0
    evictions: int = 0
    ttl_evictions: int = 0
    node_count: int = 0
    token_count: int = 0


class TrieNode:
    """One compressed edge: a run of tokens plus reuse statistics.

    ``end`` is the absolute token offset (from the root) of the last
    token in this node's run, exclusive: the path from the root to this
    node spells exactly ``end`` tokens.
    """

    __slots__ = (
        "tokens", "children", "parent", "end",
        "hits", "last_used_at", "last_used_wall", "created_wall",
        "promoted", "module_name",
    )

    def __init__(self, tokens: tuple[int, ...], parent: "TrieNode | None", end: int):
        self.tokens = tokens
        self.children: dict[int, TrieNode] = {}
        self.parent = parent
        self.end = end
        self.hits = 0  # sequences that fully covered this run
        self.last_used_at = 0  # logical access clock (LRU order)
        self.last_used_wall = 0.0  # wall clock (TTL)
        self.created_wall = 0.0
        self.promoted = False  # miner marked this node a module boundary
        self.module_name: str | None = None

    @property
    def start(self) -> int:
        return self.end - len(self.tokens)

    def is_leaf(self) -> bool:
        return not self.children

    def path_tokens(self) -> tuple[int, ...]:
        """Full token sequence from the root to the end of this run."""
        runs: list[tuple[int, ...]] = []
        node: TrieNode | None = self
        while node is not None and node.parent is not None:
            runs.append(node.tokens)
            node = node.parent
        return tuple(t for run in reversed(runs) for t in run)


@dataclass
class MatchResult:
    """Outcome of :meth:`TokenRadixTrie.longest_prefix`."""

    length: int  # matched prefix length in tokens
    path: list[TrieNode] = field(default_factory=list)  # fully covered nodes


class TokenRadixTrie:
    """Path-compressed token trie with LRU/LFU + TTL eviction."""

    def __init__(
        self,
        max_tokens: int | None = None,
        max_nodes: int | None = None,
        policy: str = "lru",
        ttl_s: float | None = None,
        clock=time.monotonic,
        on_evict=None,
    ) -> None:
        if policy not in ("lru", "lfu"):
            raise ValueError(f"unknown trie policy {policy!r}; expected 'lru' or 'lfu'")
        self.max_tokens = max_tokens
        self.max_nodes = max_nodes
        self.policy = policy
        self.ttl_s = ttl_s
        self.clock = clock
        # Called with (node, reason) for every pruned node; the miner
        # uses it to demote the node's discovered module.
        self.on_evict = on_evict
        self.root = TrieNode((), None, 0)
        self.stats = TrieStats()
        self._access = itertools.count(1)

    # -- insertion ---------------------------------------------------------------

    def insert(self, token_ids) -> list[TrieNode]:
        """Insert a sequence, splitting runs at divergence points.

        Returns the node path whose runs the sequence fully covers, root
        side first — the candidates the miner scans for promotion. Every
        returned node's hit count and recency are refreshed.
        """
        tokens = tuple(int(t) for t in token_ids)
        self.stats.inserts += 1
        now = self.clock()
        covered: list[TrieNode] = []
        node = self.root
        i = 0
        while i < len(tokens):
            child = node.children.get(tokens[i])
            if child is None:
                child = TrieNode(tokens[i:], node, i + len(tokens) - i)
                child.end = len(tokens)
                child.created_wall = now
                node.children[tokens[i]] = child
                self.stats.node_count += 1
                self.stats.token_count += len(child.tokens)
                self._touch(child, now)
                covered.append(child)
                i = len(tokens)
                break
            run = child.tokens
            common = _common_prefix_len(run, tokens, i)
            if common == len(run):
                # Full run covered: descend.
                self._touch(child, now)
                covered.append(child)
                i += common
                node = child
                continue
            # Partial cover: split the run at the divergence point.
            child = self._split(child, common, now)
            self._touch(child, now)
            if common > 0:
                covered.append(child)
            i += common
            node = child
            # Loop continues; next iteration either finds no child for
            # tokens[i] (new leaf) or never matches (split node's other
            # half starts with a different token).
        self._enforce_limits(now)
        return covered

    def _split(self, node: TrieNode, at: int, now: float) -> TrieNode:
        """Split ``node``'s run after ``at`` tokens; returns the new upper
        node (which keeps the statistics — every sequence that covered
        the old long run also covered the shorter upper half)."""
        upper = TrieNode(node.tokens[:at], node.parent, node.start + at)
        upper.hits = node.hits
        upper.last_used_at = node.last_used_at
        upper.last_used_wall = node.last_used_wall
        upper.created_wall = node.created_wall
        assert node.parent is not None
        node.parent.children[node.tokens[0]] = upper
        node.tokens = node.tokens[at:]
        node.parent = upper
        upper.children[node.tokens[0]] = node
        self.stats.node_count += 1
        self.stats.splits += 1
        return upper

    def _touch(self, node: TrieNode, now: float) -> None:
        node.hits += 1
        node.last_used_at = next(self._access)
        node.last_used_wall = now
        if node.created_wall == 0.0:
            node.created_wall = now

    # -- lookup ------------------------------------------------------------------

    def longest_prefix(self, token_ids, touch: bool = False) -> MatchResult:
        """Longest stored prefix of ``token_ids``: O(len(token_ids)).

        ``path`` holds the nodes whose full runs matched; ``length`` also
        counts a partial match inside the next node's run. With
        ``touch``, matched nodes' recency/frequency are refreshed (a
        lookup that leads to reuse should keep the prefix warm).
        """
        tokens = tuple(int(t) for t in token_ids)
        self.stats.lookups += 1
        now = self.clock() if touch else 0.0
        node = self.root
        i = 0
        path: list[TrieNode] = []
        while i < len(tokens):
            child = node.children.get(tokens[i])
            if child is None:
                break
            common = _common_prefix_len(child.tokens, tokens, i)
            i += common
            if common < len(child.tokens):
                break
            if touch:
                self._touch(child, now)
            path.append(child)
            node = child
        return MatchResult(length=i, path=path)

    def promoted_chain(self, token_ids) -> list[TrieNode]:
        """Promoted nodes along the fully-matched prefix, root side first.

        The chain is contiguous from the root by construction (the miner
        promotes ancestors before descendants), so the returned nodes'
        segments tile ``[0, chain[-1].end)``.
        """
        result = self.longest_prefix(token_ids, touch=True)
        return [n for n in result.path if n.promoted]

    def nodes(self):
        """Every node (excluding the root), no particular order."""
        stack = list(self.root.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    # -- eviction ----------------------------------------------------------------

    def sweep_expired(self, now: float | None = None) -> int:
        """Prune every leaf idle past ``ttl_s`` (cascading: a parent whose
        children all expired becomes a leaf and is checked too)."""
        if self.ttl_s is None:
            return 0
        now = self.clock() if now is None else now
        pruned = 0
        doomed = [
            n for n in self.nodes()
            if n.is_leaf() and now - n.last_used_wall > self.ttl_s
        ]
        while doomed:
            node = doomed.pop()
            parent = node.parent
            self._prune(node, EVICT_TTL)
            pruned += 1
            if (
                parent is not None and parent is not self.root
                and parent.is_leaf() and now - parent.last_used_wall > self.ttl_s
            ):
                doomed.append(parent)
        return pruned

    def _enforce_limits(self, now: float) -> None:
        self.sweep_expired(now)
        while (
            (self.max_tokens is not None and self.stats.token_count > self.max_tokens)
            or (self.max_nodes is not None and self.stats.node_count > self.max_nodes)
        ):
            victim = self._victim()
            if victim is None:
                return
            self._prune(victim, EVICT_CAPACITY)

    def _victim(self) -> TrieNode | None:
        """Coldest leaf under the configured policy."""
        leaves = [n for n in self.nodes() if n.is_leaf()]
        if not leaves:
            return None
        if self.policy == "lfu":
            return min(leaves, key=lambda n: (n.hits, n.last_used_at))
        return min(leaves, key=lambda n: n.last_used_at)

    def _prune(self, node: TrieNode, reason: str) -> None:
        parent = node.parent
        assert parent is not None and node.is_leaf()
        del parent.children[node.tokens[0]]
        self.stats.node_count -= 1
        self.stats.token_count -= len(node.tokens)
        self.stats.evictions += 1
        if reason == EVICT_TTL:
            self.stats.ttl_evictions += 1
        if self.on_evict is not None:
            self.on_evict(node, reason)
        self._maybe_merge(parent)

    def _maybe_merge(self, node: TrieNode) -> None:
        """Re-compress: a non-promoted interior node left with exactly one
        child merges with it (promoted nodes keep their boundary — it is
        a module edge the engine references)."""
        if node is self.root or node.promoted or len(node.children) != 1:
            return
        (child,) = node.children.values()
        child.tokens = node.tokens + child.tokens
        child.parent = node.parent
        assert node.parent is not None
        node.parent.children[child.tokens[0]] = child
        # Drop the merged-away node's run from the books; the child keeps
        # its own statistics (the merged node's were a superset count of
        # a shorter prefix, which no longer exists as a boundary).
        self.stats.node_count -= 1


def _common_prefix_len(run: tuple[int, ...], tokens: tuple[int, ...], offset: int) -> int:
    """Length of the common prefix of ``run`` and ``tokens[offset:]``."""
    limit = min(len(run), len(tokens) - offset)
    i = 0
    while i < limit and run[i] == tokens[offset + i]:
        i += 1
    return i
