"""Pre-flight batch dedup analysis: how much of a batch is shared?

Before a batch is dispatched, :func:`analyze_batch` measures the
fraction of its prompt tokens that are a repeat of an earlier sequence's
prefix *within the same batch* — the "dedup potential". A batch with
potential 0.6 could skip 60% of its prefill FLOPs under perfect prefix
sharing; the live server exports the number per batch so operators can
see how much the discovery plane has left on the table.

The measurement is exact, not an estimate: sequences are inserted into a
transient radix trie one by one, and each sequence's shared-token count
is its longest-prefix match against the sequences before it. That makes
the metric order-dependent in the same way real prefix reuse is (the
first occurrence always pays full freight), so it matches what a
prefix-sharing prefill could actually save on this batch in this order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.reuse.trie import TokenRadixTrie


@dataclass(frozen=True)
class DedupReport:
    """Shared-token accounting for one batch of token sequences."""

    sequences: int
    total_tokens: int
    shared_tokens: int  # tokens covered by an earlier sequence's prefix

    @property
    def unique_tokens(self) -> int:
        return self.total_tokens - self.shared_tokens

    @property
    def potential(self) -> float:
        """Fraction of batch tokens a prefix-sharing prefill could skip."""
        return self.shared_tokens / self.total_tokens if self.total_tokens else 0.0


def analyze_batch(token_seqs) -> DedupReport:
    """Exact shared-prefix fraction across ``token_seqs`` (list of
    token-id sequences), in batch order."""
    trie = TokenRadixTrie()
    total = 0
    shared = 0
    count = 0
    for seq in token_seqs:
        seq = list(seq)
        count += 1
        total += len(seq)
        if trie.stats.node_count:
            shared += trie.longest_prefix(seq).length
        trie.insert(seq)
    return DedupReport(sequences=count, total_tokens=total, shared_tokens=shared)
