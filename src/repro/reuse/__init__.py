"""repro.reuse — schema-free reuse discovery (ISSUE 6).

A token-level radix trie mines live traffic for shared prefixes and
auto-registers them as synthetic prompt modules, extending Prompt
Cache's modular reuse to workloads that never wrote a PML schema.

- :mod:`repro.reuse.trie` — path-compressed token trie: O(L) longest
  prefix match, per-node hit/recency stats, LRU/LFU + TTL eviction.
- :mod:`repro.reuse.miner` — promotion policy: hot shared prefixes
  become discovered modules through ``PromptCache.register_discovered_module``.
- :mod:`repro.reuse.dedup` — pre-flight batch dedup-potential analysis.
"""

from repro.reuse.dedup import DedupReport, analyze_batch
from repro.reuse.miner import DiscoveryConfig, MinerStats, ReuseMiner
from repro.reuse.trie import (
    EVICT_CAPACITY,
    EVICT_TTL,
    MatchResult,
    TokenRadixTrie,
    TrieNode,
    TrieStats,
)

__all__ = [
    "DedupReport",
    "analyze_batch",
    "DiscoveryConfig",
    "MinerStats",
    "ReuseMiner",
    "EVICT_CAPACITY",
    "EVICT_TTL",
    "MatchResult",
    "TokenRadixTrie",
    "TrieNode",
    "TrieStats",
]
