"""Reuse miner: turns trie statistics into cache policy.

The miner observes every token stream the engine serves, feeds it to the
:class:`~repro.reuse.trie.TokenRadixTrie`, and promotes trie nodes that
cross configurable hit/length thresholds into *discovered modules* via
the engine hook ``register_discovered_module``. Schema inference becomes
a cache policy instead of an authoring step (ISSUE 6): nobody writes PML
for a shared system prompt — the miner notices it repeating and caches
it.

Byte-identity contract (the load-bearing invariant): a discovered module
covers a token span ``[start, end)`` of a *prefix chain* — ``start`` is
the end of the nearest promoted ancestor at promotion time — and its KV
is encoded conditioned on the true tokens ``[0, start)``. Serving then
splices the matched promoted chain (which tiles ``[0, chain[-1].end)``
contiguously) and prefills the remainder, which under causal attention
reproduces the full-prefill attention states exactly. The miner
guarantees the tiling by only ever extending a path's promoted chain at
its tip: a node shallower than an already-promoted descendant is never
promoted (its segment would overlap the descendant's).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.analysis.locks import ordered_lock
from repro.reuse.trie import TokenRadixTrie, TrieNode


@dataclass(frozen=True)
class DiscoveryConfig:
    """Tuning knobs for promotion and trie retention.

    ``min_hits`` is the number of observed sequences that must share a
    prefix before it is worth encoding (2 = promote on first repeat);
    ``min_tokens`` is the minimum segment length — splicing a handful of
    tokens costs more than prefilling them.
    """

    min_hits: int = 3
    min_tokens: int = 16
    max_modules: int = 64
    max_trie_tokens: int = 262_144
    max_trie_nodes: int | None = None
    ttl_s: float | None = None
    policy: str = "lru"  # trie eviction order: "lru" | "lfu"

    def validate(self) -> None:
        if self.min_hits < 2:
            raise ValueError("min_hits must be >= 2 (a prefix seen once is not shared)")
        if self.min_tokens < 1:
            raise ValueError("min_tokens must be >= 1")
        if self.max_modules < 1:
            raise ValueError("max_modules must be >= 1")


@dataclass
class MinerStats:
    promotions: int = 0
    demotions: int = 0
    failed_promotions: int = 0
    observed_sequences: int = 0
    observed_tokens: int = 0


class ReuseMiner:
    """Observe token streams; promote hot shared prefixes into modules.

    The miner is thread-safe (one lock around trie + promotion state):
    the live server observes from its executor thread while stats
    snapshots come from the event loop.
    """

    def __init__(
        self,
        engine,
        config: DiscoveryConfig | None = None,
        clock=time.monotonic,
    ) -> None:
        self.engine = engine
        self.config = config or DiscoveryConfig()
        self.config.validate()
        self.trie = TokenRadixTrie(
            max_tokens=self.config.max_trie_tokens,
            max_nodes=self.config.max_trie_nodes,
            policy=self.config.policy,
            ttl_s=self.config.ttl_s,
            clock=clock,
            on_evict=self._on_trie_evict,
        )
        self.stats = MinerStats()
        self.last_promotion_error: str | None = None
        # Promotion calls into the engine (store + fastpath locks) while
        # holding this lock, so the miner sits *before* the store in the
        # canonical order:
        # lock-order: store after reuse.miner
        self._lock = ordered_lock("reuse.miner")
        self._module_count = 0
        self._seq = 0

    # -- observation & promotion -------------------------------------------------

    def observe(self, token_ids) -> None:
        """Record one served sequence; promote any node that newly
        crosses the thresholds."""
        with self._lock:
            self.stats.observed_sequences += 1
            self.stats.observed_tokens += len(token_ids)
            path = self.trie.insert(token_ids)
            self._maybe_promote(path)

    def _maybe_promote(self, path: list[TrieNode]) -> None:
        # guarded-by: self._lock
        # Only extend the promoted chain at its tip: nodes above the
        # deepest already-promoted node are permanently ineligible (their
        # segment would overlap a registered module's span).
        last_promoted = -1
        for i, node in enumerate(path):
            if node.promoted:
                last_promoted = i
        prev_end = path[last_promoted].end if last_promoted >= 0 else 0
        ancestors = [
            n.module_name for n in path[: last_promoted + 1]
            if n.promoted and n.module_name is not None
        ]
        for node in path[last_promoted + 1 :]:
            if self._module_count >= self.config.max_modules:
                return
            if (
                node.hits >= self.config.min_hits
                and node.end - prev_end >= self.config.min_tokens
            ):
                if self._promote(node, prev_end, ancestors):
                    prev_end = node.end
                    ancestors.append(node.module_name)
            # A node that fails the length test stays unpromoted, but a
            # deeper node may still qualify with a segment spanning it.

    def _promote(self, node: TrieNode, start: int, ancestors: list[str]) -> bool:
        # guarded-by: self._lock
        self._seq += 1
        name = f"seg{self._seq:04d}"
        prefix = node.path_tokens()
        try:
            self.engine.register_discovered_module(
                name, prefix, start, ancestors=tuple(ancestors)
            )
        except Exception as exc:
            # Encoding can fail (store pressure, model errors); the node
            # stays eligible and the next observation retries. The cause
            # is kept for reuse-stats — a silently failing promoter
            # would look like a discovery plane that found nothing.
            self.stats.failed_promotions += 1
            self.last_promotion_error = repr(exc)
            return False
        node.promoted = True
        node.module_name = name
        self._module_count += 1
        self.stats.promotions += 1
        return True

    def _on_trie_evict(self, node: TrieNode, reason: str) -> None:
        # guarded-by: self._lock (eviction only runs inside insert/sweep)
        if not node.promoted or node.module_name is None:
            return
        self.engine.unregister_discovered_module(node.module_name, reason=reason)
        self._module_count -= 1
        self.stats.demotions += 1
        node.promoted = False
        node.module_name = None

    # -- matching ----------------------------------------------------------------

    def match(self, token_ids) -> list[str]:
        """Names of the promoted chain covering a prefix of ``token_ids``,
        root side first. The engine resolves names to spans/KV."""
        with self._lock:
            return [
                n.module_name
                for n in self.trie.promoted_chain(token_ids)
                if n.module_name is not None
            ]

    def matched_prefix_len(self, token_ids) -> int:
        """Tokens of ``token_ids`` covered by the promoted chain (0 when
        nothing matches) — content-based, so routers can key placement on
        the covered prefix without depending on per-miner module names."""
        with self._lock:
            chain = self.trie.promoted_chain(token_ids)
            return chain[-1].end if chain else 0

    def sweep(self) -> int:
        """Expire idle trie state now (callers with no traffic pressure)."""
        with self._lock:
            return self.trie.sweep_expired()

    # -- introspection -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready stats for metrics export and ``repro reuse-stats``."""
        with self._lock:
            t = self.trie.stats
            return {
                "trie_nodes": t.node_count,
                "trie_tokens": t.token_count,
                "trie_inserts": t.inserts,
                "trie_lookups": t.lookups,
                "trie_splits": t.splits,
                "trie_evictions": t.evictions,
                "trie_ttl_evictions": t.ttl_evictions,
                "modules": self._module_count,
                "promotions": self.stats.promotions,
                "demotions": self.stats.demotions,
                "failed_promotions": self.stats.failed_promotions,
                "observed_sequences": self.stats.observed_sequences,
                "observed_tokens": self.stats.observed_tokens,
                "last_promotion_error": self.last_promotion_error,
            }
