"""Multi-server scheduling with cache-affinity routing.

Prompt Cache makes request placement matter: a server that already holds a
schema's modules serves its requests with a splice, any other server pays
the encode (or an h2d fetch). This module extends the single-server
simulator to a fleet and compares routing policies:

- ``round-robin`` — cache-oblivious spreading;
- ``least-loaded`` — queue-length balancing, cache-oblivious;
- ``affinity`` — consistent hashing of the schema to a home server, with
  spill to the least-loaded server when the home queue is deep.

The affinity policy is the natural design for a Prompt Cache fleet: it
concentrates each schema's traffic so modules are encoded once per fleet
instead of once per server.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.serving.simulator import RequestOutcome, SimConfig, SimReport, _service_times
from repro.serving.traces import TraceRequest

POLICIES = ("round-robin", "least-loaded", "affinity")


@dataclass
class _Server:
    index: int
    free_at: float = 0.0
    store: ModuleCacheStore | None = None
    report: SimReport = field(default_factory=lambda: SimReport(mode="prompt-cache"))


@dataclass
class FleetReport:
    policy: str
    servers: list[SimReport]
    outcomes: list[RequestOutcome] = field(default_factory=list)

    def ttft_percentile(self, q: float) -> float:
        ttfts = [o.ttft_s for o in self.outcomes]
        return float(np.percentile(ttfts, q)) if ttfts else 0.0

    @property
    def total_encodes(self) -> int:
        return sum(s.encode_events for s in self.servers)

    @property
    def mean_ttft_s(self) -> float:
        ttfts = [o.ttft_s for o in self.outcomes]
        return float(np.mean(ttfts)) if ttfts else 0.0


class FleetScheduler:
    """Dispatch a trace across ``n_servers`` identical servers."""

    def __init__(
        self,
        cfg: SimConfig,
        n_servers: int,
        policy: str = "affinity",
        spill_queue_s: float = 4.0,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        self.cfg = cfg
        self.policy = policy
        self.spill_queue_s = spill_queue_s
        self.servers = [
            _Server(
                index=i,
                store=(
                    ModuleCacheStore(gpu_capacity_bytes=cfg.gpu_capacity_bytes)
                    if cfg.mode == "prompt-cache"
                    else None
                ),
            )
            for i in range(n_servers)
        ]
        self._rr_next = 0

    # -- routing ----------------------------------------------------------------

    def _route(self, request: TraceRequest, now: float) -> _Server:
        if self.policy == "round-robin":
            server = self.servers[self._rr_next % len(self.servers)]
            self._rr_next += 1
            return server
        if self.policy == "least-loaded":
            return min(self.servers, key=lambda s: max(s.free_at - now, 0.0))
        # affinity: consistent hash, spill when the home queue is deep.
        home = self.servers[zlib.crc32(request.schema.encode()) % len(self.servers)]
        if max(home.free_at - now, 0.0) > self.spill_queue_s:
            return min(self.servers, key=lambda s: max(s.free_at - now, 0.0))
        return home

    # -- simulation --------------------------------------------------------------

    def run(self, trace: list[TraceRequest]) -> FleetReport:
        report = FleetReport(policy=self.policy, servers=[s.report for s in self.servers])
        for request in sorted(trace, key=lambda r: r.arrival_s):
            server = self._route(request, request.arrival_s)
            start = max(request.arrival_s, server.free_at)
            prefill_s, decode_s = _service_times(
                self.cfg, request, server.store, server.report
            )
            ttft_done = start + prefill_s
            finish = ttft_done + decode_s
            server.free_at = finish
            outcome = RequestOutcome(
                request=request, start_s=start, ttft_done_s=ttft_done, finish_s=finish
            )
            server.report.outcomes.append(outcome)
            report.outcomes.append(outcome)
        return report


def compare_policies(
    trace: list[TraceRequest],
    cfg: SimConfig,
    n_servers: int = 4,
    spill_queue_s: float = 4.0,
) -> dict[str, FleetReport]:
    """Run the same trace under every routing policy.

    ``spill_queue_s`` tunes affinity's encode-vs-balance trade-off: lower
    thresholds spill hot-schema bursts to other servers sooner (extra
    encodes) instead of queueing at the home server (tail latency).
    """
    return {
        policy: FleetScheduler(cfg, n_servers, policy, spill_queue_s).run(list(trace))
        for policy in POLICIES
    }
