"""Event-driven serving simulator: Prompt Cache as a system component.

The paper positions Prompt Cache "as a foundational component for future
LLM serving systems" (§6). This simulator quantifies that: a single
inference server (FCFS queue) replays a request trace under either

- ``baseline`` — every request pays a full KV-cache prefill, or
- ``prompt-cache`` — requests pay module splice + suffix prefill; module
  states live in a capacity-limited GPU tier (demoted to host DRAM on
  eviction, paying host-to-device copy on reuse; first-ever use pays the
  one-time encode).

Per-request service times come from the calibrated roofline model
(:mod:`repro.hw.latency`), so queueing delay, tail latency, and the
sustainable arrival rate are all derived from the same physics as the
paper's Figures 3–5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.hw.device import DeviceSpec
from repro.hw.latency import baseline_ttft, cached_ttft, decode_step_latency
from repro.llm.config import ModelConfig
from repro.llm.flops import kv_bytes
from repro.serving.traces import TraceRequest

MODES = ("baseline", "prompt-cache")


@dataclass
class SimulatedKV:
    """Byte-accounted stand-in for a module's tensors inside the store."""

    tokens: int
    bytes_: int

    def nbytes(self) -> int:
        return self.bytes_

    def __len__(self) -> int:
        return self.tokens


@dataclass(frozen=True)
class SimConfig:
    model: ModelConfig
    device: DeviceSpec
    mode: str  # one of MODES
    gpu_capacity_bytes: int | None = None  # module-cache budget (prompt-cache)
    eviction_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")


@dataclass
class RequestOutcome:
    request: TraceRequest
    start_s: float
    ttft_done_s: float
    finish_s: float

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.request.arrival_s

    @property
    def ttft_s(self) -> float:
        """User-perceived TTFT: queueing + prefill."""
        return self.ttft_done_s - self.request.arrival_s


@dataclass
class SimReport:
    mode: str
    outcomes: list[RequestOutcome] = field(default_factory=list)
    encode_events: int = 0
    h2d_fetches: int = 0

    def _ttfts(self) -> np.ndarray:
        return np.array([o.ttft_s for o in self.outcomes])

    def ttft_percentile(self, q: float) -> float:
        return float(np.percentile(self._ttfts(), q)) if self.outcomes else 0.0

    @property
    def mean_ttft_s(self) -> float:
        return float(self._ttfts().mean()) if self.outcomes else 0.0

    @property
    def throughput_rps(self) -> float:
        if not self.outcomes:
            return 0.0
        makespan = max(o.finish_s for o in self.outcomes)
        return len(self.outcomes) / makespan if makespan > 0 else 0.0

    @property
    def utilization(self) -> float:
        if not self.outcomes:
            return 0.0
        busy = sum(o.finish_s - o.start_s for o in self.outcomes)
        return busy / max(o.finish_s for o in self.outcomes)


def _service_times(
    cfg: SimConfig,
    request: TraceRequest,
    store: ModuleCacheStore | None,
    report: SimReport,
) -> tuple[float, float]:
    """(prefill seconds, decode seconds) for one request."""
    total = request.total_prompt_tokens
    decode_s = request.decode_tokens * decode_step_latency(
        cfg.model, total, cfg.device
    )
    if cfg.mode == "baseline":
        return baseline_ttft(cfg.model, total, cfg.device).total_s, decode_s

    assert store is not None
    key = CacheKey(schema=request.schema, module="context")
    found = store.fetch(key)
    if found is None:
        # First-ever use: encode the module (a one-time full prefill of the
        # module text) and serve this request from the fresh states.
        report.encode_events += 1
        encode_s = baseline_ttft(cfg.model, request.cached_tokens, cfg.device).total_s
        store.put(
            key,
            SimulatedKV(
                tokens=request.cached_tokens,
                bytes_=kv_bytes(cfg.model, request.cached_tokens, cfg.device.dtype_bytes),
            ),
            tier="gpu",
        )
        storage = "gpu"
        prefill_s = encode_s + cached_ttft(
            cfg.model, total, request.uncached_tokens, cfg.device, storage
        ).total_s
        return prefill_s, decode_s

    storage = found.tier
    if storage == "cpu":
        report.h2d_fetches += 1
        # Promote back to the GPU tier for subsequent requests.
        store.prefetch([key])
    prefill_s = cached_ttft(
        cfg.model, total, request.uncached_tokens, cfg.device, storage
    ).total_s
    return prefill_s, decode_s


def simulate(trace: list[TraceRequest], cfg: SimConfig) -> SimReport:
    """Replay ``trace`` through a single FCFS server; returns the report."""
    report = SimReport(mode=cfg.mode)
    store = None
    if cfg.mode == "prompt-cache":
        store = ModuleCacheStore(
            gpu_capacity_bytes=cfg.gpu_capacity_bytes, policy=cfg.eviction_policy
        )
    server_free_at = 0.0
    for request in sorted(trace, key=lambda r: r.arrival_s):
        start = max(request.arrival_s, server_free_at)
        prefill_s, decode_s = _service_times(cfg, request, store, report)
        ttft_done = start + prefill_s
        finish = ttft_done + decode_s
        server_free_at = finish
        report.outcomes.append(
            RequestOutcome(
                request=request, start_s=start, ttft_done_s=ttft_done, finish_s=finish
            )
        )
    return report


def sustainable_rate(
    profiles,
    cfg: SimConfig,
    *,
    rates: list[float],
    duration_s: float = 120.0,
    ttft_slo_s: float = 2.0,
    seed: int = 0,
) -> float:
    """Highest tested arrival rate whose p95 TTFT stays within the SLO."""
    from repro.serving.traces import synthesize_trace

    best = 0.0
    for rate in rates:
        trace = synthesize_trace(profiles, rate, duration_s, seed=seed)
        if not trace:
            continue
        report = simulate(trace, cfg)
        if report.ttft_percentile(95) <= ttft_slo_s:
            best = max(best, rate)
    return best
