"""Workload trace synthesis for the serving simulator.

Models the serving scenario the paper motivates: a pool of schemas
(document sets, templates) with skewed popularity, Poisson request
arrivals, and per-request cached/uncached/decode token counts drawn from
the LongBench-like dataset profiles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SchemaProfile:
    """Aggregate shape of requests hitting one schema."""

    name: str
    module_tokens: int  # cached module content per request
    uncached_mean: int  # directive/question tokens
    decode_mean: int  # generated tokens
    weight: float = 1.0  # relative popularity


@dataclass(frozen=True)
class TraceRequest:
    request_id: int
    arrival_s: float
    schema: str
    cached_tokens: int
    uncached_tokens: int
    decode_tokens: int

    @property
    def total_prompt_tokens(self) -> int:
        return self.cached_tokens + self.uncached_tokens


def poisson_arrivals(
    rate_rps: float, duration_s: float, rng: np.random.Generator
) -> list[float]:
    """Arrival times of a Poisson process over [0, duration)."""
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_rps))
        if t >= duration_s:
            return times
        times.append(t)


def synthesize_trace(
    profiles: list[SchemaProfile],
    rate_rps: float,
    duration_s: float,
    seed: int = 0,
) -> list[TraceRequest]:
    """Poisson arrivals; schema drawn by popularity; token counts jittered
    ±20% around each profile's means (deterministic per seed)."""
    rng = np.random.default_rng(seed)
    weights = np.array([p.weight for p in profiles], dtype=float)
    weights /= weights.sum()
    requests: list[TraceRequest] = []
    for i, arrival in enumerate(poisson_arrivals(rate_rps, duration_s, rng)):
        profile = profiles[int(rng.choice(len(profiles), p=weights))]
        jitter = lambda mean: max(int(rng.normal(mean, 0.1 * mean)), 1)  # noqa: E731
        requests.append(
            TraceRequest(
                request_id=i,
                arrival_s=arrival,
                schema=profile.name,
                cached_tokens=jitter(profile.module_tokens),
                uncached_tokens=jitter(profile.uncached_mean),
                decode_tokens=jitter(profile.decode_mean),
            )
        )
    return requests


def schema_interarrivals(trace: list[TraceRequest]) -> dict[str, float]:
    """Mean inter-arrival seconds per schema, mined from a trace.

    The fabric prefetcher seeds its per-schema demand estimates from this:
    a schema whose requests land every ~2 s should have its modules pulled
    up-tier shortly before the next predicted arrival. Schemas seen only
    once have no interval and are omitted.
    """
    arrivals: dict[str, list[float]] = {}
    for request in trace:
        arrivals.setdefault(request.schema, []).append(request.arrival_s)
    means: dict[str, float] = {}
    for schema, times in arrivals.items():
        if len(times) < 2:
            continue
        times.sort()
        gaps = [b - a for a, b in zip(times, times[1:])]
        means[schema] = sum(gaps) / len(gaps)
    return means


def longbench_profiles(n_schemas: int = 8, context_tokens: int = 5000) -> list[SchemaProfile]:
    """A schema pool shaped like the paper's evaluation: ~5K-token document
    contexts, ~100-token directives, Zipf-skewed popularity."""
    return [
        SchemaProfile(
            name=f"schema{i}",
            module_tokens=context_tokens,
            uncached_mean=100 if i % 4 else 300,  # a few TriviaQA-like heavies
            decode_mean=64,
            weight=1.0 / (i + 1),  # Zipf(1)
        )
        for i in range(n_schemas)
    ]
