"""Serving-system layer: trace synthesis and an event-driven simulator
showing Prompt Cache as a serving component (paper §6)."""

from repro.serving.scheduler import (
    FleetReport,
    FleetScheduler,
    compare_policies,
)
from repro.serving.simulator import (
    MODES,
    RequestOutcome,
    SimConfig,
    SimReport,
    SimulatedKV,
    simulate,
    sustainable_rate,
)
from repro.serving.traces import (
    SchemaProfile,
    TraceRequest,
    longbench_profiles,
    poisson_arrivals,
    synthesize_trace,
)

__all__ = [
    "FleetScheduler", "FleetReport", "compare_policies",
    "SimConfig", "SimReport", "RequestOutcome", "SimulatedKV", "simulate",
    "sustainable_rate", "MODES",
    "TraceRequest", "SchemaProfile", "poisson_arrivals", "synthesize_trace",
    "longbench_profiles",
]
