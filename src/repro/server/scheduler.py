"""Iteration-level (continuous) batching over resumable serve streams.

The legacy worker dispatches a whole batch into ``serve_batch`` and the
slot stays occupied until every member finishes decoding — short
requests wait behind long decodes, and the model runs its single-token
forwards one sequence at a time. :class:`ContinuousScheduler` rebuilds
that hot loop around *iterations* (vLLM-style):

1. **Sample & retire.** Every decoding sequence takes one sampling
   decision. A sequence hitting a stop token or its budget retires on
   the spot — its paged fork (and mirror lease) is freed *before*
   admission runs, so the slot is refilled this same iteration.
2. **Admit.** Queued requests are admitted up to ``max_inflight``; the
   splice (fork of the shared pre-spliced base) happens here, on the
   engine thread.
3. **Chunked prefill.** Up to ``prefill_chunk_tokens`` uncached prompt
   tokens are forwarded across prefilling sequences, oldest first — a
   long cold prefill is spread over iterations instead of stalling
   decode progress for everyone else. A sequence whose prompt completes
   samples its first token immediately (TTFT never waits an extra
   iteration).
4. **Batched decode.** Every sequence still needing a forward joins
   **one** ``forward_decode_batch`` call — stacked token/position IDs
   over the per-sequence ``PagedLayerKV`` leases, bit-identical to the
   sequential forwards (see :mod:`repro.llm.attention`).

Before the batched forward, sequences are grouped by the pre-spliced
base their paged cache was forked from (``ServeStream.shared_group``):
members of one group decode over the *same* shared KV prefix, so the
forward can run ChunkAttention's two-phase path — chunk-first attention
over the shared prefix once per group, per-sequence attention over each
private suffix, merged with the online softmax
(:func:`repro.llm.attention.chunk_phase`). ``shared_attention`` selects
the policy: ``"off"`` never groups (the byte-reference path), ``"on"``
groups every eligible stream, ``"auto"`` (default) engages only when a
group has at least two members sharing at least
``AUTO_MIN_SHARED_TOKENS`` KV tokens — below that the two-phase
bookkeeping costs more than the shared stream saves.

The scheduler is synchronous and single-threaded by design: the runtime
calls :meth:`iterate` from one worker (usually on the serving executor
thread, the engine being the serial resource) and applies the returned
:class:`IterationOutcome` — token events with real wall-clock
timestamps, retired results, errors — back on the event loop, where the
asyncio-side request state lives.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.llm.flops import shared_decode_flops_saved
from repro.server.request import LiveRequest

# "auto" engages the two-phase path only for shared prefixes of at least
# one page worth of tokens: shorter chunks save less KV streaming than
# the extra exp/merge passes cost.
AUTO_MIN_SHARED_TOKENS = 16

_SHARED_ATTENTION_MODES = ("auto", "on", "off")


@dataclass
class _InFlight:
    """One admitted sequence: the request handle plus its engine stream."""

    request: LiveRequest
    stream: object  # repro.cache.engine.ServeStream (duck-typed for tests)
    admitted_at: float


@dataclass
class IterationOutcome:
    """Everything one iteration did, for the event loop to apply.

    ``emitted`` carries ``(request, token, timestamp)`` in generation
    order; ``finished`` carries ``(request, result, error, timestamp)``
    with exactly one of result/error set. ``requeued`` is the admission
    overflow (never under correct slot prediction, but the runtime puts
    them back rather than losing them).
    """

    emitted: list[tuple[LiveRequest, int, float]] = field(default_factory=list)
    finished: list[tuple[LiveRequest, object, Exception | None, float]] = (
        field(default_factory=list)
    )
    requeued: list[LiveRequest] = field(default_factory=list)
    admitted: int = 0
    prefill_tokens: int = 0
    decode_batch: int = 0  # sequences in this iteration's batched forward
    active_after: int = 0
    elapsed_s: float = 0.0
    # ChunkAttention share-factor picture for this iteration's forward:
    # sizes of the groups that took the two-phase path, KV tokens
    # streamed once per shared chunk vs per private suffix, and the
    # effective attention FLOPs the sharing saved (see
    # repro.llm.flops.shared_decode_flops_saved).
    shared_group_sizes: list[int] = field(default_factory=list)
    shared_kv_tokens: int = 0
    private_kv_tokens: int = 0
    flops_saved: int = 0


class ContinuousScheduler:
    """Owns the in-flight sequence set; one :meth:`iterate` per step."""

    def __init__(
        self,
        pc,
        *,
        max_inflight: int = 8,
        prefill_chunk_tokens: int = 256,
        shared_attention: str = "auto",
        clock=time.monotonic,
        maintenance=None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if prefill_chunk_tokens < 1:
            raise ValueError("prefill_chunk_tokens must be >= 1")
        if shared_attention not in _SHARED_ATTENTION_MODES:
            raise ValueError(
                f"shared_attention must be one of {_SHARED_ATTENTION_MODES}"
            )
        self.pc = pc
        self.max_inflight = max_inflight
        self.prefill_chunk_tokens = prefill_chunk_tokens
        self.shared_attention = shared_attention
        self.clock = clock
        # Optional idle-work hook (fabric TTL sweep + prefetch). Called
        # at the end of an iteration only when the iteration had spare
        # prefill capacity, so background pulls never displace decode or
        # a cold prefill — the "prefetch never starves decode" contract.
        self.maintenance = maintenance
        self.maintenance_runs = 0
        # Admission order; no lock — iterate()/abort_all() are called
        # serially by the one runtime worker that owns this scheduler.
        self._inflight: list[_InFlight] = []

    @property
    def active(self) -> int:
        return len(self._inflight)

    def predicted_free_slots(self) -> int:
        """Slots the next iteration can fill: currently free ones plus
        sequences certain to retire in its sample phase (their next
        sampling decision exhausts ``max_new_tokens``). A lower bound —
        stop-token retirements only free more — so admission based on it
        never overshoots ``max_inflight``."""
        retiring = sum(
            1 for seq in self._inflight
            if seq.stream.decoding
            and len(seq.stream.output_ids) >= seq.stream.max_new_tokens - 1
        )
        return self.max_inflight - len(self._inflight) + retiring

    # -- the iteration -----------------------------------------------------------

    def iterate(self, admissions: list[LiveRequest]) -> IterationOutcome:
        """One scheduler step (engine-thread side). ``admissions`` must
        not exceed :meth:`predicted_free_slots` from just before the
        call; overflow is returned in ``requeued``."""
        outcome = IterationOutcome()
        started = self.clock()

        # Phase 1: one sampling decision per decoding sequence; retire
        # on stop/budget immediately so admission below sees the slot.
        sample_s = -time.perf_counter()
        for seq in list(self._inflight):
            stream = seq.stream
            if not stream.decoding:
                continue
            token, needs_forward = stream.next_token()
            outcome.emitted.append((seq.request, token, self.clock()))
            if not needs_forward:
                self._retire(seq, outcome)
        sample_s += time.perf_counter()

        # Phase 2: admission — the splice/fork work happens here.
        for request in admissions:
            if len(self._inflight) >= self.max_inflight:
                outcome.requeued.append(request)
                continue
            try:
                stream = self._open(request)
            except Exception as exc:  # bad prompt or engine fault: fail just it
                outcome.finished.append((request, None, exc, self.clock()))
                continue
            try:
                self._inflight.append(_InFlight(request, stream, self.clock()))
            except BaseException:
                stream.abort()  # not yet tracked: nothing else will free it
                raise
            outcome.admitted += 1

        # Phase 3: chunked prefill, oldest sequence first. A sequence
        # whose prompt completes takes its first sampling decision now.
        budget = self.prefill_chunk_tokens
        for seq in list(self._inflight):
            if budget <= 0:
                break
            stream = seq.stream
            if stream.prefill_remaining == 0:
                continue
            try:
                consumed = stream.prefill_step(budget)
            except Exception as exc:
                self._fail(seq, exc, outcome)
                continue
            budget -= consumed
            outcome.prefill_tokens += consumed
            if stream.prefill_remaining == 0:
                if stream.done:  # zero-token decode budget
                    self._retire(seq, outcome)
                    continue
                token, needs_forward = stream.next_token()
                outcome.emitted.append((seq.request, token, self.clock()))
                if not needs_forward:
                    self._retire(seq, outcome)

        # Phase 4: one batched single-token forward across every
        # sequence whose sampled token still needs its forward.
        forward = [seq for seq in self._inflight if seq.stream.decoding]
        if forward:
            shared_groups = self._plan_shared_groups(forward, outcome)
            forward_s = -time.perf_counter()
            try:
                if shared_groups:
                    logits = self.pc.model.forward_decode_batch(
                        np.asarray([seq.stream.output_ids[-1] for seq in forward]),
                        np.asarray([seq.stream.decode_position for seq in forward]),
                        [seq.stream.cache for seq in forward],
                        shared_groups=shared_groups,
                    )
                else:
                    logits = self.pc.model.forward_decode_batch(
                        np.asarray([seq.stream.output_ids[-1] for seq in forward]),
                        np.asarray([seq.stream.decode_position for seq in forward]),
                        [seq.stream.cache for seq in forward],
                    )
            except Exception as exc:
                # A poisoned batched step: there is no per-sequence
                # attribution, so fail every participant (mirrors the
                # legacy path failing its whole batch).
                for seq in forward:
                    self._fail(seq, exc, outcome)
            else:
                forward_s += time.perf_counter()
                step_s = sample_s + forward_s
                for i, seq in enumerate(forward):
                    seq.stream.set_logits(logits[i], step_s)
                outcome.decode_batch = len(forward)

        # Idle-capacity maintenance: only when this iteration left prefill
        # budget unused (no cold prompt was waiting on the engine).
        if (
            self.maintenance is not None
            and outcome.prefill_tokens < self.prefill_chunk_tokens
        ):
            self.maintenance()
            self.maintenance_runs += 1

        outcome.active_after = len(self._inflight)
        outcome.elapsed_s = self.clock() - started
        return outcome

    # -- helpers -----------------------------------------------------------------

    def _plan_shared_groups(
        self, forward: list[_InFlight], outcome: IterationOutcome
    ) -> list[tuple[list[int], int]] | None:
        """Group this iteration's decoding sequences by the pre-spliced
        base their caches were forked from. Two streams holding the same
        ``shared_group`` object (the engine's ``_SplicedBase``) decode
        over byte-identical copies of that base's first ``shared_len``
        mirror tokens, so their shared-prefix attention can run once.
        Returns ``(member indices into forward, shared_len)`` per group
        taking the two-phase path, or ``None`` when it is disabled,
        nothing qualifies, or the policy says it would not pay off."""
        if self.shared_attention == "off":
            return None
        buckets: dict[int, tuple[int, list[int]]] = {}
        for i, seq in enumerate(forward):
            base = getattr(seq.stream, "shared_group", None)
            length = getattr(seq.stream, "shared_len", 0)
            if base is None or length <= 0:
                continue
            buckets.setdefault(id(base), (length, []))[1].append(i)
        plan: list[tuple[list[int], int]] = []
        for length, members in buckets.values():
            if self.shared_attention == "auto" and (
                len(members) < 2 or length < AUTO_MIN_SHARED_TOKENS
            ):
                continue
            plan.append((members, length))
        if not plan:
            return None

        # Share-factor observability: KV tokens streamed once per shared
        # chunk vs per private suffix (lengths counted *after* this
        # step's append — each sequence attends over cache + 1 token),
        # and the effective attention FLOPs the grouping saves.
        grouped: set[int] = set()
        config = getattr(getattr(self.pc, "model", None), "config", None)
        for members, length in plan:
            grouped.update(members)
            outcome.shared_group_sizes.append(len(members))
            outcome.shared_kv_tokens += length
            if config is not None:
                outcome.flops_saved += shared_decode_flops_saved(
                    config, length, len(members)
                )
        for i, seq in enumerate(forward):
            cache = getattr(seq.stream, "cache", None)
            try:
                total = len(cache) + 1
            except TypeError:
                continue
            shared = (
                getattr(seq.stream, "shared_len", 0) if i in grouped else 0
            )
            outcome.private_kv_tokens += max(total - shared, 0)
        return plan

    def _open(self, request: LiveRequest):
        if request.raw:
            return self.pc.open_text_stream(
                request.prompt, max_new_tokens=request.max_new_tokens
            )
        return self.pc.open_stream(
            request.prompt, max_new_tokens=request.max_new_tokens
        )

    def _retire(self, seq: _InFlight, outcome: IterationOutcome) -> None:
        self._inflight.remove(seq)
        outcome.finished.append(
            (seq.request, seq.stream.finish(), None, self.clock())
        )

    def _fail(self, seq: _InFlight, exc: Exception, outcome: IterationOutcome) -> None:
        self._inflight.remove(seq)
        seq.stream.abort()
        outcome.finished.append((seq.request, None, exc, self.clock()))

    def abort_all(self) -> list[LiveRequest]:
        """Release every in-flight stream (non-drain shutdown); returns
        the abandoned requests so the runtime can fail them."""
        requests = []
        for seq in self._inflight:
            seq.stream.abort()
            requests.append(seq.request)
        self._inflight.clear()
        return requests
