"""A small, dependency-free metrics registry for the serving runtime.

Three instrument kinds — counters, gauges, histograms — organised into
labelled families, exportable as Prometheus text or a JSON-ready
snapshot. Histograms keep both cumulative buckets (the Prometheus
convention) and a bounded sample reservoir so TTFT/TTLT percentiles can
be computed exactly for the run lengths this repo cares about.

Everything is guarded by one registry lock: the runtime records metrics
from its executor thread while the event loop (or a scraper) snapshots
them concurrently.
"""

from __future__ import annotations

import json
import threading

import numpy as np

from repro.analysis.locks import ordered_lock

# Latency-shaped default buckets (seconds), 1 ms .. 10 s.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

SNAPSHOT_QUANTILES = (50.0, 90.0, 95.0, 99.0)

_RESERVOIR_CAP = 100_000  # plenty for offline runs; bounds memory anyway


class Counter:
    """Monotonically increasing count."""

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock  # lock-order: metrics.registry
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (queue depth, bytes resident)."""

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock  # lock-order: metrics.registry
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative buckets plus an exact sample reservoir."""

    def __init__(
        self, lock: threading.RLock, buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> None:
        self._lock = lock  # lock-order: metrics.registry
        self.bounds = tuple(sorted(buckets))
        self._bucket_counts = [0] * (len(self.bounds) + 1)  # +inf tail
        self._sum = 0.0
        self._count = 0
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self._bucket_counts[i] += 1
                    break
            else:
                self._bucket_counts[-1] += 1
            if len(self._samples) < _RESERVOIR_CAP:
                self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile over the retained samples (q in [0, 100])."""
        with self._lock:
            if not self._samples:
                return 0.0
            return float(np.percentile(np.asarray(self._samples), q))

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +inf."""
        with self._lock:
            out: list[tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.bounds, self._bucket_counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self._bucket_counts[-1]))
            return out


class _Family:
    """One metric name with labelled children of a single kind."""

    def __init__(self, name: str, kind: str, help_: str, lock, buckets=None) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        self.buckets = buckets
        self._lock = lock  # lock-order: metrics.registry
        self.children: dict[tuple[tuple[str, str], ...], object] = {}

    def child(self, labels: dict[str, str]):
        key = tuple(sorted(labels.items()))
        with self._lock:
            metric = self.children.get(key)
            if metric is None:
                if self.kind == "counter":
                    metric = Counter(self._lock)
                elif self.kind == "gauge":
                    metric = Gauge(self._lock)
                else:
                    metric = Histogram(self._lock, self.buckets or DEFAULT_BUCKETS)
                self.children[key] = metric
            return metric


def _label_str(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


def _merge_labels(base: str, extra: str) -> str:
    """Merge two rendered label blocks: '{a="1"}' + '{b="2"}'."""
    if not base:
        return extra
    if not extra:
        return base
    return base[:-1] + "," + extra[1:]


class MetricsRegistry:
    """Create-or-get metric families; render Prometheus text / JSON."""

    def __init__(self) -> None:
        # Leaf lock: metric recording happens under the store lock
        # (eviction listeners), the engine fast path, and the fabric
        # placement ledger, never the other way around.
        self._lock = ordered_lock(
            "metrics.registry", after=("store", "engine.fastpath", "fabric.placement")
        )
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_: str, buckets=None) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_: str = "", **labels: str) -> Counter:
        return self._family(name, "counter", help_).child(labels)

    def gauge(self, name: str, help_: str = "", **labels: str) -> Gauge:
        return self._family(name, "gauge", help_).child(labels)

    def histogram(
        self, name: str, help_: str = "", buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        return self._family(name, "histogram", help_, buckets).child(labels)

    # -- export -----------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition. Histograms emit the standard
        ``_bucket``/``_sum``/``_count`` series plus a ``<name>_quantile``
        gauge family carrying the exact reservoir percentiles."""
        with self._lock:
            lines: list[str] = []
            for family in self._families.values():
                if family.help:
                    lines.append(f"# HELP {family.name} {family.help}")
                lines.append(f"# TYPE {family.name} {family.kind}")
                for key, metric in family.children.items():
                    labels = _label_str(key)
                    if family.kind in ("counter", "gauge"):
                        lines.append(f"{family.name}{labels} {metric.value:g}")
                        continue
                    for bound, cum in metric.cumulative_buckets():
                        le = "+Inf" if bound == float("inf") else f"{bound:g}"
                        le_label = '{le="%s"}' % le
                        lines.append(
                            f"{family.name}_bucket"
                            f"{_merge_labels(labels, le_label)} {cum}"
                        )
                    lines.append(f"{family.name}_sum{labels} {metric.sum:g}")
                    lines.append(f"{family.name}_count{labels} {metric.count}")
                if family.kind == "histogram" and any(
                    m.count for m in family.children.values()
                ):
                    lines.append(f"# TYPE {family.name}_quantile gauge")
                    for key, metric in family.children.items():
                        labels = _label_str(key)
                        for q in SNAPSHOT_QUANTILES:
                            quantile = '{quantile="%g"}' % (q / 100)
                            lines.append(
                                f"{family.name}_quantile"
                                f"{_merge_labels(labels, quantile)} "
                                f"{metric.percentile(q):g}"
                            )
            return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-ready nested dict of every series."""
        with self._lock:
            out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
            for family in self._families.values():
                for key, metric in family.children.items():
                    series = family.name + _label_str(key)
                    if family.kind == "counter":
                        out["counters"][series] = metric.value
                    elif family.kind == "gauge":
                        out["gauges"][series] = metric.value
                    else:
                        out["histograms"][series] = {
                            "count": metric.count,
                            "sum": metric.sum,
                            "mean": metric.mean,
                            **{
                                f"p{q:g}": metric.percentile(q)
                                for q in SNAPSHOT_QUANTILES
                            },
                        }
            return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
