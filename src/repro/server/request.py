"""Request lifecycle types for the live serving runtime.

A request moves through::

    submit → QUEUED → RUNNING → DONE
                 ↘ REJECTED (admission)   ↘ FAILED (engine error)
                 ↘ EXPIRED (deadline mid-queue)
                 ↘ CANCELLED (client)

:class:`LiveRequest` is the runtime's handle: it owns the token stream,
the completion event, and every lifecycle timestamp, and it flattens to
a :class:`TraceRecord` — the structured per-request trace the
observability layer keeps.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import AsyncIterator

from repro.cache.engine import ServeResult

# Lifecycle states (plain strings so records serialize trivially).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
REJECTED = "rejected"
EXPIRED = "expired"
CANCELLED = "cancelled"
FAILED = "failed"

TERMINAL_STATES = frozenset({DONE, REJECTED, EXPIRED, CANCELLED, FAILED})

_STREAM_END = None  # sentinel closing the token stream


@dataclass
class TraceRecord:
    """One finished request, flattened for logs/analysis."""

    request_id: str
    schema: str
    state: str
    submitted_at: float
    queue_wait_s: float
    ttft_s: float | None  # submit → first token (None if never served)
    ttlt_s: float | None  # submit → last token
    cached_tokens: int
    uncached_tokens: int
    output_tokens: int
    batch_size: int
    error: str | None = None

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class LiveRequest:
    """A submitted request plus everything observed about it."""

    request_id: str
    prompt: str
    schema: str
    max_new_tokens: int
    submitted_at: float
    deadline_at: float | None = None  # absolute, on the runtime clock
    state: str = QUEUED
    # Schema-free raw-text request (served via ``PromptCache.serve_text``,
    # mined by reuse discovery) — ``schema`` then holds the "__raw__" label.
    raw: bool = False
    # Batching-affinity override: requests sharing a discovered prefix
    # chain carry the same group so the batcher co-schedules them.
    batch_group: str | None = None

    # Lifecycle timestamps (runtime clock).
    started_at: float | None = None
    first_token_at: float | None = None
    # Most recent token emission — the continuous scheduler's anchor for
    # inter-token latency (first_token_at stays fixed once set).
    last_token_at: float | None = None
    finished_at: float | None = None
    batch_size: int = 0

    result: ServeResult | None = None
    error: Exception | None = None

    _tokens: asyncio.Queue = field(default_factory=asyncio.Queue, repr=False)
    _done: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    # -- observers ---------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def queue_wait_s(self) -> float:
        if self.started_at is None:
            return (self.finished_at or self.submitted_at) - self.submitted_at
        return self.started_at - self.submitted_at

    def ttft_s(self) -> float | None:
        if self.first_token_at is None:
            return None
        return self.first_token_at - self.submitted_at

    def ttlt_s(self) -> float | None:
        if self.finished_at is None or self.state != DONE:
            return None
        return self.finished_at - self.submitted_at

    # -- consumption -------------------------------------------------------------

    async def wait(self) -> ServeResult:
        """Block until terminal; return the result or raise the error."""
        await self._done.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    async def stream(self) -> AsyncIterator[int]:
        """Yield generated token ids as the runtime releases them."""
        while True:
            token = await self._tokens.get()
            if token is _STREAM_END:
                if self.error is not None:
                    raise self.error
                return
            yield token

    # -- runtime-side transitions -------------------------------------------------

    def push_token(self, token: int) -> None:
        self._tokens.put_nowait(token)

    def finish(self, state: str, *, error: Exception | None = None) -> None:
        """Move to a terminal state and release every waiter."""
        self.state = state
        self.error = error
        self._tokens.put_nowait(_STREAM_END)
        self._done.set()

    def trace(self) -> TraceRecord:
        return TraceRecord(
            request_id=self.request_id,
            schema=self.schema,
            state=self.state,
            submitted_at=self.submitted_at,
            queue_wait_s=self.queue_wait_s(),
            ttft_s=self.ttft_s(),
            ttlt_s=self.ttlt_s(),
            cached_tokens=self.result.cached_tokens if self.result else 0,
            uncached_tokens=self.result.uncached_tokens if self.result else 0,
            output_tokens=len(self.result.output_ids) if self.result else 0,
            batch_size=self.batch_size,
            error=None if self.error is None else str(self.error),
        )
