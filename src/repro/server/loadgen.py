"""Seeded open/closed-loop load generation against the live runtime.

Reuses the arrival processes and schema-popularity machinery of
:mod:`repro.serving.traces` so a live run is directly comparable with
the simulator's prediction for the *same* trace: synthesize one trace,
feed it to both :func:`repro.serving.simulator.simulate` and
:func:`run_open_loop`, and put the reports side by side.

The generator materializes each :class:`SchemaProfile` as a real PML
schema (one ``context`` module sized to ``module_tokens``) and each
trace request as a derived prompt whose suffix is sized to the request's
``uncached_tokens``. Decode length is fixed per schema (the profile's
``decode_mean``) so the cache-aware batcher can group requests.

- **Open loop** fires submissions at the trace's arrival times whether
  or not earlier requests finished — the regime that exposes admission
  control and load shedding.
- **Closed loop** runs N clients that each wait for their previous
  response (plus think time) before sending the next — the regime that
  measures sustainable latency.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.serving.traces import SchemaProfile, TraceRequest
from repro.server.errors import DeadlineExceeded, Overloaded, ServerClosed
from repro.server.request import TraceRecord
from repro.server.runtime import LiveServer

# Deterministic filler vocabulary; byte-level BPE tokenizes anything.
_WORDS = (
    "harbor ferry service notes the crossing waits for tickets deck "
    "weather bundle night train upper closes heavy free charge bay "
    "museum cafe garden market square bridge station local express"
).split()


def _text_with_tokens(tokenizer, n_tokens: int, rng: np.random.Generator) -> str:
    """Deterministic word soup measuring ≈ ``n_tokens`` (never fewer)."""
    words: list[str] = []
    while True:
        words.extend(rng.choice(_WORDS, size=16))
        text = " ".join(words) + " "
        if len(tokenizer.encode(text)) >= n_tokens:
            return text


@dataclass
class LiveWorkload:
    """Executable PML materialization of a schema-profile pool."""

    profiles: list[SchemaProfile]
    schema_sources: dict[str, str]
    seed: int = 0

    def register(self, pc) -> None:
        for source in self.schema_sources.values():
            pc.register_schema(source)

    def decode_tokens_for(self, schema: str) -> int:
        for profile in self.profiles:
            if profile.name == schema:
                return max(1, profile.decode_mean)
        raise KeyError(schema)

    def prompt_for(self, schema: str, request_id: int, uncached_tokens: int) -> str:
        """A derived prompt importing the cached module plus a suffix of
        roughly ``uncached_tokens`` new tokens (unique per request id so
        suffixes are not trivially identical)."""
        rng = np.random.default_rng((self.seed, request_id))
        n_words = max(2, uncached_tokens // 2)
        suffix = " ".join(rng.choice(_WORDS, size=n_words))
        return (
            f'<prompt schema="{schema}"><context/> request {request_id} : '
            f"{suffix} ?</prompt>"
        )

    def prompt_for_trace(self, request: TraceRequest) -> tuple[str, int]:
        return (
            self.prompt_for(request.schema, request.request_id, request.uncached_tokens),
            self.decode_tokens_for(request.schema),
        )


def build_workload(
    profiles: list[SchemaProfile], tokenizer, seed: int = 0
) -> LiveWorkload:
    """Materialize one schema per profile, module sized to its
    ``module_tokens`` (measured with ``tokenizer``)."""
    sources: dict[str, str] = {}
    for i, profile in enumerate(profiles):
        rng = np.random.default_rng((seed, i))
        doc = _text_with_tokens(tokenizer, profile.module_tokens, rng)
        sources[profile.name] = (
            f'<schema name="{profile.name}">'
            f'<module name="context">{doc}</module>'
            f"</schema>"
        )
    return LiveWorkload(profiles=list(profiles), schema_sources=sources, seed=seed)


@dataclass
class LoadReport:
    """Outcome tallies plus per-request records for a load run."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    failed: int = 0
    wall_s: float = 0.0
    records: list[TraceRecord] = field(default_factory=list)
    # Failure detail: exception type name -> count. A load run must never
    # lose the *reason* a request failed — "failed: 3" with no cause is
    # how engine bugs hide inside benchmark noise.
    failures: dict[str, int] = field(default_factory=dict)

    def record_failure(self, exc: BaseException) -> None:
        self.failed += 1
        name = type(exc).__name__
        self.failures[name] = self.failures.get(name, 0) + 1

    @property
    def offered(self) -> int:
        return self.submitted + self.rejected

    def _ttfts(self) -> np.ndarray:
        return np.array(
            [r.ttft_s for r in self.records if r.ttft_s is not None] or [0.0]
        )

    def ttft_percentile(self, q: float) -> float:
        return float(np.percentile(self._ttfts(), q))

    @property
    def mean_ttft_s(self) -> float:
        return float(self._ttfts().mean())

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_tokens(self) -> int:
        return sum(r.cached_tokens for r in self.records)

    @property
    def cached_token_fraction(self) -> float:
        cached = self.cache_hit_tokens
        total = cached + sum(r.uncached_tokens for r in self.records)
        return cached / total if total else 0.0


async def run_open_loop(
    server: LiveServer,
    workload: LiveWorkload,
    trace: list[TraceRequest],
    *,
    time_scale: float = 1.0,
    deadline_s: float | None = None,
) -> LoadReport:
    """Fire the trace's arrivals on schedule regardless of completions.

    ``time_scale`` compresses (<1) or stretches (>1) the trace clock so a
    trace synthesized at paper-scale rates can drive a NumPy-speed
    engine. Rejections (:class:`Overloaded`) are tallied, not raised.
    """
    report = LoadReport()
    start = server.clock()
    pending: list = []

    async def settle(request) -> None:
        try:
            await request.wait()
            report.completed += 1
        except DeadlineExceeded:
            report.expired += 1
        except Exception as exc:
            report.record_failure(exc)
        report.records.append(request.trace())

    for item in sorted(trace, key=lambda r: r.arrival_s):
        delay = (start + item.arrival_s * time_scale) - server.clock()
        if delay > 0:
            await asyncio.sleep(delay)
        prompt, max_new = workload.prompt_for_trace(item)
        try:
            request = await server.submit(
                prompt, max_new_tokens=max_new, deadline_s=deadline_s
            )
        except Overloaded:
            report.rejected += 1
            continue
        except ServerClosed:
            # Draining (SIGTERM mid-trace): stop offering load, but let
            # everything already accepted settle into the report below.
            break
        report.submitted += 1
        pending.append(asyncio.create_task(settle(request)))

    if pending:
        await asyncio.gather(*pending)
    report.wall_s = server.clock() - start
    return report


def build_raw_prompts(
    tokenizer,
    n: int,
    *,
    shared_tokens: int = 64,
    suffix_tokens: int = 16,
    seed: int = 0,
    prefix: str | None = None,
) -> list[str]:
    """``n`` schema-free prompts: one shared system preamble of
    ``shared_tokens`` plus a unique per-user suffix — the chatbot-style
    traffic reuse discovery is built to mine. No PML, no registration:
    the shared prefix is only discoverable from the token streams."""
    rng = np.random.default_rng(seed)
    if prefix is None:
        prefix = _text_with_tokens(tokenizer, shared_tokens, rng)
    prompts = []
    for i in range(n):
        suffix = " ".join(rng.choice(_WORDS, size=max(2, suffix_tokens // 2)))
        prompts.append(f"{prefix}user {i} : {suffix} ?")
    return prompts


async def run_raw_open_loop(
    server: LiveServer,
    prompts: list[str],
    *,
    interval_s: float = 0.0,
    max_new_tokens: int = 8,
    deadline_s: float | None = None,
) -> LoadReport:
    """Open-loop raw-text driver: submit each prompt through
    :meth:`LiveServer.submit_text` at a fixed interval. The raw analogue
    of :func:`run_open_loop` for discovery benchmarks."""
    report = LoadReport()
    start = server.clock()
    pending: list = []

    async def settle(request) -> None:
        try:
            await request.wait()
            report.completed += 1
        except DeadlineExceeded:
            report.expired += 1
        except Exception as exc:
            report.record_failure(exc)
        report.records.append(request.trace())

    for i, text in enumerate(prompts):
        if interval_s and i:
            delay = (start + i * interval_s) - server.clock()
            if delay > 0:
                await asyncio.sleep(delay)
        try:
            request = await server.submit_text(
                text, max_new_tokens=max_new_tokens, deadline_s=deadline_s
            )
        except Overloaded:
            report.rejected += 1
            continue
        except ServerClosed:
            break
        report.submitted += 1
        pending.append(asyncio.create_task(settle(request)))

    if pending:
        await asyncio.gather(*pending)
    report.wall_s = server.clock() - start
    return report


async def run_closed_loop(
    server: LiveServer,
    workload: LiveWorkload,
    *,
    clients: int = 4,
    requests_per_client: int = 8,
    think_time_s: float = 0.0,
    deadline_s: float | None = None,
    seed: int = 0,
) -> LoadReport:
    """N clients, each waiting for its response before the next send."""
    report = LoadReport()
    weights = np.array([p.weight for p in workload.profiles], dtype=float)
    weights /= weights.sum()
    start = server.clock()

    async def client(index: int) -> None:
        rng = np.random.default_rng((seed, index))
        for i in range(requests_per_client):
            profile = workload.profiles[int(rng.choice(len(weights), p=weights))]
            request_id = index * requests_per_client + i
            prompt = workload.prompt_for(
                profile.name, request_id, max(1, profile.uncached_mean)
            )
            try:
                request = await server.submit(
                    prompt,
                    max_new_tokens=workload.decode_tokens_for(profile.name),
                    deadline_s=deadline_s,
                )
            except Overloaded as exc:
                report.rejected += 1
                await asyncio.sleep(min(exc.estimated_delay_s, 0.1))
                continue
            report.submitted += 1
            try:
                await request.wait()
                report.completed += 1
            except DeadlineExceeded:
                report.expired += 1
            except Exception as exc:
                report.record_failure(exc)
            report.records.append(request.trace())
            if think_time_s:
                await asyncio.sleep(think_time_s)

    await asyncio.gather(*(client(i) for i in range(clients)))
    report.wall_s = server.clock() - start
    return report
