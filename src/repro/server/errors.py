"""Typed failures of the live serving runtime.

Every way a request can fail without being the caller's bug gets its own
exception type, so clients (and the load generator) can branch on the
class instead of parsing messages. ``Overloaded`` is the load-shedding
signal the paper's serving framing calls for: a server protecting its
tail latency must reject excess work *at admission*, before it consumes
queue slots and deadline budget.
"""

from __future__ import annotations


class ServerError(Exception):
    """Base class for live-serving failures."""


class ServerClosed(ServerError):
    """The runtime is not running (never started, stopping, or stopped)."""


class Overloaded(ServerError):
    """Admission control rejected the request.

    Parameters
    ----------
    reason:
        ``"queue_depth"`` (the bounded admission queue is full) or
        ``"queue_delay"`` (the estimated time to reach the head of the
        queue exceeds the configured budget).
    queue_depth:
        Requests queued at rejection time.
    estimated_delay_s:
        The runtime's queue-delay estimate — doubles as a retry-after
        hint for clients.
    """

    def __init__(self, reason: str, queue_depth: int, estimated_delay_s: float) -> None:
        self.reason = reason
        self.queue_depth = queue_depth
        self.estimated_delay_s = estimated_delay_s
        super().__init__(
            f"server overloaded ({reason}): {queue_depth} queued, "
            f"estimated delay {estimated_delay_s:.3f}s"
        )


class DeadlineExceeded(ServerError):
    """The request's deadline passed while it was still queued."""

    def __init__(self, request_id: str, waited_s: float) -> None:
        self.request_id = request_id
        self.waited_s = waited_s
        super().__init__(
            f"request {request_id} expired after waiting {waited_s:.3f}s in queue"
        )


class RequestCancelled(ServerError):
    """The client cancelled the request before it ran."""

    def __init__(self, request_id: str) -> None:
        self.request_id = request_id
        super().__init__(f"request {request_id} was cancelled")
