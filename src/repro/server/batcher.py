"""Cache-aware batching: group admitted requests so splices amortize.

``PromptCache.serve_batch`` shares one physical copy of the spliced
module states across every request in a batch that selects the same
module sequence (paper §3.4). The batcher therefore groups queued
requests by ``(schema, max_new_tokens)`` — same schema means the splice
plan (and usually the paged base cache) is shared; same decode budget
means one ``serve_batch`` call serves them unmodified.

Latency never waits on batch fill: a group dispatches as soon as it is
*full* (``max_batch``) or its oldest request has waited ``max_wait_s``.
The structure is synchronous and clock-parameterised so the policy is
unit-testable without an event loop.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.server.request import LiveRequest

BatchKey = tuple[str, int]  # (schema name, max_new_tokens)

# Metrics label covering every raw-text group: raw requests carry
# per-prefix-chain discovery fingerprints in ``batch_group``, which are
# unbounded and must never become metric label values.
RAW_BUCKET = "<raw>"


class CacheAwareBatcher:
    """FIFO-fair, schema-grouped admission queue feeding the worker."""

    def __init__(self, max_batch: int = 8, max_wait_s: float = 0.02) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._groups: "OrderedDict[BatchKey, deque[LiveRequest]]" = OrderedDict()

    def __len__(self) -> int:
        return sum(len(g) for g in self._groups.values())

    def put(self, request: LiveRequest) -> None:
        # Raw requests override the schema with a discovery fingerprint:
        # prompts sharing a discovered prefix chain batch together, so
        # one spliced base amortizes the same way a shared schema does.
        key = (request.batch_group or request.schema, request.max_new_tokens)
        self._groups.setdefault(key, deque()).append(request)

    def pending_by_schema(self) -> dict[str, int]:
        """Queued request counts keyed by a *bounded* schema label.

        Group keys for raw requests are discovery fingerprints
        (``__raw__:<chain>``) — one distinct string per promoted prefix
        chain. Reporting those verbatim would leak an unbounded label
        set into metrics, so every raw group lands in :data:`RAW_BUCKET`.
        """
        out: dict[str, int] = {}
        for (schema, _), group in self._groups.items():
            label = RAW_BUCKET if group[0].raw else schema
            out[label] = out.get(label, 0) + len(group)
        return out

    def pop_oldest(self) -> LiveRequest | None:
        """Pop the single oldest queued request across every group —
        strict FIFO admission for the iteration-level scheduler, which
        batches at the *token* level and has no use for group affinity.
        Arrival-order admission is also the no-starvation guarantee: no
        schema mix can keep a queued request waiting behind later
        arrivals."""
        if not self._groups:
            return None
        key = min(self._groups, key=lambda k: self._groups[k][0].submitted_at)
        group = self._groups[key]
        request = group.popleft()
        if not group:
            del self._groups[key]
        return request

    # -- dispatch policy ---------------------------------------------------------

    def _take(self, key: BatchKey) -> list[LiveRequest]:
        group = self._groups[key]
        batch = [group.popleft() for _ in range(min(self.max_batch, len(group)))]
        if not group:
            del self._groups[key]
        return batch

    def next_batch(self, now: float) -> list[LiveRequest] | None:
        """The next dispatchable batch, or None if every group should
        keep waiting. Full groups dispatch immediately; otherwise the
        group whose head request has exhausted ``max_wait_s`` (oldest
        head first, so dispatch order is arrival order between groups)."""
        full = [k for k, g in self._groups.items() if len(g) >= self.max_batch]
        if full:
            # Oldest head among the full groups keeps inter-group fairness.
            key = min(full, key=lambda k: self._groups[k][0].submitted_at)
            return self._take(key)
        ripe = [
            k for k, g in self._groups.items()
            if now - g[0].submitted_at >= self.max_wait_s
        ]
        if ripe:
            key = min(ripe, key=lambda k: self._groups[k][0].submitted_at)
            return self._take(key)
        return None

    def ready_in(self, now: float) -> float | None:
        """Seconds until some group ripens (0.0 = dispatchable now);
        None when the queue is empty."""
        if not self._groups:
            return None
        if any(len(g) >= self.max_batch for g in self._groups.values()):
            return 0.0
        oldest = min(g[0].submitted_at for g in self._groups.values())
        return max(0.0, oldest + self.max_wait_s - now)

    # -- queue maintenance -------------------------------------------------------

    def remove_expired(self, now: float) -> list[LiveRequest]:
        """Pull every queued request whose deadline already passed —
        deadline expiry *mid-queue*, before any compute is spent on it."""
        expired: list[LiveRequest] = []
        for key in list(self._groups):
            group = self._groups[key]
            keep = deque(
                r for r in group
                if r.deadline_at is None or r.deadline_at > now
            )
            if len(keep) != len(group):
                expired.extend(
                    r for r in group
                    if r.deadline_at is not None and r.deadline_at <= now
                )
                if keep:
                    self._groups[key] = keep
                else:
                    del self._groups[key]
        return expired

    def drain(self) -> list[LiveRequest]:
        """Remove and return everything still queued (shutdown path)."""
        out = [r for g in self._groups.values() for r in g]
        self._groups.clear()
        return out
