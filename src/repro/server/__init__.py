"""Live async serving runtime: Prompt Cache under real concurrent load.

Where :mod:`repro.serving` *predicts* serving behaviour with an
event-driven simulator over the roofline latency model, this package
*executes* it: an asyncio runtime (:class:`LiveServer`) drives the real
:class:`repro.cache.engine.PromptCache` with admission control,
cache-aware batching, deadlines, load shedding, metrics, and a seeded
load generator whose traces are shared with the simulator — so
prediction and measurement line up request for request.
"""

from repro.server.batcher import CacheAwareBatcher
from repro.server.errors import (
    DeadlineExceeded,
    Overloaded,
    RequestCancelled,
    ServerClosed,
    ServerError,
)
from repro.server.loadgen import (
    LiveWorkload,
    LoadReport,
    build_workload,
    run_closed_loop,
    run_open_loop,
)
from repro.server.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.server.request import LiveRequest, TraceRecord
from repro.server.runtime import LiveServer, ServeOptions
from repro.server.scheduler import ContinuousScheduler, IterationOutcome

__all__ = [
    "CacheAwareBatcher",
    "ContinuousScheduler",
    "Counter",
    "IterationOutcome",
    "DeadlineExceeded",
    "Gauge",
    "Histogram",
    "LiveRequest",
    "LiveServer",
    "LiveWorkload",
    "LoadReport",
    "MetricsRegistry",
    "Overloaded",
    "RequestCancelled",
    "ServeOptions",
    "ServerClosed",
    "ServerError",
    "TraceRecord",
    "build_workload",
    "run_closed_loop",
    "run_open_loop",
]
