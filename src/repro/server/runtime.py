"""The live asyncio serving runtime: admission → batch → serve → stream.

:class:`LiveServer` drives the *real* :class:`repro.cache.engine.PromptCache`
under concurrent load — the executable counterpart of the event-driven
simulator in :mod:`repro.serving.simulator`, closing the gap the paper
leaves open when it positions Prompt Cache "as a foundational component
for future LLM serving systems" (§6).

Design:

- **Admission control.** ``submit`` is the only entry point. It rejects
  with :class:`~repro.server.errors.Overloaded` when the bounded queue is
  full or the estimated queue delay (EWMA of recent per-request service
  time × queue occupancy) exceeds the configured budget — load shedding
  happens *before* a request consumes queue slots and deadline budget.
- **Cache-aware batching.** Admitted requests land in a
  :class:`~repro.server.batcher.CacheAwareBatcher`; one worker coroutine
  dispatches schema-grouped batches to ``PromptCache.serve_batch`` so a
  single splice plan (and the paged base cache) amortizes across the
  batch. A max-wait timer bounds the latency cost of batch fill.
- **Single-threaded engine, responsive loop.** The NumPy engine is the
  serial resource (one model, one machine); batches run one at a time on
  a thread-pool executor so the event loop keeps admitting, rejecting
  and expiring requests while a batch computes. The thread-safe
  :class:`~repro.cache.storage.ModuleCacheStore` is the only state the
  two threads share.
- **Observability.** Every lifecycle edge lands in a
  :class:`~repro.server.metrics.MetricsRegistry` (Prometheus text / JSON
  snapshots) and a bounded structured trace log. Store evictions are
  wired in via ``CacheTier.add_evict_listener``.

Two dispatch modes share this admission/observability shell:

- **Continuous (default on a real engine).** A per-token
  :class:`~repro.server.scheduler.ContinuousScheduler` admits queued
  requests every iteration, prefills in budgeted chunks, runs one
  batched single-token forward across all in-flight sequences, and
  retires finished ones immediately — short requests never wait behind
  long decodes. Token timestamps are *real*: each iteration reports its
  emissions as they happen.
- **Whole-request (legacy, ``mode="whole_request"``).** The batcher
  dispatches a schema-grouped batch into ``PromptCache.serve_batch``
  and the slot is held until the whole batch drains. Kept for engines
  without resumable streams and as the byte-identity reference path.
  Its per-request first/last-token timestamps are reconstructed from
  the engine's own measured splice/prefill/step times, offset by the
  request's position within its batch.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass
from functools import partial

from repro.cache.engine import PromptCache
from repro.pml.errors import PMLError, UnknownSchemaError
from repro.pml.parser import parse_prompt
from repro.reuse.dedup import analyze_batch
from repro.server.batcher import CacheAwareBatcher
from repro.server.errors import DeadlineExceeded, Overloaded, ServerClosed
from repro.server.metrics import MetricsRegistry
from repro.server.request import (
    DONE,
    EXPIRED,
    FAILED,
    LiveRequest,
    QUEUED,
    REJECTED,
    RUNNING,
    TraceRecord,
)
from repro.server.scheduler import ContinuousScheduler, IterationOutcome

BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

# Schema label carried by schema-free raw-text requests in traces/metrics.
RAW_SCHEMA = "__raw__"


@dataclass(frozen=True)
class ServeOptions:
    """Tuning knobs for :class:`LiveServer`."""

    max_queue_depth: int = 64  # bounded admission queue
    queue_delay_budget_s: float | None = 2.0  # shed when est. delay exceeds
    max_batch: int = 8
    batch_max_wait_s: float = 0.02  # latency never waits longer on fill
    default_max_new_tokens: int = 16
    default_deadline_s: float | None = None  # relative; None = no deadline
    initial_service_s: float = 0.05  # EWMA seed before any observation
    service_time_alpha: float = 0.25  # EWMA smoothing for per-request time
    trace_log_limit: int = 10_000
    inline_execution: bool = False  # run the engine on the loop (tests)
    # Dispatch mode. "auto" runs the iteration-level scheduler whenever
    # the engine supports resumable streams (``open_stream``) and falls
    # back to whole-request batches otherwise (stub engines); the other
    # values force a path — "whole_request" is the legacy reference the
    # byte-identity tests compare against.
    mode: str = "auto"  # "auto" | "continuous" | "whole_request"
    max_inflight: int = 8  # continuous: concurrent decoding sequences
    prefill_chunk_tokens: int = 256  # continuous: prefill budget per iteration
    # ChunkAttention two-phase decode over shared spliced prefixes.
    # "auto" engages when >= 2 in-flight sequences were forked from the
    # same pre-spliced base and share at least AUTO_MIN_SHARED_TOKENS of
    # KV; "on" forces the two-phase path for every eligible stream;
    # "off" keeps the single-pass per-sequence kernel (the byte-level
    # reference the identity tests compare against).
    shared_attention: str = "auto"  # "auto" | "on" | "off"
    # Continuous: iterations run per executor dispatch while the queue is
    # empty. With nothing to admit or expire, returning to the loop every
    # token only buys executor round trips; a burst runs several
    # iterations back to back and breaks the moment a new request
    # arrives. Token/finish timestamps are recorded engine-side, so
    # metrics are burst-invariant; only stream delivery and future
    # resolution lag by at most burst_iterations - 1 tokens. 1 disables.
    burst_iterations: int = 8
    # Periodic store upkeep: TTL sweep (and, on a FabricStore, the
    # budgeted prefetch tick) every this many seconds even while the
    # server is idle. None disables the background loop; the continuous
    # scheduler still runs upkeep on spare-capacity iterations.
    store_sweep_interval_s: float | None = 1.0


class LiveServer:
    """Async serving runtime over one :class:`PromptCache` engine."""

    def __init__(
        self,
        pc: PromptCache,
        options: ServeOptions | None = None,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self.pc = pc
        self.options = options or ServeOptions()
        self.metrics = metrics or MetricsRegistry()
        # Late registrations through this server's engine land their
        # encode-plane series (schema_warmup_seconds, …) in our registry.
        if getattr(pc, "encode_metrics", ...) is None:
            pc.encode_metrics = self.metrics
        self.clock = clock
        self.batcher = CacheAwareBatcher(
            max_batch=self.options.max_batch,
            max_wait_s=self.options.batch_max_wait_s,
        )
        self.trace_log: list[TraceRecord] = []
        self._ids = itertools.count()
        self._wake: asyncio.Event | None = None
        self._worker_task: asyncio.Task | None = None
        self._maintenance_task: asyncio.Task | None = None
        self._running = False
        self._draining = False
        self._inflight = 0
        self._service_ewma_s = self.options.initial_service_s
        self._raw_cached_tokens = 0
        self._raw_prompt_tokens = 0
        self._scheduler: ContinuousScheduler | None = None
        # Written True by the loop thread on every enqueue, read by the
        # engine thread mid-burst (GIL-atomic bool) to cut bursts short
        # the moment admission work appears.
        self._arrivals_pending = False
        self._continuous = self._resolve_mode()
        self._queue_labels: set[str] = set()
        self._last_done_at: float | None = None
        self._decode_rate_ewma = 0.0
        self._flops_saved_total = 0  # ChunkAttention savings accumulator
        self._wire_store_metrics()

    def _resolve_mode(self) -> bool:
        mode = self.options.mode
        if mode == "continuous":
            return True
        if mode == "whole_request":
            return False
        if mode == "auto":
            return hasattr(self.pc, "open_stream")
        raise ValueError(f"unknown serve mode: {mode!r}")

    @property
    def continuous(self) -> bool:
        """True when this server runs the iteration-level scheduler."""
        return self._continuous

    @property
    def inflight(self) -> int:
        """Requests currently being served (scheduler occupancy in
        continuous mode, running batch size in whole-request mode)."""
        return self._inflight

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> "LiveServer":
        if self._running:
            return self
        self._wake = asyncio.Event()
        self._running = True
        self._draining = False
        if self._continuous:
            self._scheduler = ContinuousScheduler(
                self.pc,
                max_inflight=self.options.max_inflight,
                prefill_chunk_tokens=self.options.prefill_chunk_tokens,
                shared_attention=self.options.shared_attention,
                clock=self.clock,
                maintenance=self._store_maintenance,
            )
            self._worker_task = asyncio.create_task(self._scheduler_worker())
        else:
            self._worker_task = asyncio.create_task(self._worker())
        if self.options.store_sweep_interval_s is not None:
            self._maintenance_task = asyncio.create_task(self._maintenance_loop())
        return self

    @property
    def draining(self) -> bool:
        """True once a draining stop began: accepted work still completes,
        but new submissions are refused."""
        return self._draining

    async def stop(self, drain: bool = True) -> None:
        """Stop the worker. With ``drain`` (default) every accepted request
        is served first — while new submissions are rejected with
        :class:`ServerClosed` — otherwise the queue is rejected outright.
        This is the graceful-shutdown contract SIGTERM handlers rely on:
        container shutdown finishes in-flight work instead of dropping it.
        """
        if not self._running:
            return
        if drain:
            self._draining = True
            await self.join()
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            try:
                await self._maintenance_task
            except asyncio.CancelledError:
                pass
            self._maintenance_task = None
        if self._worker_task is not None:
            await self._worker_task
            self._worker_task = None
        if self._scheduler is not None:
            # Non-drain stop with sequences mid-decode: release their
            # paged forks (and mirror leases) and fail the requests.
            now = self.clock()
            for request in self._scheduler.abort_all():
                request.finished_at = now
                request.finish(FAILED, error=ServerClosed("server stopped"))
                self._count_outcome("failed")
                self._record(request)
            self._inflight = 0
            self._scheduler = None
        for request in self.batcher.drain():
            request.finish(FAILED, error=ServerClosed("server stopped"))
            self._count_outcome("failed")
            self._record(request)

    async def join(self) -> None:
        """Wait until the queue and the engine are both idle."""
        while len(self.batcher) or self._inflight:
            await asyncio.sleep(0.002)

    async def __aenter__(self) -> "LiveServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=exc == (None, None, None))

    # -- admission ---------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self.batcher)

    def estimated_queue_delay_s(self) -> float:
        """EWMA per-request service time × requests ahead in line."""
        return (len(self.batcher) + self._inflight) * self._service_ewma_s

    async def submit(
        self,
        prompt: str,
        *,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        request_id: str | None = None,
    ) -> LiveRequest:
        """Admit a PML prompt, or raise a typed rejection.

        Raises :class:`ServerClosed`, :class:`UnknownSchemaError` (or
        another :class:`~repro.pml.errors.PMLError` for malformed PML),
        or :class:`Overloaded` — all before the request occupies a queue
        slot.
        """
        if not self._running:
            raise ServerClosed("server is not running")
        if self._draining:
            raise ServerClosed("server is draining; not accepting new requests")
        schema = parse_prompt(prompt).schema  # PMLError on malformed input
        if schema not in self.pc.schemas:
            raise self._reject(
                prompt, schema, UnknownSchemaError(schema, list(self.pc.schemas))
            )
        self._shed_check(prompt, schema)
        return self._enqueue(
            prompt, schema,
            max_new_tokens=max_new_tokens,
            deadline_s=deadline_s,
            request_id=request_id,
        )

    async def submit_text(
        self,
        text: str,
        *,
        max_new_tokens: int | None = None,
        deadline_s: float | None = None,
        request_id: str | None = None,
    ) -> LiveRequest:
        """Admit a schema-free raw-text prompt (no PML, no registration).

        Served through :meth:`PromptCache.serve_text`: byte-identical to
        the plain KV-cache baseline, but when the engine has a discovery
        miner attached, hot shared prefixes are mined from exactly this
        traffic and spliced from cache. Admission control (queue bound,
        delay shedding, deadlines) is identical to :meth:`submit`.
        """
        if not self._running:
            raise ServerClosed("server is not running")
        if self._draining:
            raise ServerClosed("server is draining; not accepting new requests")
        if not text.strip():
            raise self._reject(text, RAW_SCHEMA, PMLError("empty raw prompt"))
        self._shed_check(text, RAW_SCHEMA)
        group = RAW_SCHEMA
        discovery = getattr(self.pc, "discovery", None)
        if discovery is not None:
            chain = discovery.match(self.pc.tokenizer.encode(text))
            if chain:
                group = RAW_SCHEMA + ":" + "/".join(chain)
        return self._enqueue(
            text, RAW_SCHEMA,
            max_new_tokens=max_new_tokens,
            deadline_s=deadline_s,
            request_id=request_id,
            raw=True,
            batch_group=group,
        )

    def _shed_check(self, prompt: str, schema: str) -> None:
        """Raise (and record) :class:`Overloaded` if admission would
        exceed the queue bound or the delay budget."""
        depth = len(self.batcher)
        if depth >= self.options.max_queue_depth:
            raise self._reject(
                prompt, schema,
                Overloaded("queue_depth", depth, self.estimated_queue_delay_s()),
            )
        budget = self.options.queue_delay_budget_s
        estimate = self.estimated_queue_delay_s()
        if budget is not None and estimate > budget:
            raise self._reject(
                prompt, schema, Overloaded("queue_delay", depth, estimate)
            )

    def _enqueue(
        self,
        prompt: str,
        schema: str,
        *,
        max_new_tokens: int | None,
        deadline_s: float | None,
        request_id: str | None,
        raw: bool = False,
        batch_group: str | None = None,
    ) -> LiveRequest:
        now = self.clock()
        deadline_s = deadline_s if deadline_s is not None else self.options.default_deadline_s
        request = LiveRequest(
            request_id=request_id or f"req-{next(self._ids)}",
            prompt=prompt,
            schema=schema,
            max_new_tokens=max_new_tokens or self.options.default_max_new_tokens,
            submitted_at=now,
            deadline_at=None if deadline_s is None else now + deadline_s,
            raw=raw,
            batch_group=batch_group,
        )
        self.batcher.put(request)
        self._arrivals_pending = True
        self._count_outcome("submitted")
        self.metrics.gauge("server_queue_depth", "requests queued").set(
            len(self.batcher)
        )
        self._refresh_queue_gauges()
        assert self._wake is not None
        self._wake.set()
        return request

    def _refresh_queue_gauges(self) -> None:
        """Per-schema queue depth. Labels come from the batcher's
        ``pending_by_schema``, which folds raw discovery fingerprints
        into one stable ``"<raw>"`` bucket — raw chains must never mint
        unbounded metric label values. Schemas that drained since the
        last refresh are zeroed, not left stale."""
        pending = self.batcher.pending_by_schema()
        gauge = partial(
            self.metrics.gauge,
            "server_queue_depth_by_schema", "queued requests per schema",
        )
        for label in self._queue_labels - set(pending):
            gauge(schema=label).set(0)
        for label, count in pending.items():
            gauge(schema=label).set(count)
        self._queue_labels = set(pending)

    async def serve(self, prompt: str, **kwargs):
        """Submit and wait — the one-call convenience path."""
        request = await self.submit(prompt, **kwargs)
        return await request.wait()

    async def serve_text(self, text: str, **kwargs):
        """Submit raw text and wait — the schema-free convenience path."""
        request = await self.submit_text(text, **kwargs)
        return await request.wait()

    def _reject(self, prompt: str, schema: str, error: Exception) -> Exception:
        request = LiveRequest(
            request_id=f"req-{next(self._ids)}",
            prompt=prompt,
            schema=schema,
            max_new_tokens=0,
            submitted_at=self.clock(),
        )
        request.finish(REJECTED, error=error)
        request.finished_at = request.submitted_at
        self._count_outcome("rejected")
        if isinstance(error, Overloaded):
            self.metrics.counter(
                "server_rejections_total", "admission rejections by reason",
                reason=error.reason,
            ).inc()
        else:
            self.metrics.counter(
                "server_rejections_total", "admission rejections by reason",
                reason="unknown_schema",
            ).inc()
        self._record(request)
        return error

    # -- worker ------------------------------------------------------------------

    async def _worker(self) -> None:
        assert self._wake is not None
        while self._running:
            now = self.clock()
            for request in self.batcher.remove_expired(now):
                self._expire(request, now)
            batch = self.batcher.next_batch(now)
            if batch is None:
                timeout = self.batcher.ready_in(now)
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout)
                except asyncio.TimeoutError:
                    pass
                continue
            await self._run_batch(batch)

    async def _scheduler_worker(self) -> None:
        """Continuous mode: one :meth:`ContinuousScheduler.iterate` per
        loop pass. The iteration runs on the executor (the engine is the
        serial resource); its outcome — real token timestamps, retired
        results — is applied back here on the loop, where the asyncio
        request state lives."""
        assert self._wake is not None and self._scheduler is not None
        scheduler = self._scheduler
        loop = asyncio.get_running_loop()
        while self._running:
            now = self.clock()
            self._arrivals_pending = False
            for request in self.batcher.remove_expired(now):
                self._expire(request, now)
            admissions = self._pop_admissions(scheduler)
            if not admissions and not scheduler.active:
                # Idle: nothing in flight, nothing admittable. The
                # timeout only matters in the (theoretical) queued-but-
                # unadmittable case, to keep deadline expiry polling.
                self._wake.clear()
                timeout = 0.05 if len(self.batcher) else None
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout)
                except asyncio.TimeoutError:
                    pass
                continue
            for request in admissions:
                request.state = RUNNING
                request.started_at = now
                request.batch_size = scheduler.active + len(admissions)
            self._inflight = scheduler.active + len(admissions)
            self.metrics.gauge(
                "server_inflight", "requests in the running batch"
            ).set(self._inflight)
            # Burst only while the queue is empty: with requests still
            # waiting, every retirement can admit a replacement, and
            # that must happen on the loop between iterations.
            limit = (
                self.options.burst_iterations if not len(self.batcher) else 1
            )
            run = partial(self._run_iterations, scheduler, admissions, limit)
            if self.options.inline_execution:
                outcomes = run()
            else:
                outcomes = await loop.run_in_executor(None, run)
            for outcome in outcomes:
                self._apply_outcome(outcome)
            self._inflight = scheduler.active

    def _run_iterations(
        self,
        scheduler: ContinuousScheduler,
        admissions: list[LiveRequest],
        limit: int,
    ) -> list[IterationOutcome]:
        """Engine-thread side: the dispatched iteration plus up to
        ``limit - 1`` follow-ons, stopping early when a new arrival
        needs loop-side admission or nothing is left in flight."""
        outcomes = [scheduler.iterate(admissions)]
        while (
            len(outcomes) < limit
            and scheduler.active
            and not self._arrivals_pending
        ):
            outcomes.append(scheduler.iterate([]))
        return outcomes

    def _pop_admissions(self, scheduler: ContinuousScheduler) -> list[LiveRequest]:
        """Oldest-first admission up to the scheduler's free slots (slots
        freed by this iteration's certain retirements included, so a
        retire and its replacement land in the same iteration)."""
        slots = scheduler.predicted_free_slots()
        admissions: list[LiveRequest] = []
        while len(admissions) < slots:
            request = self.batcher.pop_oldest()
            if request is None:
                break
            admissions.append(request)
        if not admissions and len(self.batcher):
            self.metrics.counter(
                "server_admission_stalls_total",
                "iterations that found queued work but no free decode slot",
            ).inc()
        return admissions

    def _apply_outcome(self, outcome: IterationOutcome) -> None:
        """Apply one iteration's events on the loop thread."""
        inter = self.metrics.histogram(
            "server_inter_token_seconds",
            "wall time between consecutive tokens of one request",
        )
        for request, token, at in outcome.emitted:
            if request.first_token_at is None:
                request.first_token_at = at
            elif request.last_token_at is not None:
                inter.observe(at - request.last_token_at)
            request.last_token_at = at
            request.push_token(token)

        completions = 0
        for request, result, error, at in outcome.finished:
            request.finished_at = at
            if error is not None:
                request.finish(FAILED, error=error)
                self._count_outcome("failed")
            else:
                completions += 1
                request.result = result
                request.finish(DONE)
                self._observe_done(request, result)
                # Per-completion pace EWMA (the continuous analogue of
                # the legacy per-batch estimate) feeds load shedding.
                if self._last_done_at is not None and at > self._last_done_at:
                    alpha = self.options.service_time_alpha
                    self._service_ewma_s = (
                        alpha * (at - self._last_done_at)
                        + (1 - alpha) * self._service_ewma_s
                    )
                self._last_done_at = at
            self._record(request)
        for request in outcome.requeued:  # overshoot guard; normally empty
            request.state = QUEUED
            request.started_at = None
            self.batcher.put(request)

        if outcome.decode_batch:
            self.metrics.histogram(
                "server_iteration_occupancy",
                "sequences in each batched decode step",
                buckets=BATCH_SIZE_BUCKETS,
            ).observe(outcome.decode_batch)
        if outcome.shared_group_sizes:
            group_size = self.metrics.histogram(
                "decode_shared_group_size",
                "sequences per shared-prefix attention group (two-phase path)",
                buckets=BATCH_SIZE_BUCKETS,
            )
            for size in outcome.shared_group_sizes:
                group_size.observe(size)
            self.metrics.counter(
                "decode_shared_kv_tokens_total",
                "KV tokens streamed once per shared chunk in two-phase decode",
            ).inc(outcome.shared_kv_tokens)
            self.metrics.counter(
                "decode_private_kv_tokens_total",
                "KV tokens streamed per sequence (private suffixes and "
                "ungrouped caches) in batched decode",
            ).inc(outcome.private_kv_tokens)
            self._flops_saved_total += outcome.flops_saved
            self.metrics.gauge(
                "decode_flops_saved_total",
                "cumulative effective attention FLOPs saved by shared-prefix "
                "(ChunkAttention) grouping",
            ).set(self._flops_saved_total)
        if outcome.elapsed_s > 0:
            alpha = self.options.service_time_alpha
            rate = len(outcome.emitted) / outcome.elapsed_s
            self._decode_rate_ewma = (
                alpha * rate + (1 - alpha) * self._decode_rate_ewma
            )
            self.metrics.gauge(
                "server_decode_tokens_per_second",
                "smoothed decode throughput across in-flight sequences",
            ).set(self._decode_rate_ewma)
        self.metrics.gauge("server_queue_depth", "requests queued").set(
            len(self.batcher)
        )
        self._refresh_queue_gauges()
        if completions:
            self.metrics.gauge(
                "server_estimated_queue_delay_seconds",
                "admission-control delay estimate",
            ).set(self.estimated_queue_delay_s())
            self.refresh_store_gauges()

    async def _maintenance_loop(self) -> None:
        """Periodic store upkeep, alive even while the server is idle —
        TTL victims must die on schedule, not on the next request. The
        sweep itself runs on the executor (it takes the store lock and,
        on a fabric store, may fault snapshot pages in)."""
        interval = self.options.store_sweep_interval_s
        assert interval is not None
        loop = asyncio.get_running_loop()
        while self._running:
            await asyncio.sleep(interval)
            if not self._running:
                return
            if self.options.inline_execution:
                self._store_maintenance()
            else:
                await loop.run_in_executor(None, self._store_maintenance)

    def _store_maintenance(self) -> None:
        """One upkeep tick (engine-thread side): sweep expired entries,
        and on a :class:`~repro.fabric.store.FabricStore` run its full
        maintenance (sweep + budgeted predictive prefetch)."""
        store = self.pc.store
        maintenance = getattr(store, "maintenance", None)
        if maintenance is not None:
            report = maintenance()
            swept = report.get("swept", 0)
            pulled = report.get("prefetched", 0)
            issued = report.get("peer_issued", 0)
            if pulled:
                self.metrics.counter(
                    "fabric_prefetch_pulls_total",
                    "modules pulled up-tier by the predictive prefetcher",
                    source="snapshot",
                ).inc(pulled)
            if issued:
                self.metrics.counter(
                    "fabric_prefetch_pulls_total",
                    "modules pulled up-tier by the predictive prefetcher",
                    source="peer",
                ).inc(issued)
        else:
            swept = store.sweep_expired()
        if swept:
            self.metrics.counter(
                "cache_sweep_expired_total",
                "TTL victims dropped by the periodic sweep",
            ).inc(swept)

    def _expire(self, request: LiveRequest, now: float) -> None:
        request.finished_at = now
        request.finish(
            EXPIRED,
            error=DeadlineExceeded(request.request_id, now - request.submitted_at),
        )
        self._count_outcome("expired")
        self.metrics.histogram(
            "server_queue_wait_seconds", "time from submit to dispatch or expiry"
        ).observe(request.queue_wait_s())
        self._record(request)

    async def _run_batch(self, batch: list[LiveRequest]) -> None:
        dispatch_at = self.clock()
        for request in batch:
            request.state = RUNNING
            request.started_at = dispatch_at
            request.batch_size = len(batch)
        self._inflight = len(batch)
        self.metrics.gauge("server_inflight", "requests in the running batch").set(
            len(batch)
        )
        self.metrics.gauge("server_queue_depth", "requests queued").set(
            len(self.batcher)
        )
        prompts = [r.prompt for r in batch]
        if batch[0].raw:
            self._observe_dedup_potential(prompts)
            run = partial(
                self.pc.serve_text_batch, prompts,
                max_new_tokens=batch[0].max_new_tokens,
            )
        else:
            run = partial(
                self.pc.serve_batch, prompts, max_new_tokens=batch[0].max_new_tokens
            )
        try:
            if self.options.inline_execution:
                outcome = run()
            else:
                outcome = await asyncio.get_running_loop().run_in_executor(None, run)
        except Exception as exc:  # engine bug or bad prompt that slipped admission
            finished = self.clock()
            for request in batch:
                request.finished_at = finished
                request.finish(FAILED, error=exc)
                self._count_outcome("failed")
                self._record(request)
            return
        finally:
            self._inflight = 0
            self.metrics.gauge("server_inflight", "requests in the running batch").set(0)

        elapsed = self.clock() - dispatch_at
        # Reconstruct per-request token timestamps from the engine's own
        # measurements: batch members are served sequentially over the
        # shared base cache, so each request's engine time starts where
        # the previous one ended.
        offset = 0.0
        for request, result in zip(batch, outcome.results):
            engine_s = result.ttft_s + sum(result.step_times_s)
            request.result = result
            request.first_token_at = dispatch_at + offset + result.ttft_s
            request.finished_at = dispatch_at + offset + engine_s
            offset += engine_s
            for token in result.output_ids:
                request.push_token(token)
            request.finish(DONE)
            self._observe_done(request, result)
            self._record(request)

        per_request = elapsed / len(batch)
        alpha = self.options.service_time_alpha
        self._service_ewma_s = alpha * per_request + (1 - alpha) * self._service_ewma_s
        self.metrics.histogram(
            "server_batch_size", "dispatched batch sizes", buckets=BATCH_SIZE_BUCKETS
        ).observe(len(batch))
        self.metrics.histogram(
            "server_batch_serve_seconds", "engine time per dispatched batch"
        ).observe(elapsed)
        self.metrics.gauge(
            "server_estimated_queue_delay_seconds",
            "admission-control delay estimate",
        ).set(self.estimated_queue_delay_s())
        self.refresh_store_gauges()

    # -- observability -----------------------------------------------------------

    def _count_outcome(self, outcome: str) -> None:
        self.metrics.counter(
            "server_requests_total", "requests by terminal outcome", outcome=outcome
        ).inc()

    def _observe_done(self, request: LiveRequest, result) -> None:
        self._count_outcome("completed")
        self.metrics.histogram(
            "server_ttft_seconds", "submit to first token"
        ).observe(request.ttft_s() or 0.0)
        self.metrics.histogram(
            "server_ttlt_seconds", "submit to last token"
        ).observe(request.ttlt_s() or 0.0)
        self.metrics.histogram(
            "server_queue_wait_seconds", "time from submit to dispatch or expiry"
        ).observe(request.queue_wait_s())
        self.metrics.counter(
            "server_tokens_generated_total", "decoded tokens"
        ).inc(len(result.output_ids))
        self.metrics.counter(
            "server_prompt_tokens_total", "prompt tokens by cache status",
            status="cached",
        ).inc(result.cached_tokens)
        self.metrics.counter(
            "server_prompt_tokens_total", "prompt tokens by cache status",
            status="uncached",
        ).inc(result.uncached_tokens)
        if request.raw:
            # Raw traffic separately: cached tokens here came exclusively
            # from *discovered* modules, so this pair is the numerator and
            # denominator of the discovered-hit-rate gauge.
            self.metrics.counter(
                "reuse_discovered_tokens_total",
                "raw prompt tokens by discovered-cache status",
                status="cached",
            ).inc(result.cached_tokens)
            self.metrics.counter(
                "reuse_discovered_tokens_total",
                "raw prompt tokens by discovered-cache status",
                status="uncached",
            ).inc(result.uncached_tokens)
            self._raw_cached_tokens += result.cached_tokens
            self._raw_prompt_tokens += result.cached_tokens + result.uncached_tokens

    def _observe_dedup_potential(self, prompts: list[str]) -> None:
        """Pre-flight dedup analysis for a raw batch: what fraction of
        its prompt tokens are shared prefixes (an upper bound on what
        discovery can save on this batch)."""
        if len(prompts) < 2:
            return
        report = analyze_batch([self.pc.tokenizer.encode(p) for p in prompts])
        self.metrics.histogram(
            "reuse_dedup_potential",
            "shared-prefix token fraction per raw batch",
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
        ).observe(report.potential)
        self.metrics.counter(
            "reuse_dedup_tokens_total", "raw batch prompt tokens by dedup class",
            kind="shared",
        ).inc(report.shared_tokens)
        self.metrics.counter(
            "reuse_dedup_tokens_total", "raw batch prompt tokens by dedup class",
            kind="total",
        ).inc(report.total_tokens)

    def _record(self, request: LiveRequest) -> None:
        self.trace_log.append(request.trace())
        if len(self.trace_log) > self.options.trace_log_limit:
            del self.trace_log[: len(self.trace_log) - self.options.trace_log_limit]

    def _wire_store_metrics(self) -> None:
        store = self.pc.store
        for tier in (store.gpu, store.cpu):
            # Pre-create both reason series so scrapes see zeroes before
            # the first eviction rather than an absent family.
            for reason in ("capacity", "ttl"):
                self.metrics.counter(
                    "cache_evictions_total", "module-store evictions",
                    tier=tier.name, reason=reason,
                )
                self.metrics.counter(
                    "cache_evicted_bytes_total", "bytes evicted from the store",
                    tier=tier.name, reason=reason,
                )

            def on_evict(entry, reason, _tier=tier.name):
                self.metrics.counter(
                    "cache_evictions_total", "module-store evictions",
                    tier=_tier, reason=reason,
                ).inc()
                self.metrics.counter(
                    "cache_evicted_bytes_total", "bytes evicted from the store",
                    tier=_tier, reason=reason,
                ).inc(entry.nbytes)

            tier.add_evict_listener(on_evict)
        # Pre-create so scrapes see a zero before the first sweep/error.
        self.metrics.counter(
            "cache_sweep_expired_total",
            "TTL victims dropped by the periodic sweep",
        )
        add_fetch_error = getattr(store, "add_fetch_error_listener", None)
        if add_fetch_error is not None:

            def on_fetch_error(key, exc):
                self.metrics.counter(
                    "cache_miss_fetch_errors_total",
                    "miss-fetcher exceptions by exception type",
                    reason=type(exc).__name__,
                ).inc()

            add_fetch_error(on_fetch_error)
        self._wire_plan_cache_metrics()
        self.refresh_store_gauges()

    def _wire_plan_cache_metrics(self) -> None:
        """Export the engine's compiled-plan cache events as counters."""
        add_listener = getattr(self.pc, "add_plan_cache_listener", None)
        if add_listener is None:  # stub engines in tests
            return
        counters = {
            event: self.metrics.counter(
                "plan_cache_events_total",
                "compiled-plan cache hits/misses/invalidations",
                event=event,
            )
            for event in ("hit", "miss", "invalidation")
        }
        add_listener(lambda event: counters[event].inc())

    def refresh_store_gauges(self) -> None:
        """Mirror the module store's counters into the registry."""
        stats_fn = getattr(self.pc, "plan_cache_stats", None)
        if stats_fn is not None:
            stats = stats_fn()
            self.metrics.gauge(
                "plan_cache_hit_rate", "compiled-plan hits / lookups"
            ).set(stats.hit_rate)
            self.metrics.gauge(
                "plan_cache_base_hits", "serves that reused a spliced base"
            ).set(stats.base_hits)
        for tier in (self.pc.store.gpu, self.pc.store.cpu):
            stats = tier.stats
            g = self.metrics.gauge
            g("cache_tier_hits", "store lookups served", tier=tier.name).set(stats.hits)
            g("cache_tier_misses", "store lookups missed", tier=tier.name).set(
                stats.misses
            )
            g("cache_tier_hit_rate", "hits / lookups", tier=tier.name).set(
                stats.hit_rate
            )
            g("cache_tier_used_bytes", "resident bytes", tier=tier.name).set(
                tier.used_bytes
            )
            g("cache_tier_insertions", "entries inserted", tier=tier.name).set(
                stats.insertions
            )
        self._refresh_fabric_gauges()
        self._refresh_reuse_gauges()

    def _refresh_fabric_gauges(self) -> None:
        """Mirror the cache fabric (tiering, placement, prefetch) into
        gauges. No-op on a plain two-tier store."""
        fabric_fn = getattr(self.pc.store, "fabric_snapshot", None)
        if fabric_fn is None:
            return
        snap = fabric_fn()
        g = self.metrics.gauge
        g("fabric_catalog_entries", "modules cataloged in the snapshot tier").set(
            snap["catalog_entries"]
        )
        g("fabric_reencodes", "full misses that paid a re-encode").set(
            snap["reencodes"]
        )
        for tier_name in ("snapshot", "peer"):
            stats = snap["tiers"][tier_name]
            g("cache_tier_hits", "store lookups served", tier=tier_name).set(
                stats["hits"]
            )
            g("cache_tier_misses", "store lookups missed", tier=tier_name).set(
                stats["misses"]
            )
        placement = snap["placement"]
        for event in ("promotions", "demotions", "drops"):
            g(
                "fabric_placement_decisions",
                "placement engine decisions by kind",
                kind=event,
            ).set(placement[event])
        prefetch = snap["prefetch"]
        g("fabric_prefetch_planned", "prefetch pulls planned").set(
            prefetch["planned"]
        )
        g(
            "fabric_prefetch_budget_denied",
            "prefetch pulls deferred by the byte budget",
        ).set(prefetch["budget_denied"])

    def _refresh_reuse_gauges(self) -> None:
        """Mirror the reuse-discovery plane (trie + miner) into gauges."""
        discovery = getattr(self.pc, "discovery", None)
        if discovery is None:
            return
        snap = discovery.snapshot()
        g = self.metrics.gauge
        g("reuse_trie_nodes", "radix-trie node count").set(snap["trie_nodes"])
        g("reuse_trie_tokens", "radix-trie resident tokens").set(snap["trie_tokens"])
        g("reuse_modules", "live discovered modules").set(snap["modules"])
        g("reuse_promotions", "segments promoted to modules").set(snap["promotions"])
        g("reuse_demotions", "modules demoted by trie eviction").set(snap["demotions"])
        g("reuse_trie_evictions", "trie nodes evicted").set(snap["trie_evictions"])
        g("reuse_observed_sequences", "raw sequences mined").set(
            snap["observed_sequences"]
        )
        hit_rate = (
            self._raw_cached_tokens / self._raw_prompt_tokens
            if self._raw_prompt_tokens
            else 0.0
        )
        g(
            "reuse_discovered_hit_rate",
            "raw prompt tokens served from discovered modules",
        ).set(hit_rate)

    def snapshot(self) -> dict:
        """JSON-ready metrics snapshot (store gauges refreshed first)."""
        self.refresh_store_gauges()
        return self.metrics.snapshot()

    def prometheus(self) -> str:
        """Prometheus text exposition (store gauges refreshed first)."""
        self.refresh_store_gauges()
        return self.metrics.to_prometheus()
