"""Synthetic LongBench-like evaluation suite and scoring metrics."""

from repro.datasets.corpus import (
    ATTRIBUTES,
    Document,
    ENTITIES,
    Fact,
    SyntheticCorpus,
    VALUES,
    training_corpus,
)
from repro.datasets.metrics import (
    METRICS,
    accuracy,
    exact_match,
    normalize_answer,
    rouge_l,
    score,
    token_f1,
)
from repro.datasets.suite import (
    CATEGORIES,
    DATASETS,
    DatasetSpec,
    HEADLINE_DATASETS,
    Sample,
    build_dataset,
    headline_datasets,
)
from repro.datasets.codegen import (
    completion_sample,
    game_codebase,
    module_name_for,
)
from repro.datasets.retrieval import BM25Index, SearchHit

__all__ = [
    "SyntheticCorpus", "Document", "Fact", "training_corpus",
    "ENTITIES", "ATTRIBUTES", "VALUES",
    "score", "token_f1", "rouge_l", "accuracy", "exact_match",
    "normalize_answer", "METRICS",
    "DATASETS", "CATEGORIES", "HEADLINE_DATASETS", "DatasetSpec", "Sample",
    "build_dataset", "headline_datasets",
    "game_codebase", "completion_sample", "module_name_for",
    "BM25Index", "SearchHit",
]
