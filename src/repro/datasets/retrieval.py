"""Lexical retrieval (BM25) over a document pool.

The paper's §6 RAG claim: "the information retrieval system basically
serves as a database of prompt modules." This is that retrieval system —
a from-scratch BM25 index over the synthetic corpus. The RAG example and
bench register the whole pool as one schema (every document pre-encoded)
and serve each query by importing only the retrieved top-k modules, so
retrieval selects *cached attention states*, not raw text.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass


def _terms(text: str) -> list[str]:
    return text.lower().split()


@dataclass
class SearchHit:
    doc_id: str
    score: float


class BM25Index:
    """Classic Okapi BM25 (k1/b defaults from the literature)."""

    def __init__(self, k1: float = 1.5, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._term_freqs: dict[str, Counter] = {}
        self._doc_lengths: dict[str, int] = {}
        self._doc_freq: Counter = Counter()

    def add(self, doc_id: str, text: str) -> None:
        if doc_id in self._term_freqs:
            raise ValueError(f"document {doc_id!r} already indexed")
        terms = _terms(text)
        counts = Counter(terms)
        self._term_freqs[doc_id] = counts
        self._doc_lengths[doc_id] = len(terms)
        for term in counts:
            self._doc_freq[term] += 1

    def __len__(self) -> int:
        return len(self._term_freqs)

    @property
    def _avg_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return sum(self._doc_lengths.values()) / len(self._doc_lengths)

    def _idf(self, term: str) -> float:
        n = len(self._term_freqs)
        df = self._doc_freq.get(term, 0)
        return math.log((n - df + 0.5) / (df + 0.5) + 1.0)

    def score(self, query: str, doc_id: str) -> float:
        counts = self._term_freqs[doc_id]
        length = self._doc_lengths[doc_id]
        avg = self._avg_length or 1.0
        total = 0.0
        for term in _terms(query):
            tf = counts.get(term, 0)
            if tf == 0:
                continue
            saturation = (tf * (self.k1 + 1)) / (
                tf + self.k1 * (1 - self.b + self.b * length / avg)
            )
            total += self._idf(term) * saturation
        return total

    def search(self, query: str, k: int = 3) -> list[SearchHit]:
        """Top-``k`` documents by BM25 score (ties broken by doc id)."""
        hits = [
            SearchHit(doc_id=doc_id, score=self.score(query, doc_id))
            for doc_id in self._term_freqs
        ]
        hits.sort(key=lambda h: (-h.score, h.doc_id))
        return [h for h in hits[:k] if h.score > 0]
