"""Seeded synthetic document corpus.

Substitute for LongBench's source documents (wiki pages, news, reports,
meeting transcripts): deterministic synthetic prose with embedded,
machine-checkable *facts*. Each fact is a subject–attribute–value triple
rendered as a statement sentence; questions about facts have unambiguous
short answers, so QA metrics measure something real even with small models.

Everything is lowercase and drawn from closed word banks — friendly both to
the BPE tokenizer (compact vocabulary) and to the trained tiny models used
in the accuracy benchmarks (associative recall over seen tokens).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

ENTITIES = [
    "atlantis", "zephyria", "marrowgate", "valdora", "quillhaven", "brimstead",
    "lorvale", "emberfall", "thornwick", "gildenport", "ashmere", "coldspring",
    "duskwall", "fernmoor", "glasswater", "hollowpine", "ironvale", "juniper",
    "kestrelwood", "larkspur", "mossford", "nightbloom", "oakhurst", "pinecrest",
    "ravenhill", "silverbrook", "tidewater", "umberlea", "violetmarsh", "willowend",
]

ATTRIBUTES = [
    "capital", "river", "mayor", "export", "anthem", "festival", "harbor",
    "forest", "bridge", "museum", "lighthouse", "orchard", "market", "tower",
    "garden", "founder",
]

VALUES = [
    "coral", "basalt", "meridian", "saffron", "cobalt", "juniper", "vermilion",
    "obsidian", "amber", "cedar", "onyx", "quartz", "indigo", "marble", "lilac",
    "granite", "topaz", "walnut", "ivory", "sable", "russet", "pewter", "umber",
    "jade", "slate", "henna", "larch", "ochre", "plum", "teal",
]

ADJECTIVES = [
    "quiet", "ancient", "winding", "narrow", "bright", "misty", "steep",
    "broad", "shaded", "windswept", "cobbled", "mossy",
]

NOUNS = [
    "road", "valley", "square", "canal", "meadow", "cliff", "wall", "gate",
    "mill", "quay", "terrace", "grove",
]

VERBS = [
    "crosses", "borders", "overlooks", "follows", "circles", "shelters",
    "divides", "joins",
]

# Romanized syllable bank for the "zh"-flavoured datasets (LongBench is
# bilingual; we mirror that with a disjoint vocabulary, same structure).
ZH_WORDS = [
    "shan", "jiang", "chengbei", "nanhu", "xigu", "dongmen", "qingshi",
    "baiyun", "hongqiao", "lüdao", "jinting", "yinxi", "tianchi", "haiwan",
]


@dataclass(frozen=True)
class Fact:
    """A subject–attribute–value triple embedded in a document.

    Surface form: the value directly follows the ``<entity> has
    <attribute>`` bigram, and questions end with that same bigram as a
    completion prefix — so a trained induction head can retrieve the value
    by exact pattern match (see :mod:`repro.train.tasks`).
    """

    entity: str
    attribute: str
    value: str

    def statement(self) -> str:
        return f"{self.entity} has {self.attribute} {self.value} ."

    def question(self) -> str:
        return f"what {self.attribute} does {self.entity} have ?"

    def completion(self) -> str:
        """The answer prefix; the next word after it is the value."""
        return f"answer by completing : {self.entity} has {self.attribute}"


@dataclass
class Document:
    """One synthetic document: prose with facts at known offsets."""

    doc_id: str
    title: str
    sentences: list[str]
    facts: list[Fact] = field(default_factory=list)

    @property
    def text(self) -> str:
        return f"{self.title} . " + " ".join(self.sentences)

    @property
    def word_count(self) -> int:
        return len(self.text.split())


class SyntheticCorpus:
    """Deterministic document factory; same seed+doc_id, same document."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _rng(self, doc_id: str) -> np.random.Generator:
        # zlib.crc32, not hash(): str hashing is salted per process and
        # would break cross-process determinism.
        return np.random.default_rng([self.seed, zlib.crc32(doc_id.encode())])

    def filler_sentence(self, rng: np.random.Generator, flavor: str = "en") -> str:
        if flavor == "zh":
            words = rng.choice(ZH_WORDS, size=5)
            return " ".join(words) + " ."
        return (
            f"the {rng.choice(ADJECTIVES)} {rng.choice(NOUNS)} "
            f"{rng.choice(VERBS)} the {rng.choice(ADJECTIVES)} "
            f"{rng.choice(NOUNS)} near {rng.choice(ENTITIES)} ."
        )

    def make_fact(self, rng: np.random.Generator, entity: str | None = None) -> Fact:
        return Fact(
            entity=entity or str(rng.choice(ENTITIES)),
            attribute=str(rng.choice(ATTRIBUTES)),
            value=str(rng.choice(VALUES)),
        )

    def document(
        self,
        doc_id: str,
        *,
        n_words: int = 300,
        n_facts: int = 4,
        flavor: str = "en",
        facts: list[Fact] | None = None,
    ) -> Document:
        """Build a document of roughly ``n_words`` with ``n_facts`` facts
        spread through the prose (or the explicit ``facts`` given)."""
        rng = self._rng(doc_id)
        if facts is None:
            facts = []
            used_attrs: set[str] = set()
            while len(facts) < n_facts:
                fact = self.make_fact(rng)
                # Attributes are unique per document so a completion prefix
                # identifies exactly one fact.
                if fact.attribute not in used_attrs:
                    used_attrs.add(fact.attribute)
                    facts.append(fact)
        sentences: list[str] = []
        words = 0
        target_filler = max(n_words - 9 * len(facts), 0)
        while words < target_filler:
            sentence = self.filler_sentence(rng, flavor)
            sentences.append(sentence)
            words += len(sentence.split())
        # Interleave facts deterministically through the prose.
        for i, fact in enumerate(facts):
            slot = (i + 1) * len(sentences) // (len(facts) + 1)
            sentences.insert(min(slot, len(sentences)), fact.statement())
        title = f"document {doc_id} about {rng.choice(ENTITIES)}"
        return Document(doc_id=doc_id, title=title, sentences=sentences, facts=facts)

    def multi_hop_chain(self, rng: np.random.Generator, hops: int = 2) -> list[Fact]:
        """Facts forming a chain: the value of hop i is the entity of
        hop i+1 — the 2WikiMQA/MuSiQue/HotpotQA structure."""
        entities = list(rng.choice(ENTITIES, size=hops, replace=False))
        attributes = list(rng.choice(ATTRIBUTES, size=hops, replace=False))
        chain: list[Fact] = []
        for i in range(hops):
            value = entities[i + 1] if i + 1 < hops else str(rng.choice(VALUES))
            chain.append(
                Fact(entity=entities[i], attribute=attributes[i], value=value)
            )
        return chain


def training_corpus() -> list[str]:
    """Texts covering the full synthetic vocabulary plus task directives —
    what the shared BPE tokenizer trains on (:mod:`repro.tokenizer.default`)."""
    corpus = SyntheticCorpus(seed=0)
    texts = [corpus.document(f"train{i}", n_words=220).text for i in range(12)]
    texts += [corpus.document(f"zh{i}", n_words=120, flavor="zh").text for i in range(4)]
    texts += [
        " ".join(ENTITIES), " ".join(ATTRIBUTES), " ".join(VALUES),
        " ".join(ADJECTIVES + NOUNS + VERBS), " ".join(ZH_WORDS),
        "what capital does atlantis have ? answer the question using the "
        "documents above . answer by completing : atlantis has capital . "
        "summarize the key facts . which passage contains the excerpt ? "
        "the answer is coral . begin the summary now :",
        "you are a helpful assistant . plan a trip lasting three days . "
        "suggest a book for this reader profile .",
        "def main(): return game.run() class Unit: pass class Map: pass "
        "class Game: pass class Player: pass import numpy as np",
    ] * 3
    return texts
