"""Synthetic multi-file code corpus (paper §5.6.1, Fig 6).

The paper's code-generation demo treats each source file of a small game
project (Unit, Map, Game, Player) as a prompt module. We generate an
equivalent deterministic Python codebase so the Fig 6 bench and the code
datasets (LCC / RepoBench-P) have realistic module-shaped sources.
"""

from __future__ import annotations

import numpy as np

_CLASS_SPECS = {
    "unit.py": ("Unit", ["health", "attack", "speed", "armor"], ["move", "strike", "heal"]),
    "map.py": ("Map", ["width", "height", "terrain", "spawn"], ["tile_at", "neighbors", "distance"]),
    "game.py": ("Game", ["turn", "units", "board", "log"], ["step", "winner", "run"]),
    "player.py": ("Player", ["name", "score", "faction", "units"], ["recruit", "command", "surrender"]),
}


def _render_class(name: str, fields: list[str], methods: list[str], rng) -> str:
    lines = [f"class {name}:", f'    """{name} for the grid strategy game."""', ""]
    init_args = ", ".join(f"{f}={int(rng.integers(1, 20))}" for f in fields)
    lines.append(f"    def __init__(self, {init_args}):")
    for f in fields:
        lines.append(f"        self.{f} = {f}")
    lines.append("")
    for method in methods:
        operand = fields[int(rng.integers(0, len(fields)))]
        delta = int(rng.integers(1, 9))
        lines.append(f"    def {method}(self, amount={delta}):")
        lines.append(f'        """Apply {method} using {operand}."""')
        lines.append(f"        self.{operand} = self.{operand} + amount")
        lines.append(f"        return self.{operand}")
        lines.append("")
    return "\n".join(lines)


def game_codebase(seed: int = 0) -> dict[str, str]:
    """The Fig 6 project: one source string per file, deterministic."""
    rng = np.random.default_rng(seed)
    return {
        path: _render_class(name, fields, methods, rng)
        for path, (name, fields, methods) in _CLASS_SPECS.items()
    }


def module_name_for(path: str) -> str:
    """PML module name for a source path (``unit.py`` -> ``file-unit``)."""
    return "file-" + path.removesuffix(".py").replace("_", "-")


def completion_sample(seed: int, index: int) -> tuple[str, str, str]:
    """(context_code, visible_line, next_line) for code-completion datasets:
    given the file contents up to a point, predict the following line."""
    rng = np.random.default_rng([seed, index])
    files = game_codebase(seed=int(rng.integers(0, 50)))
    path = list(files)[int(rng.integers(0, len(files)))]
    lines = [l for l in files[path].splitlines() if l.strip()]
    cut = int(rng.integers(3, len(lines) - 1))
    context = "\n".join(lines[:cut])
    return context, lines[cut - 1], lines[cut]
