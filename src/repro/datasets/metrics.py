"""Answer-quality metrics matching LongBench's scoring (paper Table 1).

- token-level **F1** for QA datasets (NarrativeQA, 2WikiMQA, MuSiQue,
  TriviaQA) with SQuAD-style normalization;
- **Rouge-L** (LCS F-measure) for summarization (GovReport, QMSum,
  MultiNews);
- **accuracy** for retrieval/classification (Passage Retrieval, TREC).

All return floats in [0, 100] like the paper's tables.
"""

from __future__ import annotations

import re
import string
from collections import Counter

_ARTICLES = re.compile(r"\b(a|an|the)\b")
_PUNCT = str.maketrans("", "", string.punctuation)


def normalize_answer(text: str) -> str:
    """Lowercase, strip punctuation/articles, squeeze whitespace (SQuAD)."""
    text = text.lower().translate(_PUNCT)
    text = _ARTICLES.sub(" ", text)
    return " ".join(text.split())


def token_f1(prediction: str, reference: str) -> float:
    """Bag-of-tokens F1 between normalized prediction and reference."""
    pred_tokens = normalize_answer(prediction).split()
    ref_tokens = normalize_answer(reference).split()
    if not pred_tokens or not ref_tokens:
        return 100.0 if pred_tokens == ref_tokens else 0.0
    common = Counter(pred_tokens) & Counter(ref_tokens)
    overlap = sum(common.values())
    if overlap == 0:
        return 0.0
    precision = overlap / len(pred_tokens)
    recall = overlap / len(ref_tokens)
    return 100.0 * 2 * precision * recall / (precision + recall)


def _lcs_length(a: list[str], b: list[str]) -> int:
    """Longest common subsequence via the standard two-row DP."""
    if not a or not b:
        return 0
    prev = [0] * (len(b) + 1)
    for x in a:
        curr = [0]
        for j, y in enumerate(b, start=1):
            curr.append(prev[j - 1] + 1 if x == y else max(prev[j], curr[-1]))
        prev = curr
    return prev[-1]


def rouge_l(prediction: str, reference: str) -> float:
    """Rouge-L F-measure over normalized tokens."""
    pred_tokens = normalize_answer(prediction).split()
    ref_tokens = normalize_answer(reference).split()
    if not pred_tokens or not ref_tokens:
        return 0.0
    lcs = _lcs_length(pred_tokens, ref_tokens)
    if lcs == 0:
        return 0.0
    precision = lcs / len(pred_tokens)
    recall = lcs / len(ref_tokens)
    return 100.0 * 2 * precision * recall / (precision + recall)


def accuracy(prediction: str, reference: str) -> float:
    """100 if the normalized reference appears in the prediction, else 0 —
    LongBench's retrieval scoring."""
    return 100.0 if normalize_answer(reference) in normalize_answer(prediction) else 0.0


def exact_match(prediction: str, reference: str) -> float:
    return 100.0 if normalize_answer(prediction) == normalize_answer(reference) else 0.0


METRICS = {
    "f1": token_f1,
    "rougeL": rouge_l,
    "acc": accuracy,
    "em": exact_match,
}


def score(metric: str, prediction: str, reference: str) -> float:
    """Dispatch by metric name (``"f1"``, ``"rougeL"``, ``"acc"``, ``"em"``)."""
    try:
        fn = METRICS[metric]
    except KeyError:
        raise KeyError(f"unknown metric {metric!r}; known: {sorted(METRICS)}") from None
    return fn(prediction, reference)
