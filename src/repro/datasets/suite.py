"""Synthetic LongBench-like evaluation suite (paper §5.1).

LongBench itself (21 datasets, 6 categories, 4K–10K-token contexts) is not
available offline; this module mirrors its *structure* over the seeded
synthetic corpus: the same dataset names, the same category split, the same
per-dataset metrics, and the same module decomposition the paper uses —
"we defined the documents ... as prompt modules [and] kept the
task-specific directives as uncached user text".

Every sample carries ready-made PML: :meth:`Sample.schema_pml` (documents
as modules) and :meth:`Sample.prompt_pml` (imports + the uncached
directive), so benchmarks drive :class:`repro.PromptCache` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.datasets.codegen import completion_sample
from repro.datasets.corpus import Fact, SyntheticCorpus

HEADLINE_DATASETS = (
    # The 8 datasets Figures 3/4 and Table 1 report.
    "narrativeqa", "2wikimqa", "musique", "gov_report",
    "qmsum", "multi_news", "triviaqa", "passage_retrieval_en",
)


@dataclass
class Sample:
    """One evaluation instance: cached documents + uncached directive."""

    dataset: str
    sample_id: str
    documents: list[tuple[str, str]]  # (module name, document text)
    question: str  # task-specific directive — stays uncached
    answer: str
    metric: str

    def schema_name(self) -> str:
        return f"{self.dataset}-{self.sample_id}"

    def schema_pml(self) -> str:
        body = "".join(
            f'<module name="{name}">{_escape(text)}</module>'
            for name, text in self.documents
        )
        return f'<schema name="{self.schema_name()}">{body}</schema>'

    def prompt_pml(self, selected: list[str] | None = None) -> str:
        names = selected if selected is not None else [n for n, _ in self.documents]
        imports = "".join(f"<{n}/>" for n in names)
        return (
            f'<prompt schema="{self.schema_name()}">{imports} '
            f"{_escape(self.question)}</prompt>"
        )

    def full_text(self) -> str:
        """Plain concatenation — what a user sends without Prompt Cache."""
        return " ".join(text for _, text in self.documents) + " " + self.question


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;")


@dataclass(frozen=True)
class DatasetSpec:
    name: str
    category: str
    metric: str
    builder: Callable  # (corpus, rng, sample_id, context_words) -> Sample
    headline: bool = False


# -- sample builders ------------------------------------------------------------


def _split_words(total: int, parts: int) -> list[int]:
    base = max(total // parts, 30)
    return [base] * parts


def _single_doc_qa(directive: str, flavor: str = "en", metric: str = "f1"):
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        doc = corpus.document(sample_id, n_words=context_words, n_facts=5, flavor=flavor)
        fact = doc.facts[int(rng.integers(0, len(doc.facts)))]
        return Sample(
            dataset="", sample_id=sample_id,
            documents=[("doc", doc.text)],
            question=f"{directive} {fact.completion()}",
            answer=fact.value,
            metric=metric,
        )

    return build


def _multi_doc_qa(hops: int, directive: str, metric: str = "f1"):
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        chain = corpus.multi_hop_chain(rng, hops=hops)
        n_docs = max(hops, 3)
        words = _split_words(context_words, n_docs)
        documents = []
        for i in range(n_docs):
            facts = [chain[i]] if i < hops else None
            doc = corpus.document(
                f"{sample_id}-d{i}", n_words=words[i],
                facts=facts, n_facts=3,
            )
            documents.append((f"doc{i}", doc.text))
        # Ask for the chain's final value through its first link. The
        # completion prefix names only the final attribute ("it has X"), so
        # answering needs either real multi-hop reasoning or an induction
        # match on the final attribute — which other documents' facts can
        # shadow. Scores stay well below single-hop QA, as in the paper.
        first, last = chain[0], chain[-1]
        middle = " of ".join(f"the {f.attribute}" for f in reversed(chain[1:]))
        question = (
            f"follow the chain : {middle} of {first.entity} . "
            f"answer by completing : it has {last.attribute}"
        )
        return Sample(
            dataset="", sample_id=sample_id,
            documents=documents,
            question=f"{directive} {question}",
            answer=last.value,
            metric=metric,
        )

    return build


def _summarization(directive: str, flavor: str = "en", dialogue: bool = False):
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        n_docs = 3
        words = _split_words(context_words, n_docs)
        documents = []
        key_facts: list[Fact] = []
        for i in range(n_docs):
            doc = corpus.document(
                f"{sample_id}-d{i}", n_words=words[i], n_facts=2, flavor=flavor
            )
            text = doc.text
            if dialogue:
                sentences = doc.sentences
                turns = [
                    f"{'alice' if j % 2 == 0 else 'bob'} : {s}"
                    for j, s in enumerate(sentences)
                ]
                text = " ".join(turns)
            documents.append((f"doc{i}", text))
            key_facts.extend(doc.facts)
        return Sample(
            dataset="", sample_id=sample_id,
            documents=documents,
            question=directive,
            answer=" ".join(f.statement() for f in key_facts),
            metric="rougeL",
        )

    return build


def _few_shot_qa(directive: str):
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        doc = corpus.document(sample_id, n_words=context_words * 2 // 3, n_facts=4)
        # Few-shot exemplars stay *uncached*: they change per request, which
        # is why the paper observes TriviaQA gaining the least ("larger
        # proportion of uncached prompts", §5.2.2).
        shots = [
            f"{fact.completion()} {fact.value} ." for fact in doc.facts[:-1]
        ]
        extra = [
            corpus.filler_sentence(np.random.default_rng([i, len(sample_id)]))
            for i in range(context_words // 12)
        ]
        target = doc.facts[-1]
        return Sample(
            dataset="", sample_id=sample_id,
            documents=[("doc", doc.text)],
            question=(
                f"{directive} here are examples : {' '.join(shots)} "
                f"{' '.join(extra)} now answer : {target.completion()}"
            ),
            answer=target.value,
            metric="f1",
        )

    return build


def _classification(directive: str, flavor: str = "en"):
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        # Few-shot label examples: a sentence mentioning an entity, labelled
        # with that entity (TREC-style "classify by topic").
        rng_local = np.random.default_rng([rng.integers(2**31), 1])
        shots = []
        entities = []
        n_shots = max(context_words // 20, 6)
        from repro.datasets.corpus import ENTITIES

        for i in range(n_shots):
            entity = ENTITIES[int(rng_local.integers(0, len(ENTITIES)))]
            sentence = corpus.filler_sentence(rng_local, flavor="en").replace(
                "near", f"near {entity} beside"
            )
            shots.append(f"text : {sentence} label : {entity} .")
            entities.append(entity)
        target_entity = entities[int(rng_local.integers(0, len(entities)))]
        target = f"the quiet road crosses the broad gate near {target_entity} ."
        return Sample(
            dataset="", sample_id=sample_id,
            documents=[("examples", " ".join(shots))],
            question=f"{directive} text : {target} label :",
            answer=target_entity,
            metric="acc",
        )

    return build


def _passage_retrieval(flavor: str = "en"):
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        n_passages = 6
        words = _split_words(context_words, n_passages)
        documents = []
        docs = []
        for i in range(n_passages):
            doc = corpus.document(
                f"{sample_id}-p{i}", n_words=words[i], n_facts=1, flavor=flavor
            )
            docs.append(doc)
            documents.append((f"passage{i}", f"passage {i} : {doc.text}"))
        target = int(rng.integers(0, n_passages))
        excerpt = docs[target].facts[0].statement()
        return Sample(
            dataset="", sample_id=sample_id,
            documents=documents,
            question=(
                "you are given several numbered passages above . exactly one "
                "of them contains the excerpt quoted below . read the "
                "passages , find the one that states the excerpt verbatim , "
                "and answer with its passage number only , in the form "
                f"passage n . the excerpt is : {excerpt} the answer is passage"
            ),
            answer=f"passage {target}",
            metric="acc",
        )

    return build


def _passage_count():
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        n_unique = int(rng.integers(3, 7))
        n_total = n_unique + int(rng.integers(1, 4))
        words = _split_words(context_words, n_total)
        uniques = [
            corpus.document(f"{sample_id}-u{i}", n_words=words[i], n_facts=1)
            for i in range(n_unique)
        ]
        documents = []
        for i in range(n_total):
            doc = uniques[i] if i < n_unique else uniques[int(rng.integers(0, n_unique))]
            documents.append((f"passage{i}", doc.text))
        return Sample(
            dataset="", sample_id=sample_id,
            documents=documents,
            question=(
                "you are given several passages above and some of them are "
                "exact duplicates of one another . count how many unique "
                "passages there are , counting each distinct passage once no "
                "matter how many times it repeats , and answer with a single "
                "number . the answer is"
            ),
            answer=str(n_unique),
            metric="acc",
        )

    return build


def _code_completion():
    def build(corpus: SyntheticCorpus, rng, sample_id: str, context_words: int) -> Sample:
        context, visible, nxt = completion_sample(
            seed=7, index=int(rng.integers(0, 10000))
        )
        return Sample(
            dataset="", sample_id=sample_id,
            documents=[("code", context)],
            question="complete the next line of code .",
            answer=nxt,
            metric="f1",
        )

    return build


# -- registry ---------------------------------------------------------------------

# Directives mirror LongBench's full task instructions, so the uncached
# portion has realistic size (~40-60 tokens) rather than a one-liner.
_DIRECTIVE_QA = (
    "you are given one or more documents above . read them carefully and "
    "answer the question that follows . use only information stated in the "
    "documents , answer with a short phrase , and do not explain your "
    "reasoning . the question is :"
)
_DIRECTIVE_SUM = (
    "you are given one or more documents above . write a concise summary "
    "that restates every key fact exactly as the documents state it , one "
    "sentence per fact , without adding opinions or outside knowledge . "
    "begin the summary now :"
)

DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # Single-document QA
        DatasetSpec("narrativeqa", "single_doc_qa", "f1", _single_doc_qa(_DIRECTIVE_QA), headline=True),
        DatasetSpec("qasper", "single_doc_qa", "f1", _single_doc_qa(_DIRECTIVE_QA)),
        DatasetSpec("multifieldqa_en", "single_doc_qa", "f1", _single_doc_qa(_DIRECTIVE_QA)),
        DatasetSpec("multifieldqa_zh", "single_doc_qa", "f1", _single_doc_qa(_DIRECTIVE_QA, flavor="zh")),
        DatasetSpec("nq", "single_doc_qa", "f1", _single_doc_qa(_DIRECTIVE_QA)),
        # Multi-document QA
        DatasetSpec("hotpotqa", "multi_doc_qa", "f1", _multi_doc_qa(2, _DIRECTIVE_QA)),
        DatasetSpec("2wikimqa", "multi_doc_qa", "f1", _multi_doc_qa(2, _DIRECTIVE_QA), headline=True),
        DatasetSpec("musique", "multi_doc_qa", "f1", _multi_doc_qa(3, _DIRECTIVE_QA), headline=True),
        DatasetSpec("dureader", "multi_doc_qa", "rougeL", _multi_doc_qa(2, _DIRECTIVE_QA, metric="rougeL")),
        # Summarization
        DatasetSpec("gov_report", "summarization", "rougeL", _summarization(_DIRECTIVE_SUM), headline=True),
        DatasetSpec("qmsum", "summarization", "rougeL", _summarization(_DIRECTIVE_SUM, dialogue=True), headline=True),
        DatasetSpec("multi_news", "summarization", "rougeL", _summarization(_DIRECTIVE_SUM), headline=True),
        DatasetSpec("vcsum", "summarization", "rougeL", _summarization(_DIRECTIVE_SUM, flavor="zh")),
        # Few-shot
        DatasetSpec("trec", "few_shot", "acc", _classification("classify the text by naming its place label .")),
        DatasetSpec("triviaqa", "few_shot", "f1", _few_shot_qa(_DIRECTIVE_QA), headline=True),
        DatasetSpec("samsum", "few_shot", "rougeL", _summarization(_DIRECTIVE_SUM, dialogue=True)),
        DatasetSpec("lsht", "few_shot", "acc", _classification("classify the text by naming its place label .", flavor="zh")),
        # Synthetic
        DatasetSpec("passage_count", "synthetic", "acc", _passage_count()),
        DatasetSpec("passage_retrieval_en", "synthetic", "acc", _passage_retrieval(), headline=True),
        DatasetSpec("passage_retrieval_zh", "synthetic", "acc", _passage_retrieval(flavor="zh")),
        # Code
        DatasetSpec("lcc", "code", "f1", _code_completion()),
        DatasetSpec("repobench-p", "code", "f1", _code_completion()),
    ]
}

CATEGORIES = sorted({spec.category for spec in DATASETS.values()})


def build_dataset(
    name: str,
    *,
    n_samples: int = 8,
    context_words: int = 400,
    seed: int = 0,
) -> list[Sample]:
    """Materialize ``n_samples`` deterministic samples of dataset ``name``.

    ``context_words`` scales the cached-document sizes: tests run ~100,
    measured benches ~400–1000, analytical benches emulate the paper's ~5K
    tokens.
    """
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}") from None
    corpus = SyntheticCorpus(seed=seed)
    rng = np.random.default_rng([seed, zlib_crc(name)])
    samples = []
    for i in range(n_samples):
        sample = spec.builder(corpus, rng, f"{name[:4]}{i}", context_words)
        sample.dataset = name
        sample.metric = spec.metric
        samples.append(sample)
    return samples


def zlib_crc(text: str) -> int:
    import zlib

    return zlib.crc32(text.encode())


def headline_datasets() -> list[DatasetSpec]:
    return [DATASETS[name] for name in HEADLINE_DATASETS]
