"""Command-line interface: ``python -m repro <command>``.

Commands
--------
inspect    parse a schema file, print its position layout and lint report
analyze    run the repo's own AST lint rules (repro.analysis) over src/
serve      serve a PML prompt against a schema with a seeded engine
serve-live run the async serving runtime under a seeded open-loop trace
serve-cluster  run N sharded workers behind the cache-affinity router
               (``--attach-snapshot DIR`` maps a shared warm snapshot;
               ``--fabric`` swaps in the tiered cache fabric)
warm       encode a schema set across a process pool and (optionally)
           write a memmap-ready v2 snapshot for later attach
loadgen    synthesize a serving trace and print its shape (``--cluster N``
           previews its placement across a worker ring)
reuse-stats  run a seeded raw-text workload through reuse discovery and
             print trie/miner statistics (``serve-live --discover`` runs
             the same traffic through the async runtime)
fabric-stats run a seeded schema workload through the tiered cache
             fabric and print tier/placement/prefetch statistics
tokenize   show how the shared tokenizer splits a text
ttft       modeled TTFT for a paper-shape model on a paper device
datasets   list the synthetic evaluation suite
devices    list the modeled hardware testbeds
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _positive(kind):
    def parse(text: str):
        value = kind(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
        return value

    return parse


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prompt Cache (MLSys 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="layout + lint a schema file")
    inspect.add_argument("schema", type=Path)
    inspect.add_argument("--model", default="llama2-7b", help="paper model for budgets")

    from repro.analysis.cli import add_arguments as add_analyze_arguments

    analyze = sub.add_parser(
        "analyze",
        help="lint the repo's own source: guarded-by, async-hygiene, "
             "broad-except, kv-contract",
    )
    add_analyze_arguments(analyze)

    serve = sub.add_parser("serve", help="serve a prompt against a schema")
    serve.add_argument("schema", type=Path)
    serve.add_argument("prompt", help="prompt PML text or a file path")
    serve.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    serve.add_argument("--size", default="small", choices=["tiny", "small"])
    serve.add_argument("--max-new-tokens", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--compare", action="store_true", help="also run the baseline")

    live = sub.add_parser(
        "serve-live",
        help="drive the real engine through the async serving runtime",
    )
    live.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    live.add_argument("--size", default="tiny", choices=["tiny", "small"])
    live.add_argument("--schemas", type=_positive(int), default=3,
                      help="schema pool size")
    live.add_argument("--module-tokens", type=_positive(int), default=48)
    live.add_argument("--uncached-tokens", type=_positive(int), default=10)
    live.add_argument("--decode-tokens", type=_positive(int), default=4)
    live.add_argument("--rate", type=_positive(float), default=40.0,
                      help="arrival rate (req/s)")
    live.add_argument("--duration", type=_positive(float), default=2.0,
                      help="trace length (s)")
    live.add_argument("--seed", type=int, default=0)
    live.add_argument("--max-queue", type=int, default=32)
    live.add_argument("--delay-budget", type=float, default=1.0,
                      help="admission queue-delay budget (s)")
    live.add_argument("--max-batch", type=int, default=4)
    live.add_argument("--batch-wait", type=float, default=0.01,
                      help="batcher max-wait (s)")
    live.add_argument("--mode", default="auto",
                      choices=["auto", "continuous", "whole_request"],
                      help="dispatch mode: iteration-level scheduler "
                           "(continuous) or legacy whole-request batches")
    live.add_argument("--max-inflight", type=_positive(int), default=8,
                      help="continuous mode: concurrent decoding sequences")
    live.add_argument("--prefill-chunk", type=_positive(int), default=256,
                      help="continuous mode: prefill token budget per iteration")
    live.add_argument("--deadline", type=float, default=None,
                      help="per-request deadline (s)")
    live.add_argument("--gpu-capacity-kb", type=int, default=None,
                      help="module-store GPU tier budget (forces evictions)")
    live.add_argument("--format", default="summary",
                      choices=["summary", "prom", "json"],
                      help="metrics output format")
    live.add_argument("--discover", action="store_true",
                      help="serve schema-free raw text instead of PML and "
                           "mine shared prefixes into discovered modules "
                           "(outputs stay byte-identical to no-discovery)")
    live.add_argument("--shared-tokens", type=_positive(int), default=48,
                      help="[--discover] shared preamble length (tokens)")
    live.add_argument("--min-hits", type=_positive(int), default=3,
                      help="[--discover] observations before promotion")
    live.add_argument("--min-tokens", type=_positive(int), default=16,
                      help="[--discover] minimum promoted segment length")

    cluster = sub.add_parser(
        "serve-cluster",
        help="drive N sharded workers behind the consistent-hash router",
    )
    cluster.add_argument("--workers", type=_positive(int), default=2)
    cluster.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    cluster.add_argument("--size", default="tiny", choices=["tiny", "small"])
    cluster.add_argument("--schemas", type=_positive(int), default=3)
    cluster.add_argument("--module-tokens", type=_positive(int), default=48)
    cluster.add_argument("--uncached-tokens", type=_positive(int), default=10)
    cluster.add_argument("--decode-tokens", type=_positive(int), default=4)
    cluster.add_argument("--rate", type=_positive(float), default=40.0)
    cluster.add_argument("--duration", type=_positive(float), default=2.0)
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--max-queue", type=int, default=32)
    cluster.add_argument("--max-batch", type=int, default=4)
    cluster.add_argument("--batch-wait", type=float, default=0.01)
    cluster.add_argument("--spill-depth", type=_positive(int), default=8,
                         help="home queue depth beyond which requests spill")
    cluster.add_argument("--vnodes", type=_positive(int), default=64)
    cluster.add_argument("--deadline", type=float, default=None)
    cluster.add_argument("--attach-snapshot", type=Path, default=None, metavar="DIR",
                         help="map a v2 snapshot (from `repro warm --out`) "
                              "read-only into every worker's store — one "
                              "resident copy of the module KV per host")
    cluster.add_argument("--fabric", action="store_true",
                         help="give every worker a tiered FabricStore: "
                              "cost-model placement, predictive prefetch, "
                              "snapshot as a lazily paged-in tier, and "
                              "residency advertised to the router")
    cluster.add_argument("--fabric-gpu-kb", type=_positive(int), default=None,
                         help="[--fabric] fast-tier capacity per worker "
                              "(forces demotions/drops)")
    cluster.add_argument("--format", default="summary",
                         choices=["summary", "prom", "json"])

    warm = sub.add_parser(
        "warm",
        help="encode schemas across a process pool; optionally snapshot them",
    )
    warm.add_argument("schemas", type=Path, nargs="*",
                      help="PML schema files to warm (besides --synthetic)")
    warm.add_argument("--synthetic", type=_positive(int), default=None, metavar="N",
                      help="also warm the N-schema synthetic serving workload "
                           "(same generator as serve-cluster)")
    warm.add_argument("--workers", type=_positive(int), default=1,
                      help="encode pool size (1 = sequential in-process)")
    warm.add_argument("--out", type=Path, default=None, metavar="DIR",
                      help="write the warmed store as a v2 snapshot")
    warm.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    warm.add_argument("--size", default="tiny", choices=["tiny", "small"])
    warm.add_argument("--seed", type=int, default=0)
    warm.add_argument("--module-tokens", type=_positive(int), default=48)
    warm.add_argument("--format", default="summary",
                      choices=["summary", "prom", "json"])

    loadgen = sub.add_parser(
        "loadgen", help="synthesize a seeded serving trace and print its shape"
    )
    loadgen.add_argument("--schemas", type=_positive(int), default=4)
    loadgen.add_argument("--module-tokens", type=_positive(int), default=5000)
    loadgen.add_argument("--rate", type=_positive(float), default=1.0)
    loadgen.add_argument("--duration", type=_positive(float), default=60.0)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--jsonl", action="store_true",
                         help="emit the trace as JSON lines instead of a summary")
    loadgen.add_argument("--cluster", type=_positive(int), default=None, metavar="N",
                         help="preview the trace's placement across an "
                              "N-worker consistent-hash ring")
    loadgen.add_argument("--vnodes", type=_positive(int), default=64)

    reuse = sub.add_parser(
        "reuse-stats",
        help="run a seeded raw-text workload through reuse discovery and "
             "print the trie/miner statistics",
    )
    reuse.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    reuse.add_argument("--size", default="tiny", choices=["tiny", "small"])
    reuse.add_argument("--requests", type=_positive(int), default=12)
    reuse.add_argument("--shared-tokens", type=_positive(int), default=48,
                       help="shared preamble length (tokens)")
    reuse.add_argument("--suffix-tokens", type=_positive(int), default=12,
                       help="unique per-request suffix length (tokens)")
    reuse.add_argument("--min-hits", type=_positive(int), default=3)
    reuse.add_argument("--min-tokens", type=_positive(int), default=16)
    reuse.add_argument("--max-new-tokens", type=_positive(int), default=4)
    reuse.add_argument("--seed", type=int, default=0)
    reuse.add_argument("--format", default="summary", choices=["summary", "json"])

    fabric = sub.add_parser(
        "fabric-stats",
        help="run a seeded schema workload through the tiered cache fabric "
             "and print tier / placement / prefetch statistics",
    )
    fabric.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    fabric.add_argument("--size", default="tiny", choices=["tiny", "small"])
    fabric.add_argument("--schemas", type=_positive(int), default=4)
    fabric.add_argument("--module-tokens", type=_positive(int), default=48)
    fabric.add_argument("--requests", type=_positive(int), default=24)
    fabric.add_argument("--max-new-tokens", type=_positive(int), default=2)
    fabric.add_argument("--gpu-capacity-kb", type=_positive(int), default=None,
                        help="fast-tier budget (small values force "
                             "demote/drop placement decisions)")
    fabric.add_argument("--snapshot", type=Path, default=None, metavar="DIR",
                        help="v2 snapshot (from `repro warm --out`) to use "
                             "as the lazily paged-in mmap tier")
    fabric.add_argument("--seed", type=int, default=0)
    fabric.add_argument("--format", default="summary", choices=["summary", "json"])

    tokenize = sub.add_parser("tokenize", help="tokenize text with the shared BPE")
    tokenize.add_argument("text")

    ttft = sub.add_parser("ttft", help="modeled TTFT on a paper device")
    ttft.add_argument("--model", default="llama2-7b")
    ttft.add_argument("--device", default="rtx-4090")
    ttft.add_argument("--tokens", type=int, default=5000)
    ttft.add_argument("--uncached", type=int, default=100)
    ttft.add_argument("--storage", default="gpu", choices=["gpu", "cpu"])

    sub.add_parser("datasets", help="list the synthetic evaluation suite")
    sub.add_parser("devices", help="list the modeled devices")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return {
        "inspect": _cmd_inspect,
        "analyze": _cmd_analyze,
        "serve": _cmd_serve,
        "serve-live": _cmd_serve_live,
        "serve-cluster": _cmd_serve_cluster,
        "warm": _cmd_warm,
        "loadgen": _cmd_loadgen,
        "reuse-stats": _cmd_reuse_stats,
        "fabric-stats": _cmd_fabric_stats,
        "tokenize": _cmd_tokenize,
        "ttft": _cmd_ttft,
        "datasets": _cmd_datasets,
        "devices": _cmd_devices,
    }[args.command](args)


def _cmd_inspect(args) -> int:
    from repro.cache.layout import layout_schema
    from repro.llm.config import paper_config
    from repro.pml.lint import lint_schema
    from repro.pml.schema import Schema
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    schema = Schema.parse(args.schema.read_text())
    layout = layout_schema(schema, tok)
    print(f"schema {schema.name!r}: {len(layout.modules)} modules, "
          f"{layout.total_length} positions")
    print(f"{'module':<24} {'start':>6} {'end':>6} {'tokens':>6}  params")
    for name in layout.order:
        module = layout.module(name)
        params = ",".join(module.params) or "-"
        print(f"{name:<24} {module.span_start:>6} {module.span_end:>6} "
              f"{len(module.token_ids):>6}  {params}")
    diagnostics = lint_schema(schema, tok, paper_config(args.model))
    if diagnostics:
        print("\nlint:")
        for diag in diagnostics:
            print(f"  {diag}")
    else:
        print("\nlint: clean")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis.cli import run

    return run(args)


def _cmd_serve(args) -> int:
    from repro.cache.engine import PromptCache
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    make = tiny_config if args.size == "tiny" else small_config
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(args.schema.read_text())

    prompt = args.prompt
    if Path(prompt).exists():
        prompt = Path(prompt).read_text()
    result = pc.serve(prompt, max_new_tokens=args.max_new_tokens)
    print(f"cached {result.cached_tokens} / uncached {result.uncached_tokens} tokens")
    print(f"TTFT {1000 * result.ttft_s:.1f} ms "
          f"(splice {1000 * result.splice_s:.1f} + suffix {1000 * result.suffix_s:.1f})")
    print(f"output: {result.text!r}")
    if args.compare:
        baseline = pc.baseline(prompt, max_new_tokens=args.max_new_tokens)
        print(f"baseline TTFT {1000 * baseline.ttft_s:.1f} ms "
              f"({baseline.ttft_s / result.ttft_s:.1f}x slower)")
    return 0


def _install_drain_handlers(loop, stop) -> list:
    """SIGTERM/SIGINT → graceful drain: ``stop(drain=True)`` finishes
    accepted work while new submissions are refused (the load loop sees
    ``ServerClosed`` and settles what is in flight). Returns the signals
    actually hooked so the caller can unhook them."""
    import signal

    hooked = []
    stopping: list = []

    def trigger() -> None:
        if not stopping:  # second signal: drain already underway
            stopping.append(loop.create_task(stop(True)))

    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, trigger)
        except (NotImplementedError, RuntimeError):  # non-POSIX loop
            continue
        hooked.append(sig)
    return hooked


def _remove_drain_handlers(loop, hooked) -> None:
    for sig in hooked:
        loop.remove_signal_handler(sig)


def _cmd_serve_live(args) -> int:
    import asyncio

    from repro.cache.engine import PromptCache
    from repro.cache.storage import ModuleCacheStore
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.serving.traces import SchemaProfile, synthesize_trace
    from repro.server import LiveServer, ServeOptions, build_workload, run_open_loop
    from repro.server.loadgen import build_raw_prompts, run_raw_open_loop
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    make = tiny_config if args.size == "tiny" else small_config
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)
    store = ModuleCacheStore(
        gpu_capacity_bytes=(
            args.gpu_capacity_kb * 1024 if args.gpu_capacity_kb else None
        )
    )
    pc = PromptCache(
        model, tok, store=store, template=PLAIN_TEMPLATE,
        promote_on_cpu_hit=args.gpu_capacity_kb is not None,
    )
    if args.discover:
        from repro.reuse import DiscoveryConfig

        pc.attach_discovery(DiscoveryConfig(
            min_hits=args.min_hits, min_tokens=args.min_tokens
        ))

    profiles = [
        SchemaProfile(
            name=f"schema{i}",
            module_tokens=args.module_tokens,
            uncached_mean=args.uncached_tokens,
            decode_mean=args.decode_tokens,
            weight=1.0 / (i + 1),
        )
        for i in range(args.schemas)
    ]
    workload = build_workload(profiles, tok, seed=args.seed)
    workload.register(pc)
    trace = synthesize_trace(profiles, args.rate, args.duration, seed=args.seed)

    options = ServeOptions(
        max_queue_depth=args.max_queue,
        queue_delay_budget_s=args.delay_budget,
        max_batch=args.max_batch,
        batch_max_wait_s=args.batch_wait,
        mode=args.mode,
        max_inflight=args.max_inflight,
        prefill_chunk_tokens=args.prefill_chunk,
    )
    server = LiveServer(pc, options)

    async def run():
        loop = asyncio.get_running_loop()
        hooked = _install_drain_handlers(loop, server.stop)
        try:
            async with server:
                if args.discover:
                    prompts = build_raw_prompts(
                        tok, len(trace),
                        shared_tokens=args.shared_tokens,
                        suffix_tokens=args.uncached_tokens,
                        seed=args.seed,
                    )
                    return await run_raw_open_loop(
                        server, prompts,
                        interval_s=args.duration / max(1, len(trace)),
                        max_new_tokens=args.decode_tokens,
                        deadline_s=args.deadline,
                    )
                return await run_open_loop(
                    server, workload, trace, deadline_s=args.deadline
                )
        finally:
            _remove_drain_handlers(loop, hooked)

    report = asyncio.run(run())
    if args.format == "prom":
        print(server.prometheus())
        return 0
    if args.format == "json":
        import json

        print(json.dumps(server.snapshot(), indent=2, sort_keys=True))
        return 0
    gpu = pc.store.gpu.stats
    print(f"trace: {len(trace)} requests over {args.duration:.1f}s "
          f"(rate {args.rate:g}/s, seed {args.seed}, "
          f"{'continuous' if server.continuous else 'whole-request'} dispatch)")
    print(f"completed {report.completed}  rejected {report.rejected}  "
          f"expired {report.expired}  failed {report.failed}")
    print(f"TTFT p50 {1000 * report.ttft_percentile(50):.1f} ms   "
          f"p95 {1000 * report.ttft_percentile(95):.1f} ms")
    print(f"throughput {report.throughput_rps:.1f} req/s over {report.wall_s:.2f}s")
    print(f"cached token fraction {report.cached_token_fraction:.2f}  "
          f"store hit-rate {gpu.hit_rate:.2f}  evictions {gpu.evictions}")
    if args.discover and pc.discovery is not None:
        snap = pc.discovery.snapshot()
        print(f"discovery: {snap['modules']} module(s) from "
              f"{snap['promotions']} promotion(s), trie {snap['trie_nodes']} "
              f"nodes / {snap['trie_tokens']} tokens, "
              f"demotions {snap['demotions']}")
    return 0


def _cmd_serve_cluster(args) -> int:
    import asyncio
    import json

    from repro.cluster import ClusterRouter, ClusterWorker
    from repro.cluster.loadgen import run_cluster_open_loop
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.server import ServeOptions, build_workload
    from repro.serving.traces import SchemaProfile, synthesize_trace
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    make = tiny_config if args.size == "tiny" else small_config
    # One set of weights shared read-only by every in-process worker:
    # identical engines guarantee byte-identical outputs on failover.
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)

    profiles = [
        SchemaProfile(
            name=f"schema{i}",
            module_tokens=args.module_tokens,
            uncached_mean=args.uncached_tokens,
            decode_mean=args.decode_tokens,
            weight=1.0 / (i + 1),  # skewed popularity, like real schema mixes
        )
        for i in range(args.schemas)
    ]
    workload = build_workload(profiles, tok, seed=args.seed)
    trace = synthesize_trace(profiles, args.rate, args.duration, seed=args.seed)

    options = ServeOptions(
        max_queue_depth=args.max_queue,
        queue_delay_budget_s=None,
        max_batch=args.max_batch,
        batch_max_wait_s=args.batch_wait,
    )
    attach = str(args.attach_snapshot) if args.attach_snapshot else None
    fabric_options = None
    if args.fabric and args.fabric_gpu_kb:
        fabric_options = {"gpu_capacity_bytes": args.fabric_gpu_kb * 1024}
    workers = [
        ClusterWorker(
            f"w{i}", model, tok, template=PLAIN_TEMPLATE, options=options,
            attach_snapshot=attach, fabric=args.fabric,
            fabric_options=fabric_options,
        )
        for i in range(args.workers)
    ]
    router = ClusterRouter(
        workers, vnodes=args.vnodes, spill_queue_depth=args.spill_depth
    )
    for source in workload.schema_sources.values():
        router.register_schema(source)

    async def run():
        loop = asyncio.get_running_loop()
        hooked = _install_drain_handlers(loop, router.stop)
        try:
            async with router:
                result = await run_cluster_open_loop(
                    router, workload, trace, deadline_s=args.deadline
                )
                # Snapshot while the workers are still up — post-stop
                # health would read "dead" even for a clean run.
                return result, router.snapshot(), router.prometheus()
        finally:
            _remove_drain_handlers(loop, hooked)

    report, snap, prom_text = asyncio.run(run())
    if args.format == "prom":
        print(prom_text)
        return 0
    if args.format == "json":
        print(json.dumps({"report": {
            "completed": report.completed, "rejected": report.rejected,
            "expired": report.expired, "failed": report.failed,
            "failures": report.failures, "wall_s": report.wall_s,
        }, **snap}, indent=2, sort_keys=True, default=str))
        return 0
    gauges = snap["router"]["gauges"]
    print(f"cluster: {args.workers} worker(s), {len(trace)} requests over "
          f"{args.duration:.1f}s (rate {args.rate:g}/s, seed {args.seed})")
    print(f"completed {report.completed}  rejected {report.rejected}  "
          f"expired {report.expired}  failed {report.failed}")
    print(f"TTFT p50 {1000 * report.ttft_percentile(50):.1f} ms   "
          f"p95 {1000 * report.ttft_percentile(95):.1f} ms   "
          f"throughput {report.throughput_rps:.1f} req/s")
    counters = snap["router"]["counters"]
    placed = {k: v for k, v in counters.items() if k.startswith("cluster_requests_total")}
    for series in sorted(placed):
        print(f"  {series} = {placed[series]:g}")
    hits = gauges.get('cluster_peer_fetch_total{outcome="hit"}', 0.0)
    misses = gauges.get('cluster_peer_fetch_total{outcome="miss"}', 0.0)
    avoided = gauges.get("cluster_reencode_avoided_tokens_total", 0.0)
    print(f"peer fetches: {hits:g} hit / {misses:g} miss; "
          f"re-encode avoided {avoided:g} tokens")
    shares = ", ".join(f"{n}={s:.2f}" for n, s in sorted(snap["ring"].items()))
    print(f"ring ownership: {shares}")
    if args.fabric:
        fab = workers[0].store.fabric_snapshot()
        placement = fab["placement"]
        prefetch = fab["prefetch"]
        print(f"fabric (w0): {fab['catalog_entries']} cataloged, "
              f"{fab['reencodes']} re-encode(s), "
              f"placement +{placement['promotions']}/-{placement['demotions']}"
              f"/x{placement['drops']}, "
              f"prefetch planned {prefetch['planned']} "
              f"(budget-denied {prefetch['skipped_budget']})")
    elif attach is not None:
        from repro.cache.persist import resident_snapshot_bytes

        mapped = workers[0].store.mapped_bytes()
        resident = resident_snapshot_bytes(workers[0].store)
        resident_text = f"{resident / 1024:.0f}" if resident is not None else "?"
        print(f"snapshot: {mapped / 1024:.0f} KiB mapped/worker (one resident "
              f"copy shared host-wide), {resident_text} KiB paged in on w0")
    return 0


def _cmd_warm(args) -> int:
    import time

    from repro.cache.engine import PromptCache
    from repro.cache.parallel import ParallelEncoder
    from repro.cache.persist import save_store
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.server import build_workload
    from repro.server.metrics import MetricsRegistry
    from repro.serving.traces import SchemaProfile
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    sources = [path.read_text() for path in args.schemas]
    if args.synthetic:
        profiles = [
            SchemaProfile(
                name=f"schema{i}",
                module_tokens=args.module_tokens,
                uncached_mean=10,
                decode_mean=4,
                weight=1.0 / (i + 1),
            )
            for i in range(args.synthetic)
        ]
        workload = build_workload(profiles, tok, seed=args.seed)
        sources.extend(workload.schema_sources.values())
    if not sources:
        print("nothing to warm: pass schema files and/or --synthetic N",
              file=sys.stderr)
        return 2

    make = tiny_config if args.size == "tiny" else small_config
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)
    metrics = MetricsRegistry()
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE, encode_metrics=metrics)
    per_schema: list[tuple[str, float, bool]] = []
    start = time.perf_counter()
    with ParallelEncoder(model, workers=args.workers, metrics=metrics) as encoder:
        pc.set_parallel_encoder(encoder)
        for source in sources:
            schema = pc.register_schema(source)
            report = encoder.last_report
            per_schema.append((schema.name, report.wall_s, report.parallel))
    elapsed = time.perf_counter() - start

    saved = None
    if args.out is not None:
        saved = save_store(pc.store, args.out)
    if args.format == "prom":
        print(metrics.to_prometheus())
        return 0
    if args.format == "json":
        print(metrics.to_json())
        return 0
    modules = len(pc.store.gpu.entries) + len(pc.store.cpu.entries)
    mode = "parallel" if any(p for _, _, p in per_schema) else "sequential"
    print(f"warmed {len(per_schema)} schema(s), {modules} module variant(s), "
          f"{pc.store.total_bytes() / 1024:.0f} KiB in {elapsed:.2f}s "
          f"({mode}, {args.workers} worker(s))")
    for name, wall_s, _ in per_schema:
        print(f"  {name:<16} {wall_s:8.3f}s")
    if saved is not None:
        print(f"snapshot: {args.out} ({saved.summary()}, format v2 — attach "
              f"with `repro serve-cluster --attach-snapshot {args.out}`)")
    return 0


def _cmd_loadgen(args) -> int:
    import json

    import numpy as np

    from repro.serving.traces import SchemaProfile, synthesize_trace

    profiles = [
        SchemaProfile(
            name=f"schema{i}",
            module_tokens=args.module_tokens,
            uncached_mean=100,
            decode_mean=64,
            weight=1.0 / (i + 1),
        )
        for i in range(args.schemas)
    ]
    trace = synthesize_trace(profiles, args.rate, args.duration, seed=args.seed)
    if args.jsonl:
        for request in trace:
            print(json.dumps(request.__dict__))
        return 0
    if args.cluster is not None:
        from repro.cluster.ring import HashRing

        ring = HashRing([f"w{i}" for i in range(args.cluster)], vnodes=args.vnodes)
        placement: dict[str, int] = {}
        for request in trace:
            # The loadgen workload imports one "context" module per
            # schema, so the routing key matches the router's.
            home = ring.node_for(f"{request.schema}|context")
            placement[home] = placement.get(home, 0) + 1
        shares = ring.ownership_share()
        print(f"placement preview across {args.cluster} worker(s), "
              f"{args.vnodes} vnodes:")
        for name in sorted(shares):
            print(f"  {name:<6} {placement.get(name, 0):>5} requests "
                  f"(key-space share {shares[name]:.2f})")
        return 0
    print(f"{len(trace)} requests over {args.duration:g}s "
          f"(target rate {args.rate:g}/s, seed {args.seed})")
    by_schema: dict[str, int] = {}
    for request in trace:
        by_schema[request.schema] = by_schema.get(request.schema, 0) + 1
    for name in sorted(by_schema):
        print(f"  {name:<12} {by_schema[name]:>5} requests")
    if trace:
        gaps = np.diff([r.arrival_s for r in trace])
        if len(gaps):
            print(f"inter-arrival: mean {gaps.mean():.3f}s  p95 "
                  f"{float(np.percentile(gaps, 95)):.3f}s")
        cached = np.array([r.cached_tokens for r in trace])
        uncached = np.array([r.uncached_tokens for r in trace])
        print(f"tokens/request: cached {cached.mean():.0f}  "
              f"uncached {uncached.mean():.0f}")
    return 0


def _cmd_reuse_stats(args) -> int:
    import json

    from repro.cache.engine import PromptCache
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.reuse import DiscoveryConfig, analyze_batch
    from repro.server.loadgen import build_raw_prompts
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    make = tiny_config if args.size == "tiny" else small_config
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.attach_discovery(DiscoveryConfig(
        min_hits=args.min_hits, min_tokens=args.min_tokens
    ))
    prompts = build_raw_prompts(
        tok, args.requests,
        shared_tokens=args.shared_tokens,
        suffix_tokens=args.suffix_tokens,
        seed=args.seed,
    )
    dedup = analyze_batch([tok.encode(p) for p in prompts])
    cached = uncached = 0
    for text in prompts:
        result = pc.serve_text(text, max_new_tokens=args.max_new_tokens)
        cached += result.cached_tokens
        uncached += result.uncached_tokens
    snap = pc.discovery.snapshot()
    hit_rate = cached / (cached + uncached) if cached + uncached else 0.0
    if args.format == "json":
        snap["dedup_potential"] = dedup.potential
        snap["discovered_hit_rate"] = hit_rate
        snap["discovered_modules"] = [
            {"name": m.name, "start": m.start, "end": m.end}
            for m in pc.discovered_modules()
        ]
        print(json.dumps(snap, indent=2, sort_keys=True))
        return 0
    print(f"{args.requests} raw request(s), shared preamble "
          f"~{args.shared_tokens} tokens (seed {args.seed})")
    print(f"dedup potential (pre-flight): {dedup.potential:.2f} "
          f"({dedup.shared_tokens}/{dedup.total_tokens} tokens shared)")
    print(f"trie: {snap['trie_nodes']} nodes, {snap['trie_tokens']} tokens, "
          f"{snap['trie_splits']} splits, {snap['trie_evictions']} evictions")
    print(f"miner: {snap['promotions']} promotion(s), {snap['demotions']} "
          f"demotion(s), {snap['failed_promotions']} failed, "
          f"{snap['modules']} live module(s)")
    for module in pc.discovered_modules():
        print(f"  {module.name:<10} [{module.start:>4}, {module.end:>4})  "
              f"{module.end - module.start} tokens")
    print(f"discovered-module hit rate: {hit_rate:.2f} "
          f"({cached} cached / {uncached} uncached prompt tokens)")
    if snap["last_promotion_error"]:
        print(f"last promotion error: {snap['last_promotion_error']}")
    return 0


def _cmd_fabric_stats(args) -> int:
    import json

    from repro.cache.engine import PromptCache
    from repro.fabric import FabricStore
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.server import build_workload
    from repro.serving.traces import SchemaProfile
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    make = tiny_config if args.size == "tiny" else small_config
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)
    store = FabricStore(
        gpu_capacity_bytes=(
            args.gpu_capacity_kb * 1024 if args.gpu_capacity_kb else None
        ),
        snapshot_dir=str(args.snapshot) if args.snapshot else None,
    )
    pc = PromptCache(model, tok, store=store, template=PLAIN_TEMPLATE)
    profiles = [
        SchemaProfile(
            name=f"schema{i}",
            module_tokens=args.module_tokens,
            uncached_mean=10,
            decode_mean=args.max_new_tokens,
            weight=1.0 / (i + 1),
        )
        for i in range(args.schemas)
    ]
    workload = build_workload(profiles, tok, seed=args.seed)
    workload.register(pc)
    # Round-robin over the schema pool with a maintenance tick between
    # requests — the offline analogue of the serving loop's idle hook, so
    # sweeps, placement decisions, and prefetch planning all exercise.
    for i in range(args.requests):
        schema = profiles[i % len(profiles)].name
        pc.serve(
            workload.prompt_for(schema, i, 10),
            max_new_tokens=args.max_new_tokens,
        )
        store.maintenance()
    snap = store.fabric_snapshot()
    if args.format == "json":
        print(json.dumps(snap, indent=2, sort_keys=True, default=str))
        return 0
    print(f"{args.requests} request(s) over {args.schemas} schema(s) "
          f"(seed {args.seed}, fast tier "
          f"{args.gpu_capacity_kb or 'unbounded'} KiB)")
    for tier in ("gpu", "cpu", "snapshot", "peer"):
        stats = snap["tiers"][tier]
        print(f"  {tier:<9} hits {stats['hits']:>5}  misses {stats['misses']:>5}  "
              f"evictions {stats['evictions']:>3}")
    placement = snap["placement"]
    print(f"placement: {placement['promotions']} promotion(s), "
          f"{placement['demotions']} demotion(s), {placement['drops']} drop(s), "
          f"{placement['tracked_keys']} tracked key(s)")
    prefetch = snap["prefetch"]
    print(f"prefetch: {prefetch['planned']} planned, "
          f"{prefetch['skipped_budget']} budget-denied, "
          f"{prefetch['skipped_cold']} cold-skipped "
          f"({prefetch['budget_granted_bytes']:.0f} bytes granted)")
    costs = snap["costs"]
    print(f"costs: peer RTT {1000 * costs['peer_rtt_s']:.2f} ms, "
          f"re-encode {1e6 * costs['reencode_s_per_token']:.1f} us/token "
          f"({snap['reencodes']} observed), "
          f"{snap['catalog_entries']} snapshot entr(ies) cataloged")
    return 0


def _cmd_tokenize(args) -> int:
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    ids = tok.encode(args.text)
    print(f"{len(ids)} tokens:")
    print(" ".join(f"[{tok.token_of(i)}]" for i in ids))
    return 0


def _cmd_ttft(args) -> int:
    from repro.hw.device import device
    from repro.hw.latency import baseline_ttft, cached_ttft
    from repro.llm.config import paper_config

    cfg = paper_config(args.model)
    dev = device(args.device)
    base = baseline_ttft(cfg, args.tokens, dev)
    cached = cached_ttft(cfg, args.tokens, args.uncached, dev, args.storage)
    print(f"{cfg.name} @ {dev.name}, {args.tokens} tokens "
          f"({args.uncached} uncached, modules in {args.storage} memory)")
    print(f"baseline TTFT: {1000 * base.total_s:8.1f} ms")
    print(f"cached TTFT:   {1000 * cached.total_s:8.1f} ms  "
          f"(copy {1000 * cached.copy_s:.1f} ms)")
    print(f"speedup:       {base.total_s / cached.total_s:8.1f}x")
    return 0


def _cmd_datasets(args) -> int:
    from repro.datasets.suite import DATASETS

    print(f"{'dataset':<22} {'category':<16} {'metric':<8} headline")
    for name, spec in sorted(DATASETS.items(), key=lambda kv: (kv[1].category, kv[0])):
        print(f"{name:<22} {spec.category:<16} {spec.metric:<8} "
              f"{'yes' if spec.headline else ''}")
    return 0


def _cmd_devices(args) -> int:
    from repro.hw.device import DEVICES

    print(f"{'device':<12} {'kind':<5} {'matmul TFLOP/s':>14} {'mem GB/s':>9}")
    for name, dev in sorted(DEVICES.items()):
        print(f"{name:<12} {dev.kind:<5} {dev.matmul_flops / 1e12:>14.1f} "
              f"{dev.mem_bandwidth / 1e9:>9.0f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
