"""Command-line interface: ``python -m repro <command>``.

Commands
--------
inspect    parse a schema file, print its position layout and lint report
serve      serve a PML prompt against a schema with a seeded engine
tokenize   show how the shared tokenizer splits a text
ttft       modeled TTFT for a paper-shape model on a paper device
datasets   list the synthetic evaluation suite
devices    list the modeled hardware testbeds
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Prompt Cache (MLSys 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="layout + lint a schema file")
    inspect.add_argument("schema", type=Path)
    inspect.add_argument("--model", default="llama2-7b", help="paper model for budgets")

    serve = sub.add_parser("serve", help="serve a prompt against a schema")
    serve.add_argument("schema", type=Path)
    serve.add_argument("prompt", help="prompt PML text or a file path")
    serve.add_argument("--arch", default="llama", choices=["llama", "falcon", "mpt", "gpt2"])
    serve.add_argument("--size", default="small", choices=["tiny", "small"])
    serve.add_argument("--max-new-tokens", type=int, default=16)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--compare", action="store_true", help="also run the baseline")

    tokenize = sub.add_parser("tokenize", help="tokenize text with the shared BPE")
    tokenize.add_argument("text")

    ttft = sub.add_parser("ttft", help="modeled TTFT on a paper device")
    ttft.add_argument("--model", default="llama2-7b")
    ttft.add_argument("--device", default="rtx-4090")
    ttft.add_argument("--tokens", type=int, default=5000)
    ttft.add_argument("--uncached", type=int, default=100)
    ttft.add_argument("--storage", default="gpu", choices=["gpu", "cpu"])

    sub.add_parser("datasets", help="list the synthetic evaluation suite")
    sub.add_parser("devices", help="list the modeled devices")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return {
        "inspect": _cmd_inspect,
        "serve": _cmd_serve,
        "tokenize": _cmd_tokenize,
        "ttft": _cmd_ttft,
        "datasets": _cmd_datasets,
        "devices": _cmd_devices,
    }[args.command](args)


def _cmd_inspect(args) -> int:
    from repro.cache.layout import layout_schema
    from repro.llm.config import paper_config
    from repro.pml.lint import lint_schema
    from repro.pml.schema import Schema
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    schema = Schema.parse(args.schema.read_text())
    layout = layout_schema(schema, tok)
    print(f"schema {schema.name!r}: {len(layout.modules)} modules, "
          f"{layout.total_length} positions")
    print(f"{'module':<24} {'start':>6} {'end':>6} {'tokens':>6}  params")
    for name in layout.order:
        module = layout.module(name)
        params = ",".join(module.params) or "-"
        print(f"{name:<24} {module.span_start:>6} {module.span_end:>6} "
              f"{len(module.token_ids):>6}  {params}")
    diagnostics = lint_schema(schema, tok, paper_config(args.model))
    if diagnostics:
        print("\nlint:")
        for diag in diagnostics:
            print(f"  {diag}")
    else:
        print("\nlint: clean")
    return 0


def _cmd_serve(args) -> int:
    from repro.cache.engine import PromptCache
    from repro.llm import build_model, small_config, tiny_config
    from repro.pml.chat import PLAIN_TEMPLATE
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    make = tiny_config if args.size == "tiny" else small_config
    model = build_model(make(args.arch, vocab_size=tok.vocab_size), seed=args.seed)
    pc = PromptCache(model, tok, template=PLAIN_TEMPLATE)
    pc.register_schema(args.schema.read_text())

    prompt = args.prompt
    if Path(prompt).exists():
        prompt = Path(prompt).read_text()
    result = pc.serve(prompt, max_new_tokens=args.max_new_tokens)
    print(f"cached {result.cached_tokens} / uncached {result.uncached_tokens} tokens")
    print(f"TTFT {1000 * result.ttft_s:.1f} ms "
          f"(splice {1000 * result.splice_s:.1f} + suffix {1000 * result.suffix_s:.1f})")
    print(f"output: {result.text!r}")
    if args.compare:
        baseline = pc.baseline(prompt, max_new_tokens=args.max_new_tokens)
        print(f"baseline TTFT {1000 * baseline.ttft_s:.1f} ms "
              f"({baseline.ttft_s / result.ttft_s:.1f}x slower)")
    return 0


def _cmd_tokenize(args) -> int:
    from repro.tokenizer import default_tokenizer

    tok = default_tokenizer()
    ids = tok.encode(args.text)
    print(f"{len(ids)} tokens:")
    print(" ".join(f"[{tok.token_of(i)}]" for i in ids))
    return 0


def _cmd_ttft(args) -> int:
    from repro.hw.device import device
    from repro.hw.latency import baseline_ttft, cached_ttft
    from repro.llm.config import paper_config

    cfg = paper_config(args.model)
    dev = device(args.device)
    base = baseline_ttft(cfg, args.tokens, dev)
    cached = cached_ttft(cfg, args.tokens, args.uncached, dev, args.storage)
    print(f"{cfg.name} @ {dev.name}, {args.tokens} tokens "
          f"({args.uncached} uncached, modules in {args.storage} memory)")
    print(f"baseline TTFT: {1000 * base.total_s:8.1f} ms")
    print(f"cached TTFT:   {1000 * cached.total_s:8.1f} ms  "
          f"(copy {1000 * cached.copy_s:.1f} ms)")
    print(f"speedup:       {base.total_s / cached.total_s:8.1f}x")
    return 0


def _cmd_datasets(args) -> int:
    from repro.datasets.suite import DATASETS

    print(f"{'dataset':<22} {'category':<16} {'metric':<8} headline")
    for name, spec in sorted(DATASETS.items(), key=lambda kv: (kv[1].category, kv[0])):
        print(f"{name:<22} {spec.category:<16} {spec.metric:<8} "
              f"{'yes' if spec.headline else ''}")
    return 0


def _cmd_devices(args) -> int:
    from repro.hw.device import DEVICES

    print(f"{'device':<12} {'kind':<5} {'matmul TFLOP/s':>14} {'mem GB/s':>9}")
    for name, dev in sorted(DEVICES.items()):
        print(f"{name:<12} {dev.kind:<5} {dev.matmul_flops / 1e12:>14.1f} "
              f"{dev.mem_bandwidth / 1e9:>9.0f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
