"""Device specifications for the paper's evaluation testbeds.

The paper measures five platforms (§5.1): NVIDIA RTX 4090, A40, A100 GPUs
and Intel i9-13900K (DDR5-5600), AMD Ryzen 9 7950X (DDR4-3600) CPUs. None
are available offline, so each is described by a small roofline-style spec —
achievable matmul throughput, memory bandwidth, interconnect copy bandwidth,
and per-kernel overhead — from which :mod:`repro.hw.latency` derives TTFT.

Numbers are *achievable* (not datasheet-peak) rates, calibrated so the
KV-cache baseline reproduces the paper's anchor points (e.g. ~900 ms TTFT
for Llama2-7B at 3K tokens on the RTX 4090, §5.4). The large/small
efficiency split reflects that short-suffix prefills underutilize wide
accelerators far more than full-prompt prefills do.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """Roofline parameters of one inference platform."""

    name: str
    kind: str  # "gpu" | "cpu"
    # Achievable matmul FLOP/s at the device's native inference dtype
    # (fp16 on GPU, fp32 on CPU) for large, well-shaped GEMMs.
    matmul_flops: float
    # Fraction of `matmul_flops` achieved by small (short-suffix) GEMMs.
    small_gemm_efficiency: float
    # Device-local memory bandwidth (HBM for GPUs, DRAM for CPUs), B/s.
    mem_bandwidth: float
    # Effective bandwidth of copying cached KV into place, B/s:
    # device-to-device for GPU-resident modules, host-to-host for CPUs.
    local_copy_bandwidth: float
    # Effective host-to-device bandwidth for CPU-resident modules read by a
    # GPU (PCIe with per-layer transfer/synchronization overhead). None for
    # CPUs, where "host" and "device" coincide.
    h2d_bandwidth: float | None
    # Fixed per-layer overhead (kernel launches, framework dispatch).
    layer_overhead_s: float
    # Fixed per-request overhead (tokenization handoff, allocator, sampler).
    base_overhead_s: float
    # Bytes per element of the native inference dtype.
    dtype_bytes: int
    # How many times the (heads, n, n) attention-score matrix crosses
    # memory per layer (mask, bias, softmax passes). Fused GPU kernels
    # ~2; unfused eager frameworks 8+; pure NumPy ~12.
    attention_pass_factor: float = 2.0
    # Transcendental throughput (exp evaluations/s) for the softmax. GPUs
    # and vectorized parallel CPU kernels are effectively bandwidth-bound
    # here; single-threaded NumPy is not (~2e8/s) — the calibration bench
    # measures it for the host.
    elementwise_throughput: float = 1e12

    def achieved_flops(self, n_new_tokens: int, threshold: int = 512) -> float:
        """Throughput for a GEMM batch of ``n_new_tokens`` rows.

        Below ``threshold`` rows, utilization degrades linearly toward
        ``small_gemm_efficiency`` — the roofline's bandwidth-bound knee.
        """
        if n_new_tokens >= threshold:
            return self.matmul_flops
        frac = n_new_tokens / threshold
        eff = self.small_gemm_efficiency + (1.0 - self.small_gemm_efficiency) * frac
        return self.matmul_flops * eff


RTX_4090 = DeviceSpec(
    name="rtx-4090", kind="gpu",
    matmul_flops=50e12,  # ~30% of 165 TFLOPS fp16 tensor peak in HF eager mode
    small_gemm_efficiency=0.12,
    mem_bandwidth=1008e9,
    local_copy_bandwidth=350e9,  # d2d copy reads+writes HBM
    h2d_bandwidth=7e9,  # PCIe 4.0 with per-layer pageable-copy overhead
    layer_overhead_s=1.0e-3,
    base_overhead_s=5e-3,
    dtype_bytes=2,
)

A40 = DeviceSpec(
    name="a40", kind="gpu",
    matmul_flops=45e12,  # ~30% of 149.7 TFLOPS fp16 tensor peak
    small_gemm_efficiency=0.12,
    mem_bandwidth=696e9,
    local_copy_bandwidth=240e9,
    h2d_bandwidth=7e9,
    layer_overhead_s=1.2e-3,
    base_overhead_s=5e-3,
    dtype_bytes=2,
)

A100 = DeviceSpec(
    name="a100", kind="gpu",
    matmul_flops=95e12,  # ~30% of 312 TFLOPS fp16 tensor peak
    small_gemm_efficiency=0.10,
    mem_bandwidth=1555e9,
    local_copy_bandwidth=540e9,
    h2d_bandwidth=9e9,
    layer_overhead_s=1.0e-3,
    base_overhead_s=5e-3,
    dtype_bytes=2,
)

INTEL_I9_13900K = DeviceSpec(
    name="i9-13900k", kind="cpu",
    matmul_flops=1.1e12,  # multi-threaded fp32 GEMM, MKL-class
    small_gemm_efficiency=0.8,  # CPUs keep utilization on narrow GEMMs
    mem_bandwidth=70e9,  # dual-channel DDR5-5600, achievable
    local_copy_bandwidth=21e9,  # h2h memcpy (matches paper §5.4: 3.79 ms / 80 MB)
    h2d_bandwidth=None,
    layer_overhead_s=0.2e-3,
    base_overhead_s=2e-3,
    dtype_bytes=4,
    attention_pass_factor=8.0,  # eager PyTorch CPU attention is unfused
)

AMD_R9_7950X = DeviceSpec(
    name="r9-7950x", kind="cpu",
    matmul_flops=0.9e12,
    # DDR4-3600 starves short-suffix GEMMs (low arithmetic intensity per
    # token) far more than DDR5 does — the paper's explanation for why the
    # AMD testbed sees ~20x where the Intel one sees ~70x (§5.2.2).
    small_gemm_efficiency=0.15,
    mem_bandwidth=45e9,  # dual-channel DDR4-3600, achievable
    local_copy_bandwidth=10e9,
    h2d_bandwidth=None,
    layer_overhead_s=0.2e-3,
    base_overhead_s=2e-3,
    dtype_bytes=4,
    attention_pass_factor=8.0,
)

DEVICES: dict[str, DeviceSpec] = {
    spec.name: spec
    for spec in (RTX_4090, A40, A100, INTEL_I9_13900K, AMD_R9_7950X)
}

GPU_DEVICES = [RTX_4090, A40, A100]
CPU_DEVICES = [INTEL_I9_13900K, AMD_R9_7950X]


def device(name: str) -> DeviceSpec:
    """Look up a device by name (e.g. ``"rtx-4090"``)."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}") from None
