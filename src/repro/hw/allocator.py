"""Byte-exact accounting of cached attention states (paper §5.5, Table 2).

The cache storage tiers use this to enforce capacity limits, and the
Table 2 bench uses it to report MB per cached token for each paper-shape
model. Accounting matches the paper's: K and V at fp16 across all layers,
full multi-head KV width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.config import ModelConfig


class CapacityError(MemoryError):
    """Raised when an allocation would exceed the tier's capacity."""


@dataclass
class MemoryAccountant:
    """Tracks live allocations against an optional byte budget."""

    capacity_bytes: int | None = None
    _allocations: dict[str, int] = field(default_factory=dict)

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int | None:
        if self.capacity_bytes is None:
            return None
        return self.capacity_bytes - self.used_bytes

    def would_fit(self, nbytes: int) -> bool:
        return self.capacity_bytes is None or self.used_bytes + nbytes <= self.capacity_bytes

    def allocate(self, tag: str, nbytes: int) -> None:
        if tag in self._allocations:
            raise ValueError(f"allocation tag {tag!r} already live")
        if not self.would_fit(nbytes):
            raise CapacityError(
                f"allocating {nbytes} B for {tag!r} exceeds capacity "
                f"{self.capacity_bytes} B (used {self.used_bytes} B)"
            )
        self._allocations[tag] = nbytes

    def release(self, tag: str) -> int:
        try:
            return self._allocations.pop(tag)
        except KeyError:
            raise KeyError(f"no live allocation tagged {tag!r}") from None

    def live_tags(self) -> list[str]:
        return list(self._allocations)


def module_bytes(config: ModelConfig, n_tokens: int, bytes_per_element: int = 2) -> int:
    """Bytes to cache one ``n_tokens`` prompt module for ``config``."""
    return n_tokens * config.kv_bytes_per_token(bytes_per_element)


def mb_per_token(config: ModelConfig, bytes_per_element: int = 2) -> float:
    """Table 2's headline number. The paper's figures divide by 2^20
    (0.50 for Llama2-7B = 524288 / 1048576), i.e. MiB labelled "MB"."""
    return config.kv_bytes_per_token(bytes_per_element) / (1024 * 1024)
