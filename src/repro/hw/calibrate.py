"""Calibrate a DeviceSpec for the host machine from micro-benchmarks.

The paper-device specs in :mod:`repro.hw.device` are set from published
hardware characteristics plus the paper's anchor measurements. For the
machine actually running this code we can do better: measure its GEMM
throughput and copy bandwidth directly, build a ``DeviceSpec``, and check
that the same roofline formulas that generate Figures 3–5 predict the
NumPy engine's real prefill latency. The calibration benchmark reports
predicted-vs-measured TTFT across sequence lengths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hw.device import DeviceSpec


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_matmul_flops(size: int = 768, repeats: int = 3) -> float:
    """Achieved fp32 GEMM FLOP/s for a large, square matmul."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(size, size)).astype(np.float32)
    b = rng.normal(size=(size, size)).astype(np.float32)
    a @ b  # warm the BLAS threads
    seconds = _best_of(lambda: a @ b, repeats)
    return 2.0 * size**3 / seconds


def measure_small_gemm_flops(rows: int = 16, width: int = 768, repeats: int = 5) -> float:
    """Achieved FLOP/s for a thin (suffix-like) GEMM of ``rows`` tokens."""
    rng = np.random.default_rng(0)
    a = rng.normal(size=(rows, width)).astype(np.float32)
    b = rng.normal(size=(width, width)).astype(np.float32)
    a @ b
    seconds = _best_of(lambda: a @ b, repeats)
    return 2.0 * rows * width * width / seconds


def measure_exp_throughput(n: int = 1 << 22, repeats: int = 3) -> float:
    """np.exp evaluations per second (single-threaded in NumPy)."""
    x = np.random.default_rng(0).normal(size=n).astype(np.float32)
    np.exp(x)
    seconds = _best_of(lambda: np.exp(x), repeats)
    return n / seconds


def measure_copy_bandwidth(nbytes: int = 1 << 26, repeats: int = 3) -> float:
    """Host memcpy bandwidth (bytes/s) for a large contiguous copy."""
    src = np.empty(nbytes, dtype=np.uint8)
    dst = np.empty(nbytes, dtype=np.uint8)
    np.copyto(dst, src)
    seconds = _best_of(lambda: np.copyto(dst, src), repeats)
    return nbytes / seconds


def measure_mmap_pagein_bandwidth(nbytes: int = 1 << 24, repeats: int = 3) -> float:
    """Bytes/s to fault a memory-mapped ``.npy`` file into host memory.

    This is the cost a fabric snapshot page-in pays: ``np.load(mmap_mode="r")``
    followed by a full materializing read. The page cache is warm after the
    first repeat, so ``_best_of`` reports the steady-state (cached) rate —
    the same regime the serving loop sees for a recently written snapshot.
    """
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory(prefix="repro-pagein-") as tmp:
        path = Path(tmp) / "probe.npy"
        np.save(path, np.empty(nbytes, dtype=np.uint8))

        def pagein():
            mapped = np.load(path, mmap_mode="r")
            np.asarray(mapped).sum()  # touch every page

        seconds = _best_of(pagein, repeats)
    return nbytes / seconds


def calibrate_routes(
    *, nbytes: int = 1 << 24, repeats: int = 3, apply: bool = False
) -> dict[str, float]:
    """Measure the host-side fabric routes; optionally install the results.

    Returns ``{route value: bytes/s}`` for the routes this host can measure
    directly (``h2h`` memcpy and ``mmap`` page-in). ``PEER_NET`` is left to
    live RTT observation by the fabric cost model — a loopback probe would
    only measure the kernel, not the wire. With ``apply=True`` the measured
    bandwidths replace the defaults in ``hw.transfer.ROUTE_BANDWIDTH``.
    """
    from repro.hw.transfer import Route, set_route_bandwidth

    measured = {
        Route.HOST_TO_HOST: measure_copy_bandwidth(nbytes, repeats),
        Route.MMAP_PAGEIN: measure_mmap_pagein_bandwidth(nbytes, repeats),
    }
    if apply:
        for route, bandwidth in measured.items():
            set_route_bandwidth(route, bandwidth)
    return {route.value: bandwidth for route, bandwidth in measured.items()}


@dataclass
class HostCalibration:
    spec: DeviceSpec
    matmul_flops: float
    small_gemm_flops: float
    copy_bandwidth: float


def calibrate_host(
    *,
    gemm_size: int = 768,
    small_rows: int = 16,
    overhead_per_layer_s: float = 2e-4,
) -> HostCalibration:
    """Build a ``DeviceSpec`` describing this machine.

    ``overhead_per_layer_s`` absorbs the NumPy/Python dispatch cost per
    transformer layer, which dominates tiny-model latency; the default is
    a conservative interpreter-loop estimate.
    """
    matmul = measure_matmul_flops(gemm_size)
    small = measure_small_gemm_flops(small_rows, gemm_size)
    copy = measure_copy_bandwidth()
    exp_rate = measure_exp_throughput()
    spec = DeviceSpec(
        name="this-host",
        kind="cpu",
        matmul_flops=matmul,
        small_gemm_efficiency=min(small / matmul, 1.0),
        mem_bandwidth=copy * 2,  # copy touches source + destination
        local_copy_bandwidth=copy,
        h2d_bandwidth=None,
        layer_overhead_s=overhead_per_layer_s,
        base_overhead_s=1e-3,
        dtype_bytes=4,
        # Pure-NumPy attention re-reads the (heads, n, n) score matrix for
        # the mask, the where, and the 4 softmax passes, in and out: ~12
        # full crossings per layer.
        attention_pass_factor=12.0,
        # Softmax exp/divide run single-threaded; roughly 3 transcendental-
        # grade passes over the score matrix per layer.
        elementwise_throughput=exp_rate / 3.0,
    )
    return HostCalibration(
        spec=spec, matmul_flops=matmul, small_gemm_flops=small, copy_bandwidth=copy
    )


def predicted_vs_measured(
    model, lengths: list[int], calibration: HostCalibration
) -> list[tuple[int, float, float]]:
    """(tokens, predicted_s, measured_s) for real engine prefills."""
    from repro.hw.latency import baseline_ttft

    rng = np.random.default_rng(0)
    rows = []
    for n in lengths:
        ids = rng.integers(4, model.config.vocab_size, size=n)
        # Warm-up then best-of-2 measurement.
        cache = model.new_cache(capacity=n)
        model.forward(ids, np.arange(n), cache)

        def run():
            fresh = model.new_cache(capacity=n)
            model.forward(ids, np.arange(n), fresh)

        measured = _best_of(run, repeats=2)
        predicted = baseline_ttft(model.config, n, calibration.spec).total_s
        rows.append((n, predicted, measured))
    return rows
