"""Memory-copy routes between host and device (paper §5.4).

The paper quotes, for the attention states of 5K tokens: host-to-host
3.79 ms, host-to-device 5.34 ms, device-to-device 0.23 ms. Those times
correspond to per-layer payloads (~80 MB for Llama2-7B at fp16); this module
reproduces them and generalizes to arbitrary payloads and routes.
"""

from __future__ import annotations

from enum import Enum

from repro.hw.device import DeviceSpec
from repro.llm.config import ModelConfig


class Route(str, Enum):
    """A memcpy path in the storage hierarchy.

    The first three are the paper's two-tier routes; ``MMAP_PAGEIN`` and
    ``PEER_NET`` extend the table to the snapshot and cluster tiers so the
    fabric cost models and the TTFT model share one bandwidth table.
    """

    HOST_TO_HOST = "h2h"
    HOST_TO_DEVICE = "h2d"
    DEVICE_TO_DEVICE = "d2d"
    MMAP_PAGEIN = "mmap"
    PEER_NET = "peer"


# Effective copy bandwidths (B/s). The first three match the paper's measured
# §5.4 numbers on the RTX 4090 + i9-13900K testbed; MMAP_PAGEIN assumes a
# warm-ish NVMe page cache and PEER_NET a 10 GbE fabric. Both are defaults —
# ``hw.calibrate.calibrate_routes`` replaces them with measured values.
ROUTE_BANDWIDTH: dict[Route, float] = {
    Route.HOST_TO_HOST: 21e9,
    Route.HOST_TO_DEVICE: 15e9,
    Route.DEVICE_TO_DEVICE: 350e9,
    Route.MMAP_PAGEIN: 6e9,
    Route.PEER_NET: 1.25e9,
}


def route_bandwidth(route: Route) -> float:
    """Current effective bandwidth (B/s) for ``route``."""
    return ROUTE_BANDWIDTH[route]


def set_route_bandwidth(route: Route, bytes_per_s: float) -> None:
    """Override a route's bandwidth with a calibrated measurement."""
    if bytes_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_s!r}")
    ROUTE_BANDWIDTH[route] = float(bytes_per_s)


def copy_latency(payload_bytes: int, route: Route) -> float:
    """Seconds to move ``payload_bytes`` along ``route``."""
    return payload_bytes / ROUTE_BANDWIDTH[route]


def layer_kv_payload_bytes(
    config: ModelConfig, n_tokens: int, bytes_per_element: int = 2
) -> int:
    """One layer's K+V bytes for ``n_tokens`` (the unit the paper timed)."""
    return 2 * config.kv_dim * n_tokens * bytes_per_element


def module_transfer_route(dev: DeviceSpec, storage: str) -> Route:
    """Which route a cached module travels when spliced into a prompt."""
    if dev.kind == "cpu":
        return Route.HOST_TO_HOST
    return Route.DEVICE_TO_DEVICE if storage == "gpu" else Route.HOST_TO_DEVICE
