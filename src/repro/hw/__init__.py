"""Hardware substrate: analytical models of the paper's five testbeds.

Real RTX 4090/A40/A100 GPUs and i9/Ryzen CPUs are not available offline;
this package substitutes roofline-style device models driven by the exact
FLOP/byte counts from :mod:`repro.llm.flops` (see DESIGN.md §2 for the
substitution rationale). Measured NumPy wall-clock numbers from the engine
provide the second, fully-empirical datapoint in the benchmarks.
"""

from repro.hw.device import (
    A40,
    A100,
    AMD_R9_7950X,
    CPU_DEVICES,
    DEVICES,
    GPU_DEVICES,
    INTEL_I9_13900K,
    RTX_4090,
    DeviceSpec,
    device,
)
from repro.hw.latency import (
    TTFTBreakdown,
    baseline_ttft,
    cached_ttft,
    decode_step_latency,
    module_copy_latency,
    speedup,
)
from repro.hw.transfer import (
    ROUTE_BANDWIDTH,
    Route,
    copy_latency,
    layer_kv_payload_bytes,
    module_transfer_route,
)
from repro.hw.allocator import (
    CapacityError,
    MemoryAccountant,
    mb_per_token,
    module_bytes,
)

__all__ = [
    "DeviceSpec", "device", "DEVICES", "GPU_DEVICES", "CPU_DEVICES",
    "RTX_4090", "A40", "A100", "INTEL_I9_13900K", "AMD_R9_7950X",
    "TTFTBreakdown", "baseline_ttft", "cached_ttft", "decode_step_latency",
    "module_copy_latency", "speedup",
    "Route", "ROUTE_BANDWIDTH", "copy_latency", "layer_kv_payload_bytes",
    "module_transfer_route",
    "CapacityError", "MemoryAccountant", "mb_per_token", "module_bytes",
]
