"""Analytical TTFT / decode latency model.

Each stage is a roofline: ``time = max(FLOPs / throughput, bytes / bandwidth)``
plus fixed per-layer and per-request overheads. The model exposes exactly the
three quantities the paper's figures compare:

- :func:`baseline_ttft` — KV-cache prefill of the whole prompt (quadratic in
  prompt length; Figures 3–5's baseline bars/curves).
- :func:`cached_ttft` — Prompt Cache: copy cached module KV into place
  (linear in cached length) plus a prefill of only the uncached suffix
  (paper §3.4).
- :func:`decode_step_latency` — per-token decode cost, identical under both
  systems (the paper's TTST, §5.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceSpec
from repro.llm import flops as F
from repro.llm.config import ModelConfig

MODULE_STORAGE_KINDS = ("gpu", "cpu")


@dataclass(frozen=True)
class TTFTBreakdown:
    """Where a first token's latency went; ``total_s`` is what figures plot."""

    compute_s: float
    memory_s: float
    copy_s: float
    overhead_s: float

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.copy_s + self.overhead_s


def _overhead(config: ModelConfig, dev: DeviceSpec) -> float:
    return dev.base_overhead_s + config.n_layers * dev.layer_overhead_s


def _prefill_stage(
    config: ModelConfig, dev: DeviceSpec, n_new: int, n_total: int
) -> tuple[float, float]:
    """(compute_s, memory_s) of prefilling ``n_new`` tokens over ``n_total``
    context. Memory traffic = weights once + activations + new KV writes."""
    flops = config.n_layers * F.layer_flops(config, n_new, n_total) + F.lm_head_flops(config)
    compute_s = flops / dev.achieved_flops(n_new)
    bytes_moved = (
        F.weight_bytes(config, dev.dtype_bytes)
        + F.prefill_activation_bytes(
            config, n_new, dev.dtype_bytes,
            n_total=n_total, attention_passes=dev.attention_pass_factor,
        )
        + F.kv_bytes(config, n_new, dev.dtype_bytes)
    )
    memory_s = bytes_moved / dev.mem_bandwidth
    # Softmax transcendentals are a serial phase after the GEMMs; they only
    # matter on devices with low elementwise throughput (pure NumPy hosts).
    exp_elements = config.n_layers * config.n_heads * n_new * n_total
    elementwise_s = exp_elements / dev.elementwise_throughput
    return compute_s + elementwise_s, memory_s


def baseline_ttft(config: ModelConfig, n_tokens: int, dev: DeviceSpec) -> TTFTBreakdown:
    """KV-cache baseline: full prefill of an ``n_tokens`` prompt."""
    compute_s, memory_s = _prefill_stage(config, dev, n_tokens, n_tokens)
    return TTFTBreakdown(
        compute_s=compute_s,
        memory_s=memory_s,
        copy_s=0.0,
        overhead_s=_overhead(config, dev),
    )


def module_copy_latency(
    config: ModelConfig,
    n_cached_tokens: int,
    dev: DeviceSpec,
    storage: str,
) -> float:
    """Time to splice ``n_cached_tokens`` of module KV into the prompt cache.

    ``storage`` is where the modules live: ``"gpu"`` (device-local copy) or
    ``"cpu"`` (host memory; host-to-device over PCIe for GPUs, host-to-host
    memcpy for CPU inference).
    """
    if storage not in MODULE_STORAGE_KINDS:
        raise ValueError(f"storage must be one of {MODULE_STORAGE_KINDS}")
    payload = F.kv_bytes(config, n_cached_tokens, dev.dtype_bytes)
    if dev.kind == "cpu" or storage == "gpu":
        return payload / dev.local_copy_bandwidth
    if dev.h2d_bandwidth is None:
        raise ValueError(f"device {dev.name} has no host-to-device path")
    return payload / dev.h2d_bandwidth


def cached_ttft(
    config: ModelConfig,
    n_total: int,
    n_uncached: int,
    dev: DeviceSpec,
    storage: str = "gpu",
) -> TTFTBreakdown:
    """Prompt Cache TTFT: module KV copy + suffix-only prefill.

    ``n_total`` is the full prompt length in the schema layout; the cached
    portion is ``n_total - n_uncached``.
    """
    if n_uncached > n_total:
        raise ValueError("uncached tokens cannot exceed the total prompt length")
    n_cached = n_total - n_uncached
    copy_s = module_copy_latency(config, n_cached, dev, storage)
    # The suffix still attends to the full context; at least one token (the
    # position producing the first logits) always runs through the model.
    compute_s, memory_s = _prefill_stage(config, dev, max(n_uncached, 1), n_total)
    return TTFTBreakdown(
        compute_s=compute_s,
        memory_s=memory_s,
        copy_s=copy_s,
        overhead_s=_overhead(config, dev),
    )


def decode_step_latency(config: ModelConfig, context_len: int, dev: DeviceSpec) -> float:
    """One autoregressive step over ``context_len`` cached tokens (TTST).

    Decode is bandwidth-bound on every platform: all weights and the whole
    KV cache are read to produce one token.
    """
    flops = F.decode_step_flops(config, context_len)
    compute_s = flops / dev.achieved_flops(1)
    bytes_moved = F.weight_bytes(config, dev.dtype_bytes) + F.kv_bytes(
        config, context_len, dev.dtype_bytes
    )
    memory_s = bytes_moved / dev.mem_bandwidth
    return max(compute_s, memory_s) + _overhead(config, dev)


def speedup(
    config: ModelConfig,
    n_total: int,
    n_uncached: int,
    dev: DeviceSpec,
    storage: str = "gpu",
) -> float:
    """Baseline TTFT over cached TTFT — the factor the paper headlines."""
    return (
        baseline_ttft(config, n_total, dev).total_s
        / cached_ttft(config, n_total, n_uncached, dev, storage).total_s
    )
