"""One cluster worker: a serving engine plus its distribution-plane ends.

A :class:`ClusterWorker` owns a private :class:`PromptCache` (own
module store, own metrics registry) wrapped in a
:class:`~repro.server.runtime.LiveServer`, an exporter serving its
encoded modules to peers, and a fetcher pulling missing modules *from*
peers. The glue is the store's get-or-fetch hook: when the engine misses
a module in the local store, the hook asks the key's likely holders for
the encoded states before falling back to a local re-encode. A
successful peer fetch books the avoided prefill in
``cluster_reencode_avoided_tokens_total`` — the cluster's headline win.

Workers serve through the iteration-level scheduler (the server's
"auto" mode resolves to continuous batching on a real engine): each
worker interleaves prefill chunks and batched decode steps across its
in-flight requests, so a peer-fetch stall on one request's modules
never blocks decode progress for the others already running.

Threading shape: the engine runs scheduler iterations (or legacy
batches) on the server's executor thread, so the miss hook fires *off*
the event loop; it bridges back with ``run_coroutine_threadsafe`` and
blocks (bounded) on the transfer. The loop stays free to run the fetch,
the exporter, and heartbeats. If the engine ever runs inline on the
loop (``inline_execution=True``), the hook detects it and declines
rather than deadlock.

Workers share the (read-only) model weights in-process but never share
stores — the point is to exercise the cross-store distribution plane.
"""

from __future__ import annotations

import asyncio
import threading

from repro.analysis.locks import assert_unheld
from repro.cache.engine import PromptCache
from repro.cache.storage import CacheKey, ModuleCacheStore
from repro.hw.allocator import CapacityError
from repro.cluster.exporter import CacheExporter
from repro.cluster.fetcher import FetchFailed, PeerFetcher
from repro.cluster.health import DEAD, DRAINING, UP
from repro.server.metrics import MetricsRegistry
from repro.server.runtime import LiveServer, ServeOptions


class ClusterWorker:
    """A named serving worker participating in the module-KV plane."""

    def __init__(
        self,
        name: str,
        model,
        tokenizer,
        template=None,
        options: ServeOptions | None = None,
        store: ModuleCacheStore | None = None,
        kv_codec=None,
        exporter_host: str = "127.0.0.1",
        exporter_port: int = 0,
        fetcher: PeerFetcher | None = None,
        max_fetch_peers: int = 3,
        fetch_budget_s: float = 10.0,
        heartbeat_interval_s: float = 0.05,
        attach_snapshot: str | None = None,
        discovery=None,
        fabric: bool = False,
        fabric_options: dict | None = None,
        residency_tag_limit: int = 256,
    ) -> None:
        self.name = name
        self.metrics = MetricsRegistry()
        # Attach mode: map a shared read-only snapshot instead of starting
        # with an empty private store — N same-host workers attached to
        # one snapshot page against a single resident copy of the module
        # KV. The background digest sweep handle is kept so tests (and
        # shutdown paths) can join it.
        self.snapshot_sweep = None
        if fabric and store is None:
            # Fabric mode: the five-tier FabricStore replaces the plain
            # two-tier store *and* subsumes the snapshot (as a lazy tier,
            # cataloged up front and paged in per entry on demand rather
            # than attached wholesale).
            from repro.fabric import FabricStore

            store = FabricStore(
                snapshot_dir=attach_snapshot, **(fabric_options or {})
            )
        elif attach_snapshot is not None and store is None:
            from repro.cache.persist import attach_snapshot as _attach

            attached = _attach(attach_snapshot, metrics=self.metrics)
            store = attached.store
            self.snapshot_sweep = attached.sweep
        self.store = store or ModuleCacheStore()
        self.residency_tag_limit = residency_tag_limit
        self.pc = PromptCache(
            model, tokenizer, store=self.store, template=template, kv_codec=kv_codec,
            encode_metrics=self.metrics,
        )
        # Reuse discovery is per-worker: each miner sees only the raw
        # traffic routed here, which is why the router's raw placement is
        # prefix-affine — repeats must land together to promote.
        if discovery is not None:
            config = None if discovery is True else discovery
            self.pc.attach_discovery(config)
        self.server = LiveServer(self.pc, options, metrics=self.metrics)
        self.exporter = CacheExporter(
            self.store,
            metrics=self.metrics,
            host=exporter_host,
            port=exporter_port,
            health_snapshot=self._health_snapshot,
            stats_snapshot=lambda: self.server.snapshot(),
        )
        self.fetcher = fetcher or PeerFetcher(metrics=self.metrics)
        self.max_fetch_peers = max_fetch_peers
        self.fetch_budget_s = fetch_budget_s
        self.heartbeat_interval_s = heartbeat_interval_s
        # Installed by the router: key -> [(peer name, (host, port))] in
        # preference order, self excluded. None = no distribution plane.
        self.peer_resolver = None
        # Called every heartbeat with (name, state, queue_depth).
        self.heartbeat_sink = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: int | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._killed = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def state(self) -> str:
        if self._killed or not self.server._running and self._loop is not None:
            return DEAD
        if self.server.draining:
            return DRAINING
        return UP

    async def start(self) -> "ClusterWorker":
        self._loop = asyncio.get_running_loop()
        self._loop_thread = threading.get_ident()
        await self.exporter.start()
        await self.server.start()
        self.store.set_miss_fetcher(self._miss_fetch)
        if hasattr(self.store, "peer_prefetch"):
            # Fabric stores issue predictive peer pulls through the same
            # plane the miss hook uses, but fire-and-forget on the loop.
            self.store.peer_prefetch = self._peer_prefetch
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        self._beat()
        return self

    async def stop(self, drain: bool = True) -> None:
        """Graceful stop: drain accepted work (exporter keeps serving the
        KV plane throughout, so rebalanced keys can still warm up from
        us), then leave."""
        self._beat(state=DRAINING if drain else DEAD)
        await self.server.stop(drain=drain)
        await self._teardown()

    async def kill(self) -> None:
        """Abrupt death (test harness / induced failure): queued requests
        fail immediately with ``ServerClosed`` — their routers fail them
        over — and the exporter vanishes mid-conversation."""
        self._killed = True
        await self.exporter.stop()
        await self.server.stop(drain=False)
        await self._teardown()

    async def _teardown(self) -> None:
        self._killed = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            try:
                await self._heartbeat_task
            except asyncio.CancelledError:
                pass  # expected: we cancelled it
            self._heartbeat_task = None
        self.store.set_miss_fetcher(None)
        await self.exporter.stop()
        self._beat(state=DEAD)

    # -- schemas -----------------------------------------------------------------

    def register_schema(self, source, eager: bool = False):
        """Register a schema on this worker. Default **lazy**: in a
        cluster, modules are encoded where their requests land (or
        peer-fetched), not eagerly on every worker — eager-everywhere
        would duplicate the very prefill work the plane exists to share.
        """
        return self.pc.register_schema(source, eager=eager)

    # -- heartbeats ---------------------------------------------------------------

    def _health_snapshot(self) -> dict:
        return {
            "state": self.state,
            "queue_depth": self.server.queue_depth,
            # Scheduler occupancy: how many sequences this worker is
            # actively decoding — routers can weigh it alongside queue
            # depth when placing latency-sensitive traffic.
            "inflight": self.server.inflight,
            "continuous": self.server.continuous,
            "resident_modules": len(self._residency_tags()),
        }

    def _residency_tags(self) -> list[str]:
        """Module tags this worker can serve without re-encoding, for the
        heartbeat's residency advertisement. Fabric stores include their
        snapshot catalog (mapped counts as near-resident); plain stores
        advertise their DRAM tiers."""
        tags_fn = getattr(self.store, "residency_tags", None)
        if tags_fn is not None:
            return tags_fn(limit=self.residency_tag_limit)
        tags: list[str] = []
        for tier in (self.store.gpu, self.store.cpu):
            for key in tier.keys():
                tags.append(key.tag())
                if len(tags) >= self.residency_tag_limit:
                    return tags
        return tags

    def _beat(self, state: str | None = None) -> None:
        sink = self.heartbeat_sink
        if sink is not None:
            sink(
                self.name,
                state or self.state,
                self.server.queue_depth,
                self._residency_tags(),
            )

    async def _heartbeat_loop(self) -> None:
        while True:
            self._beat()
            await asyncio.sleep(self.heartbeat_interval_s)

    # -- the get-or-fetch hook -----------------------------------------------------

    def _miss_fetch(self, key: CacheKey):
        """Store miss hook (runs on the engine's executor thread)."""
        # The store deliberately calls miss fetchers *outside* its lock;
        # blocking on a network future under it would stall every tier.
        assert_unheld("store")
        loop, resolver = self._loop, self.peer_resolver
        if loop is None or resolver is None or self._killed:
            return None
        if threading.get_ident() == self._loop_thread:
            # Engine inlined on the event loop: blocking here would
            # deadlock the very loop that must run the fetch.
            return None
        future = asyncio.run_coroutine_threadsafe(self._fetch_from_peers(key), loop)
        try:
            return future.result(timeout=self.fetch_budget_s)
        except (asyncio.TimeoutError, TimeoutError):
            future.cancel()
            self._count_plane("budget_exhausted")
            return None
        except RuntimeError:
            # Loop shut down while we were waiting (worker killed).
            return None

    async def _fetch_from_peers(self, key: CacheKey):
        candidates = self.peer_resolver(key) if self.peer_resolver else []
        for peer_name, address in candidates[: self.max_fetch_peers]:
            try:
                kv = await self.fetcher.fetch(address, key)
            except FetchFailed:
                self._count_plane("peer_unreachable")
                continue
            if kv is not None:
                self.metrics.counter(
                    "cluster_reencode_avoided_tokens_total",
                    "module tokens obtained from peers instead of re-encoding",
                ).inc(len(kv))
                self.metrics.counter(
                    "cluster_peer_modules_total",
                    "modules obtained from each peer",
                    peer=peer_name,
                ).inc()
                return kv
        return None

    def _peer_prefetch(self, key: CacheKey) -> bool:
        """Fabric prefetch hook (engine/executor thread): schedule a
        fire-and-forget peer pull on the loop. Unlike :meth:`_miss_fetch`
        nothing waits on the result — a prefetch that loses the race to
        the demand fetch is merely redundant."""
        loop, resolver = self._loop, self.peer_resolver
        if loop is None or resolver is None or self._killed:
            return False
        try:
            asyncio.run_coroutine_threadsafe(self._prefetch_from_peers(key), loop)
        except RuntimeError:
            return False  # loop already closed (worker stopping)
        return True

    async def _prefetch_from_peers(self, key: CacheKey) -> None:
        kv = await self._fetch_from_peers(key)
        if kv is None:
            return
        try:
            # Prefetches land in DRAM; demand promotes them up later.
            self.store.put(key, kv, tier="cpu")
        except CapacityError:
            return  # resident entries outrank a prediction
        self.metrics.counter(
            "cluster_peer_prefetch_total",
            "modules pulled from peers ahead of predicted demand",
        ).inc()

    def _count_plane(self, outcome: str) -> None:
        self.metrics.counter(
            "cluster_plane_misses_total",
            "get-or-fetch hook outcomes that fell back to re-encode",
            outcome=outcome,
        ).inc()
