"""Open-loop load generation against a :class:`ClusterRouter`.

Mirrors :func:`repro.server.loadgen.run_open_loop` but drives the whole
cluster through the router's ``serve`` (placement + failover included),
so a run measures end-to-end cluster behaviour: affinity routing, load
spill, peer fetches, and — when the harness kills a worker mid-trace —
zero-loss failover.
"""

from __future__ import annotations

import asyncio

from repro.cluster.router import ClusterRouter, NoWorkerAvailable
from repro.server.errors import DeadlineExceeded, Overloaded
from repro.server.loadgen import LiveWorkload, LoadReport
from repro.server.request import TraceRecord
from repro.serving.traces import TraceRequest


async def run_cluster_open_loop(
    router: ClusterRouter,
    workload: LiveWorkload,
    trace: list[TraceRequest],
    *,
    time_scale: float = 1.0,
    deadline_s: float | None = None,
    clock=None,
) -> LoadReport:
    """Fire the trace's arrivals at the router on schedule.

    Rejections (:class:`Overloaded`) and total cluster loss
    (:class:`NoWorkerAvailable`) are tallied, not raised; every request
    the cluster *accepted* must land in ``completed`` (or ``expired`` /
    ``failed`` with a reason) — the zero-loss audit the failover test
    asserts on.
    """
    loop = asyncio.get_running_loop()
    clock = clock or loop.time
    report = LoadReport()
    start = clock()
    pending: list[asyncio.Task] = []

    async def fire(item: TraceRequest) -> None:
        prompt, max_new = workload.prompt_for_trace(item)
        submitted_at = clock()
        try:
            result = await router.serve(
                prompt, max_new_tokens=max_new, deadline_s=deadline_s
            )
        except Overloaded:
            report.rejected += 1
            return
        except DeadlineExceeded:
            report.expired += 1
            return
        except NoWorkerAvailable as exc:
            if router.closed:
                # Raced into a drain: the request was never accepted, so
                # it is shed, not lost.
                report.rejected += 1
            else:
                report.record_failure(exc)
            return
        except Exception as exc:
            report.record_failure(exc)
            return
        finished_at = clock()
        report.submitted += 1
        report.completed += 1
        report.records.append(
            TraceRecord(
                request_id=f"trace-{item.request_id}",
                schema=item.schema,
                state="done",
                submitted_at=submitted_at,
                queue_wait_s=0.0,
                # Router-side wall time: includes placement, queueing,
                # any failover re-placement, and the engine itself.
                ttft_s=(finished_at - submitted_at) - sum(result.step_times_s),
                ttlt_s=finished_at - submitted_at,
                cached_tokens=result.cached_tokens,
                uncached_tokens=result.uncached_tokens,
                output_tokens=len(result.output_ids),
                batch_size=0,
            )
        )

    for item in sorted(trace, key=lambda r: r.arrival_s):
        delay = (start + item.arrival_s * time_scale) - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        if router.closed:
            # Draining (SIGTERM mid-trace): stop offering load, but let
            # everything already accepted settle into the report below.
            break
        pending.append(asyncio.create_task(fire(item)))

    if pending:
        await asyncio.gather(*pending)
    report.wall_s = clock() - start
    return report
