"""Per-worker module-KV export service.

Each cluster worker runs one :class:`CacheExporter`: a small asyncio TCP
server speaking :mod:`repro.cluster.wire`. Peers GET modules by
``(schema, module, variant)``; the exporter serves them straight from
the worker's :class:`~repro.cache.storage.ModuleCacheStore` — ``peek``,
not ``fetch``, so export traffic neither skews the store's hit/recency
statistics nor recurses into the worker's *own* miss fetcher (which
would bounce a miss around the cluster).

The exporter also answers PING (liveness + queue depth, for remote
health probes) and STATS (the worker's JSON metrics snapshot, which the
router aggregates), and it keeps serving while its worker drains — a
draining worker's modules remain fetchable until it actually exits, so
rebalanced keys warm their new home cheaply.
"""

from __future__ import annotations

import asyncio

from repro.cache.storage import ModuleCacheStore
from repro.cluster import wire
from repro.server.metrics import MetricsRegistry


class CacheExporter:
    """Serve this worker's encoded modules to cluster peers."""

    def __init__(
        self,
        store: ModuleCacheStore,
        metrics: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_size: int = wire.DEFAULT_CHUNK_SIZE,
        health_snapshot=None,
        stats_snapshot=None,
    ) -> None:
        self.store = store
        self.metrics = metrics or MetricsRegistry()
        self.host = host
        self.port = port  # 0 = ephemeral; resolved by start()
        self.chunk_size = chunk_size
        # Zero-arg callables supplying PONG / STATS payloads; the worker
        # wires these to its health state and metrics snapshot.
        self.health_snapshot = health_snapshot or (lambda: {"state": "up", "queue_depth": 0})
        self.stats_snapshot = stats_snapshot or (lambda: {})
        self._server: asyncio.AbstractServer | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            return self.address
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.address

    async def stop(self) -> None:
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None

    # -- connection handling -----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    msg_type, payload = await wire.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # peer hung up between requests
                except wire.WireError as exc:
                    writer.write(wire.pack_json(wire.MSG_ERROR, {"error": str(exc)}))
                    await writer.drain()
                    return
                if msg_type == wire.MSG_GET:
                    await self._serve_get(writer, payload)
                elif msg_type == wire.MSG_PING:
                    writer.write(wire.pack_json(wire.MSG_PONG, self.health_snapshot()))
                    await writer.drain()
                elif msg_type == wire.MSG_STATS:
                    writer.write(
                        wire.pack_json(wire.MSG_STATS_REPLY, self.stats_snapshot())
                    )
                    await writer.drain()
                else:
                    writer.write(
                        wire.pack_json(
                            wire.MSG_ERROR,
                            {"error": f"unexpected message type {msg_type}"},
                        )
                    )
                    await writer.drain()
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # peer already gone; nothing left to flush

    async def _serve_get(self, writer, payload: bytes) -> None:
        try:
            key = wire.key_from_request(payload)
        except wire.WireError as exc:
            writer.write(wire.pack_json(wire.MSG_ERROR, {"error": str(exc)}))
            await writer.drain()
            return
        entry = self.store.peek(key)
        if entry is None:
            self._count_request("not_found")
            writer.write(wire.pack_frame(wire.MSG_NOT_FOUND))
            await writer.drain()
            return
        try:
            module = wire.serialize_module(key, entry.kv)
        except wire.WireError as exc:  # simulator stand-ins are not exportable
            self._count_request("unserializable")
            writer.write(wire.pack_json(wire.MSG_ERROR, {"error": str(exc)}))
            await writer.drain()
            return
        writer.write(wire.pack_json(wire.MSG_META, module.meta))
        sent = 0
        for chunk in wire.iter_chunks(module, self.chunk_size):
            # Header and payload written separately: the chunk memoryview
            # goes to the transport without an intermediate join.
            writer.write(wire.pack_header(wire.MSG_CHUNK, len(chunk)))
            writer.write(chunk)
            sent += len(chunk)
            await writer.drain()
        writer.write(wire.pack_json(wire.MSG_END, {"checksum": module.meta["checksum"]}))
        await writer.drain()
        self._count_request("served")
        self.metrics.counter(
            "cluster_export_bytes_total", "module-KV bytes served to peers"
        ).inc(sent)

    def _count_request(self, outcome: str) -> None:
        self.metrics.counter(
            "cluster_export_requests_total", "peer GET requests by outcome",
            outcome=outcome,
        ).inc()
