"""Worker health: states, heartbeats, and death detection.

A worker is ``up`` while it heartbeats, ``draining`` once it has been
asked to stop (it finishes accepted work but takes no new requests), and
``dead`` when it either reported its own shutdown or missed enough
heartbeats. The router treats ``up`` as routable, ``draining`` as
fetchable-but-not-routable (its exporter still serves module KV until
the drain completes), and ``dead`` as gone — dead workers leave the hash
ring and their in-flight requests fail over.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

UP = "up"
DRAINING = "draining"
DEAD = "dead"

_STATES = (UP, DRAINING, DEAD)


@dataclass
class WorkerHealth:
    """Last known liveness picture of one worker."""

    name: str
    state: str = UP
    last_beat_at: float = 0.0
    queue_depth: int = 0
    beats: int = 0
    # Module tags ("schema/module/variant") this worker can serve without
    # re-encoding — resident in a DRAM tier or mapped from its snapshot.
    # Advertised in heartbeats (capped by the worker); the router prefers
    # residency over plain consistent-hash placement.
    resident: frozenset = frozenset()

    @property
    def routable(self) -> bool:
        return self.state == UP

    @property
    def fetchable(self) -> bool:
        return self.state in (UP, DRAINING)


@dataclass
class HealthEvent:
    """One observed state transition, kept for operators and tests."""

    at: float
    worker: str
    old_state: str
    new_state: str
    reason: str = ""


class HeartbeatMonitor:
    """Tracks per-worker heartbeats; flags workers that stop beating.

    Single-loop discipline: ``beat``/``sweep`` are called from the
    router's event loop (workers post beats via ``call_soon_threadsafe``
    when they live on another loop), so no lock is needed.
    """

    def __init__(
        self,
        heartbeat_interval_s: float = 0.05,
        miss_limit: int = 4,
        clock=time.monotonic,
    ) -> None:
        self.heartbeat_interval_s = heartbeat_interval_s
        self.miss_limit = miss_limit
        self.clock = clock
        self.workers: dict[str, WorkerHealth] = {}
        self.events: list[HealthEvent] = []

    def register(self, name: str) -> WorkerHealth:
        health = WorkerHealth(name=name, last_beat_at=self.clock())
        self.workers[name] = health
        return health

    def beat(
        self,
        name: str,
        state: str = UP,
        queue_depth: int = 0,
        resident=None,
    ) -> None:
        """Record one heartbeat. A beat from a ``dead`` worker does not
        resurrect it — the router already rebalanced; rejoin is explicit.
        ``resident`` (an iterable of module tags, or None to leave the
        last advertisement standing) feeds residency-aware routing."""
        if state not in _STATES:
            raise ValueError(f"unknown health state {state!r}")
        health = self.workers.get(name)
        if health is None:
            health = self.register(name)
        if health.state == DEAD:
            return
        if state != health.state:
            self._transition(health, state, reason="self-reported")
        health.last_beat_at = self.clock()
        health.queue_depth = queue_depth
        health.beats += 1
        if resident is not None:
            health.resident = frozenset(resident)

    def declare_dead(self, name: str, reason: str = "declared") -> bool:
        health = self.workers.get(name)
        if health is None or health.state == DEAD:
            return False
        self._transition(health, DEAD, reason=reason)
        return True

    def sweep(self, now: float | None = None) -> list[str]:
        """Mark workers whose heartbeats stopped as dead; returns the
        newly-dead names (the router's rebalance trigger)."""
        now = self.clock() if now is None else now
        deadline = self.heartbeat_interval_s * self.miss_limit
        newly_dead: list[str] = []
        for health in self.workers.values():
            if health.state == DEAD:
                continue
            if now - health.last_beat_at > deadline:
                self._transition(health, DEAD, reason="missed heartbeats")
                newly_dead.append(health.name)
        return newly_dead

    def state(self, name: str) -> str:
        health = self.workers.get(name)
        return DEAD if health is None else health.state

    def routable(self) -> list[str]:
        return [h.name for h in self.workers.values() if h.routable]

    def _transition(self, health: WorkerHealth, state: str, reason: str) -> None:
        self.events.append(
            HealthEvent(
                at=self.clock(),
                worker=health.name,
                old_state=health.state,
                new_state=state,
                reason=reason,
            )
        )
        health.state = state
